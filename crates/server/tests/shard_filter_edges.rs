//! Edge cases of the wire-v2 shard-filtered sync subscription: empty
//! filter results, out-of-range shard ids, degenerate one-shard plans,
//! shard replicas fed streams the filter dropped entirely, and servers
//! started without `--shards` at all.  Every case must answer with either
//! a well-formed (possibly empty) projected stream or a structured code-2
//! protocol fault — never a torn connection or a wrong report.

use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::sync::Arc;

use xic_engine::{project_report, CompiledSpec, CorpusReplica};
use xic_server::{Client, ClientError, Server, ServerConfig};
use xic_xml::EditOp;

/// Two independent unary keys → a two-shard plan.
const DTD2: &str = "<!ELEMENT r (a*, b*)>\n\
                    <!ELEMENT a EMPTY>\n\
                    <!ATTLIST a id CDATA #REQUIRED>\n\
                    <!ELEMENT b EMPTY>\n\
                    <!ATTLIST b id CDATA #REQUIRED>\n";
const SIGMA2: &str = "a[id] -> a\nb[id] -> b\n";
const DOC2: &str = "<r><a id=\"a1\"/><a id=\"a2\"/><b id=\"b1\"/><b id=\"b2\"/></r>";

/// One key → a one-shard plan.
const SIGMA1: &str = "a[id] -> a\n";

fn serve(spec: &Arc<CompiledSpec>, shards: bool) -> (Server, Client) {
    let server = Server::start(
        Arc::clone(spec),
        ServerConfig {
            tcp: Some(SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0)),
            shards,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let client = Client::connect_tcp(server.tcp_addr().unwrap(), spec.id(), "edges")
        .expect("client connects");
    (server, client)
}

/// `SetAttr` on the first `a` element of the served document.
fn edit_a(spec: &CompiledSpec, value: &str) -> (u64, EditOp) {
    let tree = spec.parse_document(DOC2).expect("doc parses");
    let node = tree
        .elements()
        .find(|&n| spec.dtd().type_name(tree.element_type(n).unwrap()) == "a")
        .expect("an `a` element");
    let attr = spec.dtd().attrs_of(tree.element_type(node).unwrap())[0];
    (
        0,
        EditOp::SetAttr {
            element: node,
            attr,
            value: value.to_string(),
        },
    )
}

/// A sync whose filter drops every retained delta answers an empty,
/// well-formed stream — `DeltaEnd { count: 0 }`, not a fault, not a hang.
#[test]
fn empty_filter_result_is_a_well_formed_stream() {
    let spec = Arc::new(CompiledSpec::from_sources(DTD2, Some("r"), SIGMA2).unwrap());
    let (server, mut client) = serve(&spec, true);

    let handle = client.open_doc("doc", DOC2).expect("opens");
    let open_delta = client.commit().expect("open commit");
    assert_eq!(
        open_delta.shards.len(),
        spec.shard_plan().num_shards(),
        "an open broadcasts to every shard"
    );

    // An edit to `a` touches only `a[id]`'s shard; the other shard's
    // subscription sees nothing past the open.
    let (_, op) = edit_a(&spec, "a2");
    client.apply(handle, &[op]).expect("applies");
    let edit_delta = client.commit().expect("edit commit");
    assert_eq!(edit_delta.shards.len(), 1, "narrow edit touches one shard");
    let touched = edit_delta.shards[0];
    let untouched = 1 - touched;

    let tail = client
        .sync_shard(open_delta.seq, untouched)
        .expect("filtered sync succeeds");
    assert!(
        tail.is_empty(),
        "the untouched shard's tail must be empty, got {} delta(s)",
        tail.len()
    );
    // The connection survives: the same client keeps working.
    assert!(client.sync(0).expect("full sync").len() >= 2);
    drop(client);
    server.stop();
}

/// A shard id past the plan is a structured code-2 `protocol:shard-range`
/// fault, and the connection stays usable afterwards.
#[test]
fn out_of_range_shard_is_a_structured_fault() {
    let spec = Arc::new(CompiledSpec::from_sources(DTD2, Some("r"), SIGMA2).unwrap());
    let (server, mut client) = serve(&spec, true);
    client.open_doc("doc", DOC2).expect("opens");
    client.commit().expect("commits");

    let num_shards = spec.shard_plan().num_shards() as u32;
    match client.sync_shard(0, num_shards) {
        Err(ClientError::Fault(fault)) => {
            assert_eq!(
                fault.code, 2,
                "shard-range faults are code-2 protocol errors"
            );
            assert_eq!(fault.kind, "protocol:shard-range");
        }
        other => panic!("expected a shard-range fault, got {other:?}"),
    }
    // Well-formed requests still work on the same connection.
    assert_eq!(client.sync(0).expect("full sync").len(), 1);
    drop(client);
    server.stop();
}

/// On a one-shard plan the filter is total: the shard-0 subscription
/// carries every delta and a sharded replica reconstructs the (trivial)
/// projection, which *is* the full report.
#[test]
fn one_shard_plan_filter_is_total() {
    let spec = Arc::new(CompiledSpec::from_sources(DTD2, Some("r"), SIGMA1).unwrap());
    assert_eq!(spec.shard_plan().num_shards(), 1);
    let (server, mut client) = serve(&spec, true);

    let handle = client.open_doc("doc", DOC2).expect("opens");
    client.commit().expect("open commit");
    let (_, op) = edit_a(&spec, "a2"); // collide the key
    client.apply(handle, &[op]).expect("applies");
    client.commit().expect("edit commit");

    let mut full = CorpusReplica::new(spec.id());
    client.sync_replica(&mut full).expect("full replica syncs");
    let mut sharded = CorpusReplica::new_sharded(spec.id(), 0);
    client
        .sync_replica(&mut sharded)
        .expect("sharded replica syncs");

    let report = full.report();
    assert_eq!(
        sharded.report(),
        project_report(&report, spec.shard_plan(), 0),
        "one-shard projection diverged"
    );
    assert_eq!(
        sharded.report(),
        report,
        "a one-shard projection must be the full report"
    );
    drop(client);
    server.stop();
}

/// A sharded replica whose subscription never delivers anything (every
/// delta filtered out) reports an empty, clean corpus — not an error.
#[test]
fn all_filtered_out_stream_reports_clean() {
    let spec = Arc::new(CompiledSpec::from_sources(DTD2, Some("r"), SIGMA2).unwrap());
    let (server, mut client) = serve(&spec, true);

    // No commits yet: both subscriptions are empty.
    for shard in 0..spec.shard_plan().num_shards() as u32 {
        let mut replica = CorpusReplica::new_sharded(spec.id(), shard);
        let applied = client
            .sync_replica(&mut replica)
            .expect("empty sync succeeds");
        assert_eq!(applied, 0);
        let report = replica.report();
        assert_eq!(report.reports().len(), 0, "no documents");
        assert_eq!(
            report.clean_count(),
            report.total(),
            "an empty corpus is clean, not an error"
        );
    }

    // After real traffic, a replica that joins at the head and only ever
    // receives filtered-out tails stays clean and consistent too.
    let handle = client.open_doc("doc", DOC2).expect("opens");
    let open_delta = client.commit().expect("open commit");
    let (_, op) = edit_a(&spec, "a2");
    client.apply(handle, &[op]).expect("applies");
    let edit_delta = client.commit().expect("edit commit");
    let untouched = 1 - edit_delta.shards[0];

    let mut late = CorpusReplica::new_sharded(spec.id(), untouched);
    late.apply_delta(
        &open_delta
            .project(spec.shard_plan(), untouched)
            .expect("opens broadcast, so the projection exists"),
    )
    .expect("projected open applies");
    let tail = client
        .sync_shard(open_delta.seq, untouched)
        .expect("tail sync");
    assert!(tail.is_empty());
    let late_report = late.report();
    assert_eq!(
        late_report.clean_count(),
        late_report.total(),
        "untouched shard stays clean"
    );
    drop(client);
    server.stop();
}

/// Without `--shards` the filtered subscription is refused with the
/// structured `protocol:shards-disabled` fault — same taxonomy, and plain
/// syncs are unaffected.
#[test]
fn shards_disabled_server_refuses_filtered_sync() {
    let spec = Arc::new(CompiledSpec::from_sources(DTD2, Some("r"), SIGMA2).unwrap());
    let (server, mut client) = serve(&spec, false);
    client.open_doc("doc", DOC2).expect("opens");
    client.commit().expect("commits");

    match client.sync_shard(0, 0) {
        Err(ClientError::Fault(fault)) => {
            assert_eq!(fault.code, 2);
            assert_eq!(fault.kind, "protocol:shards-disabled");
        }
        other => panic!("expected a shards-disabled fault, got {other:?}"),
    }
    assert_eq!(client.sync(0).expect("plain sync still works").len(), 1);
    drop(client);
    server.stop();
}
