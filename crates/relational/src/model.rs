//! Relational schemas, instances and dependencies.
//!
//! The undecidability results of Section 3 of the paper are proved by
//! reductions from implication problems in *relational* databases: the
//! implication of functional dependencies (FDs) by FDs and inclusion
//! dependencies (INDs), and the implication of keys by keys and foreign
//! keys.  This module is the relational substrate those reductions are
//! expressed over: schemas, finite string-valued instances, and the four
//! dependency forms with their satisfaction relations.

use std::collections::{HashMap, HashSet};
use std::fmt;

/// Identifier of a relation within a [`RelSchema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(pub u32);

impl RelId {
    /// Index into the schema's relation table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A relation schema: a name and an ordered list of attribute names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// Relation name.
    pub name: String,
    /// Attribute names, in column order.
    pub attrs: Vec<String>,
}

impl Relation {
    /// Position of an attribute by name.
    pub fn attr_pos(&self, attr: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a == attr)
    }
}

/// A relational schema `R = (R1, …, Rn)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelSchema {
    relations: Vec<Relation>,
    by_name: HashMap<String, RelId>,
}

impl RelSchema {
    /// An empty schema.
    pub fn new() -> RelSchema {
        RelSchema::default()
    }

    /// Adds a relation with the given attributes, returning its id.
    pub fn add_relation(&mut self, name: &str, attrs: &[&str]) -> RelId {
        let id = RelId(self.relations.len() as u32);
        self.relations.push(Relation {
            name: name.to_string(),
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Looks up a relation by name.
    pub fn relation_by_name(&self, name: &str) -> Option<RelId> {
        self.by_name.get(name).copied()
    }

    /// Accessor for a relation.
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id.index()]
    }

    /// Iterates over relation ids.
    pub fn relations(&self) -> impl Iterator<Item = RelId> {
        (0..self.relations.len() as u32).map(RelId)
    }

    /// Column positions for a list of attribute names of a relation.
    pub fn positions(&self, rel: RelId, attrs: &[String]) -> Option<Vec<usize>> {
        attrs
            .iter()
            .map(|a| self.relation(rel).attr_pos(a))
            .collect()
    }
}

/// A tuple is a vector of string values, one per attribute in column order.
pub type Tuple = Vec<String>;

/// A finite instance of a schema.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Instance {
    tables: Vec<Vec<Tuple>>,
}

impl Instance {
    /// An empty instance of a schema.
    pub fn empty(schema: &RelSchema) -> Instance {
        Instance {
            tables: vec![Vec::new(); schema.num_relations()],
        }
    }

    /// Inserts a tuple into a relation (deduplicating under set semantics).
    pub fn insert(&mut self, rel: RelId, tuple: Tuple) {
        let table = &mut self.tables[rel.index()];
        if !table.contains(&tuple) {
            table.push(tuple);
        }
    }

    /// The tuples of a relation.
    pub fn tuples(&self, rel: RelId) -> &[Tuple] {
        &self.tables[rel.index()]
    }

    /// Mutable access used by the chase.
    pub fn tuples_mut(&mut self, rel: RelId) -> &mut Vec<Tuple> {
        &mut self.tables[rel.index()]
    }

    /// Total number of tuples.
    pub fn size(&self) -> usize {
        self.tables.iter().map(Vec::len).sum()
    }
}

/// A relational dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelConstraint {
    /// Key `R[l1,…,lk] → R`.
    Key {
        /// Constrained relation.
        rel: RelId,
        /// Key attributes.
        attrs: Vec<String>,
    },
    /// Foreign key `R[X] ⊆ R'[Y]` together with the key `R'[Y] → R'`.
    ForeignKey {
        /// Referencing relation.
        rel: RelId,
        /// Referencing attributes.
        attrs: Vec<String>,
        /// Referenced relation.
        target: RelId,
        /// Referenced (key) attributes.
        target_attrs: Vec<String>,
    },
    /// Functional dependency `R : X → Y`.
    Fd {
        /// Constrained relation.
        rel: RelId,
        /// Determinant attributes.
        lhs: Vec<String>,
        /// Determined attributes.
        rhs: Vec<String>,
    },
    /// Inclusion dependency `R[X] ⊆ R'[Y]` (no key requirement).
    Ind {
        /// Referencing relation.
        rel: RelId,
        /// Referencing attributes.
        attrs: Vec<String>,
        /// Referenced relation.
        target: RelId,
        /// Referenced attributes.
        target_attrs: Vec<String>,
    },
}

impl RelConstraint {
    /// Builds a key from attribute name slices.
    pub fn key(rel: RelId, attrs: &[&str]) -> RelConstraint {
        RelConstraint::Key {
            rel,
            attrs: owned(attrs),
        }
    }

    /// Builds a foreign key.
    pub fn foreign_key(
        rel: RelId,
        attrs: &[&str],
        target: RelId,
        target_attrs: &[&str],
    ) -> RelConstraint {
        RelConstraint::ForeignKey {
            rel,
            attrs: owned(attrs),
            target,
            target_attrs: owned(target_attrs),
        }
    }

    /// Builds a functional dependency.
    pub fn fd(rel: RelId, lhs: &[&str], rhs: &[&str]) -> RelConstraint {
        RelConstraint::Fd {
            rel,
            lhs: owned(lhs),
            rhs: owned(rhs),
        }
    }

    /// Builds an inclusion dependency.
    pub fn ind(rel: RelId, attrs: &[&str], target: RelId, target_attrs: &[&str]) -> RelConstraint {
        RelConstraint::Ind {
            rel,
            attrs: owned(attrs),
            target,
            target_attrs: owned(target_attrs),
        }
    }

    /// Satisfaction `I ⊨ φ`.
    pub fn satisfied_by(&self, schema: &RelSchema, instance: &Instance) -> bool {
        match self {
            RelConstraint::Key { rel, attrs } => {
                let pos = schema.positions(*rel, attrs).expect("key attrs");
                let tuples = instance.tuples(*rel);
                let mut seen: HashSet<Vec<&str>> = HashSet::new();
                for t in tuples {
                    let key: Vec<&str> = pos.iter().map(|&p| t[p].as_str()).collect();
                    if !seen.insert(key) {
                        // Two tuples agree on the key: under set semantics
                        // they must be identical, which `insert` already
                        // prevents, so any collision is a violation.
                        return false;
                    }
                }
                true
            }
            RelConstraint::Fd { rel, lhs, rhs } => {
                let lhs_pos = schema.positions(*rel, lhs).expect("fd lhs");
                let rhs_pos = schema.positions(*rel, rhs).expect("fd rhs");
                let mut seen: HashMap<Vec<&str>, Vec<&str>> = HashMap::new();
                for t in instance.tuples(*rel) {
                    let l: Vec<&str> = lhs_pos.iter().map(|&p| t[p].as_str()).collect();
                    let r: Vec<&str> = rhs_pos.iter().map(|&p| t[p].as_str()).collect();
                    match seen.get(&l) {
                        Some(prev) if *prev != r => return false,
                        Some(_) => {}
                        None => {
                            seen.insert(l, r);
                        }
                    }
                }
                true
            }
            RelConstraint::Ind {
                rel,
                attrs,
                target,
                target_attrs,
            }
            | RelConstraint::ForeignKey {
                rel,
                attrs,
                target,
                target_attrs,
            } => {
                let src_pos = schema.positions(*rel, attrs).expect("ind source attrs");
                let dst_pos = schema
                    .positions(*target, target_attrs)
                    .expect("ind target attrs");
                let targets: HashSet<Vec<&str>> = instance
                    .tuples(*target)
                    .iter()
                    .map(|t| dst_pos.iter().map(|&p| t[p].as_str()).collect())
                    .collect();
                let inclusion_ok = instance.tuples(*rel).iter().all(|t| {
                    let v: Vec<&str> = src_pos.iter().map(|&p| t[p].as_str()).collect();
                    targets.contains(&v)
                });
                match self {
                    RelConstraint::ForeignKey {
                        target,
                        target_attrs,
                        ..
                    } => {
                        inclusion_ok
                            && RelConstraint::Key {
                                rel: *target,
                                attrs: target_attrs.clone(),
                            }
                            .satisfied_by(schema, instance)
                    }
                    _ => inclusion_ok,
                }
            }
        }
    }

    /// Renders the dependency with schema names.
    pub fn render(&self, schema: &RelSchema) -> String {
        match self {
            RelConstraint::Key { rel, attrs } => {
                format!("{}[{}] → {0}", schema.relation(*rel).name, attrs.join(", "))
            }
            RelConstraint::ForeignKey {
                rel,
                attrs,
                target,
                target_attrs,
            } => format!(
                "{}[{}] ⊆ {}[{}] (foreign key)",
                schema.relation(*rel).name,
                attrs.join(", "),
                schema.relation(*target).name,
                target_attrs.join(", ")
            ),
            RelConstraint::Fd { rel, lhs, rhs } => format!(
                "{} : {} → {}",
                schema.relation(*rel).name,
                lhs.join(", "),
                rhs.join(", ")
            ),
            RelConstraint::Ind {
                rel,
                attrs,
                target,
                target_attrs,
            } => format!(
                "{}[{}] ⊆ {}[{}]",
                schema.relation(*rel).name,
                attrs.join(", "),
                schema.relation(*target).name,
                target_attrs.join(", ")
            ),
        }
    }
}

impl fmt::Display for RelConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

fn owned(attrs: &[&str]) -> Vec<String> {
    attrs.iter().map(|s| s.to_string()).collect()
}

/// Checks every constraint of a set against an instance.
pub fn instance_satisfies(
    schema: &RelSchema,
    instance: &Instance,
    constraints: &[RelConstraint],
) -> bool {
    constraints.iter().all(|c| c.satisfied_by(schema, instance))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> (RelSchema, RelId, RelId) {
        let mut s = RelSchema::new();
        let emp = s.add_relation("emp", &["id", "name", "dept"]);
        let dept = s.add_relation("dept", &["dname", "head"]);
        (s, emp, dept)
    }

    #[test]
    fn key_satisfaction() {
        let (s, emp, _) = sample_schema();
        let mut i = Instance::empty(&s);
        i.insert(emp, vec!["1".into(), "Ada".into(), "cs".into()]);
        i.insert(emp, vec!["2".into(), "Bob".into(), "cs".into()]);
        let key = RelConstraint::key(emp, &["id"]);
        assert!(key.satisfied_by(&s, &i));
        i.insert(emp, vec!["1".into(), "Eve".into(), "math".into()]);
        assert!(!key.satisfied_by(&s, &i));
    }

    #[test]
    fn fd_satisfaction() {
        let (s, emp, _) = sample_schema();
        let mut i = Instance::empty(&s);
        i.insert(emp, vec!["1".into(), "Ada".into(), "cs".into()]);
        i.insert(emp, vec!["2".into(), "Ada".into(), "cs".into()]);
        let fd = RelConstraint::fd(emp, &["name"], &["dept"]);
        assert!(fd.satisfied_by(&s, &i));
        i.insert(emp, vec!["3".into(), "Ada".into(), "math".into()]);
        assert!(!fd.satisfied_by(&s, &i));
    }

    #[test]
    fn ind_and_foreign_key_satisfaction() {
        let (s, emp, dept) = sample_schema();
        let mut i = Instance::empty(&s);
        i.insert(emp, vec!["1".into(), "Ada".into(), "cs".into()]);
        i.insert(dept, vec!["cs".into(), "Ada".into()]);
        let ind = RelConstraint::ind(emp, &["dept"], dept, &["dname"]);
        let fk = RelConstraint::foreign_key(emp, &["dept"], dept, &["dname"]);
        assert!(ind.satisfied_by(&s, &i));
        assert!(fk.satisfied_by(&s, &i));
        // A dangling department breaks both.
        i.insert(emp, vec!["2".into(), "Bob".into(), "physics".into()]);
        assert!(!ind.satisfied_by(&s, &i));
        assert!(!fk.satisfied_by(&s, &i));
    }

    #[test]
    fn foreign_key_requires_target_key() {
        let (s, emp, dept) = sample_schema();
        let mut i = Instance::empty(&s);
        i.insert(emp, vec!["1".into(), "Ada".into(), "cs".into()]);
        i.insert(dept, vec!["cs".into(), "Ada".into()]);
        i.insert(dept, vec!["cs".into(), "Bob".into()]);
        let ind = RelConstraint::ind(emp, &["dept"], dept, &["dname"]);
        let fk = RelConstraint::foreign_key(emp, &["dept"], dept, &["dname"]);
        // The inclusion still holds, but dname is no longer a key of dept.
        assert!(ind.satisfied_by(&s, &i));
        assert!(!fk.satisfied_by(&s, &i));
    }

    #[test]
    fn set_semantics_deduplicates() {
        let (s, emp, _) = sample_schema();
        let mut i = Instance::empty(&s);
        i.insert(emp, vec!["1".into(), "Ada".into(), "cs".into()]);
        i.insert(emp, vec!["1".into(), "Ada".into(), "cs".into()]);
        assert_eq!(i.size(), 1);
    }

    #[test]
    fn instance_satisfies_all() {
        let (s, emp, dept) = sample_schema();
        let mut i = Instance::empty(&s);
        i.insert(emp, vec!["1".into(), "Ada".into(), "cs".into()]);
        i.insert(dept, vec!["cs".into(), "Ada".into()]);
        let cs = vec![
            RelConstraint::key(emp, &["id"]),
            RelConstraint::key(dept, &["dname"]),
            RelConstraint::foreign_key(emp, &["dept"], dept, &["dname"]),
        ];
        assert!(instance_satisfies(&s, &i, &cs));
    }
}
