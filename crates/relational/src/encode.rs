//! Lemma 3.2: encoding FDs and INDs by keys and foreign keys.
//!
//! The paper reduces the (undecidable) implication problem for FDs by FDs and
//! INDs to the implication problem for keys by keys and foreign keys, by
//! introducing for every FD and IND a fresh relation together with keys and
//! foreign keys that simulate it.  This module is that construction, made
//! executable: it is used by the `undecidability_frontier` example and as the
//! front half of the Theorem 3.1 reduction implemented in `xic-core`.

use crate::model::{RelConstraint, RelId, RelSchema};

/// The result of encoding an FD+IND implication instance into a key/FK one.
#[derive(Debug, Clone)]
pub struct EncodedImplication {
    /// The extended schema (original relations plus the fresh `*_new` ones).
    pub schema: RelSchema,
    /// The encoded constraint set Σ′ (keys and foreign keys only).
    pub sigma: Vec<RelConstraint>,
    /// The target key whose implication is equivalent to the original FD
    /// implication.
    pub target_key: RelConstraint,
    /// The relation carrying the target key.
    pub target_rel: RelId,
}

/// Encodes the implication instance `Σ ⊨ (target_rel : X → Y)` over `schema`,
/// where Σ consists of FDs and INDs, into an instance of "key implied by keys
/// and foreign keys" (Lemma 3.2).
///
/// # Panics
/// Panics if Σ contains constraints other than [`RelConstraint::Fd`] and
/// [`RelConstraint::Ind`], or if attribute names do not exist.
pub fn encode_fd_implication(
    schema: &RelSchema,
    sigma: &[RelConstraint],
    target_rel: RelId,
    target_lhs: &[String],
    target_rhs: &[String],
) -> EncodedImplication {
    let mut extended = schema.clone();
    let mut out: Vec<RelConstraint> = Vec::new();

    let mut counter = 0usize;
    fn encode_fd(
        counter: &mut usize,
        extended: &mut RelSchema,
        out: &mut Vec<RelConstraint>,
        rel: RelId,
        lhs: &[String],
        rhs: &[String],
        include_l1: bool,
    ) -> (RelId, Vec<String>) {
        *counter += 1;
        let rel_name = extended.relation(rel).name.clone();
        // Z = Att(R) (the set of all attributes is always a key).
        let z: Vec<String> = extended.relation(rel).attrs.clone();
        let xy = union(lhs, rhs);
        let xyz = union(&xy, &z);
        let new_name = format!("{rel_name}_fd_new{counter}", counter = *counter);
        let new_attr_refs: Vec<&str> = xyz.iter().map(String::as_str).collect();
        let rnew = extended.add_relation(&new_name, &new_attr_refs);
        // ℓ4 = Rnew[XY] → Rnew (key; also the target of ℓ2's foreign key).
        out.push(RelConstraint::Key {
            rel: rnew,
            attrs: xy.clone(),
        });
        // ℓ2 = R[XY] ⊆ Rnew[XY]  (foreign key onto ℓ4).
        out.push(RelConstraint::ForeignKey {
            rel,
            attrs: xy.clone(),
            target: rnew,
            target_attrs: xy.clone(),
        });
        // XYZ is a superkey of R (it contains the key Z) and of Rnew (all its
        // attributes), so ℓ3 = Rnew[XYZ] ⊆ R[XYZ] is a foreign key once the
        // key R[XYZ] → R is stated.
        out.push(RelConstraint::Key {
            rel,
            attrs: xyz.clone(),
        });
        out.push(RelConstraint::Key {
            rel: rnew,
            attrs: xyz.clone(),
        });
        out.push(RelConstraint::ForeignKey {
            rel: rnew,
            attrs: xyz.clone(),
            target: rel,
            target_attrs: xyz.clone(),
        });
        if include_l1 {
            // ℓ1 = Rnew[X] → Rnew: the simulated FD itself.
            out.push(RelConstraint::Key {
                rel: rnew,
                attrs: lhs.to_vec(),
            });
        }
        (rnew, lhs.to_vec())
    }

    for c in sigma {
        match c {
            RelConstraint::Fd { rel, lhs, rhs } => {
                encode_fd(&mut counter, &mut extended, &mut out, *rel, lhs, rhs, true);
            }
            RelConstraint::Ind {
                rel,
                attrs,
                target,
                target_attrs,
            } => {
                counter += 1;
                let target_name = extended.relation(*target).name.clone();
                // Z = Att(R2).
                let z: Vec<String> = extended.relation(*target).attrs.clone();
                let yz = union(target_attrs, &z);
                let new_name = format!("{target_name}_ind_new{counter}");
                let new_attr_refs: Vec<&str> = yz.iter().map(String::as_str).collect();
                let rnew = extended.add_relation(&new_name, &new_attr_refs);
                // ℓ1 = Rnew[Y] → Rnew.
                out.push(RelConstraint::Key {
                    rel: rnew,
                    attrs: target_attrs.clone(),
                });
                // ℓ2 = R1[X] ⊆ Rnew[Y] (foreign key onto ℓ1).
                out.push(RelConstraint::ForeignKey {
                    rel: *rel,
                    attrs: attrs.clone(),
                    target: rnew,
                    target_attrs: target_attrs.clone(),
                });
                // ℓ3 = Rnew[YZ] ⊆ R2[YZ], a foreign key because YZ ⊇ Z is a
                // superkey of R2.
                out.push(RelConstraint::Key {
                    rel: *target,
                    attrs: yz.clone(),
                });
                out.push(RelConstraint::Key {
                    rel: rnew,
                    attrs: yz.clone(),
                });
                out.push(RelConstraint::ForeignKey {
                    rel: rnew,
                    attrs: yz.clone(),
                    target: *target,
                    target_attrs: yz.clone(),
                });
            }
            other => panic!("encode_fd_implication only accepts FDs and INDs, got {other:?}"),
        }
    }

    // The target FD θ = Rθ : X → Y is encoded with ℓ2, ℓ3, ℓ4 in Σ′ and the
    // target key becomes ℓ1 = Rθnew[X] → Rθnew.
    let (target_new, target_attrs) = encode_fd(
        &mut counter,
        &mut extended,
        &mut out,
        target_rel,
        target_lhs,
        target_rhs,
        false,
    );
    let target_key = RelConstraint::Key {
        rel: target_new,
        attrs: target_attrs,
    };

    EncodedImplication {
        schema: extended,
        sigma: out,
        target_key,
        target_rel: target_new,
    }
}

/// Ordered union of two attribute lists (duplicates removed, first
/// occurrence kept).
fn union(a: &[String], b: &[String]) -> Vec<String> {
    let mut out = a.to_vec();
    for x in b {
        if !out.contains(x) {
            out.push(x.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{instance_satisfies, Instance};

    fn owned(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn encoding_produces_only_keys_and_foreign_keys() {
        let mut s = RelSchema::new();
        let r = s.add_relation("R", &["a", "b", "c"]);
        let t = s.add_relation("T", &["x"]);
        let sigma = vec![
            RelConstraint::fd(r, &["a"], &["b"]),
            RelConstraint::ind(r, &["c"], t, &["x"]),
        ];
        let enc = encode_fd_implication(&s, &sigma, r, &owned(&["a"]), &owned(&["c"]));
        assert!(enc.sigma.iter().all(|c| matches!(
            c,
            RelConstraint::Key { .. } | RelConstraint::ForeignKey { .. }
        )));
        assert!(matches!(enc.target_key, RelConstraint::Key { .. }));
        // One fresh relation per FD/IND in Σ plus one for the target.
        assert_eq!(enc.schema.num_relations(), s.num_relations() + 3);
    }

    #[test]
    fn fresh_relations_have_expected_attributes() {
        let mut s = RelSchema::new();
        let r = s.add_relation("R", &["a", "b"]);
        let sigma = vec![RelConstraint::fd(r, &["a"], &["b"])];
        let enc = encode_fd_implication(&s, &sigma, r, &owned(&["b"]), &owned(&["a"]));
        // Each fresh relation for an FD over R carries X ∪ Y ∪ Att(R) = {a,b}.
        for rel in enc.schema.relations() {
            if enc.schema.relation(rel).name.contains("new") {
                let mut attrs = enc.schema.relation(rel).attrs.clone();
                attrs.sort();
                assert_eq!(attrs, owned(&["a", "b"]));
            }
        }
    }

    #[test]
    fn satisfying_instance_extends_across_the_encoding() {
        // A tiny soundness check in the spirit of the lemma's proof: take an
        // instance of the original schema satisfying Σ; populate each fresh
        // relation with the projection it is meant to hold; the encoded
        // constraints then hold.
        let mut s = RelSchema::new();
        let r = s.add_relation("R", &["a", "b"]);
        let sigma = vec![RelConstraint::fd(r, &["a"], &["b"])];
        let enc = encode_fd_implication(&s, &sigma, r, &owned(&["a"]), &owned(&["b"]));

        let mut inst = Instance::empty(&enc.schema);
        // Original data satisfying a→b.
        inst.insert(r, vec!["1".into(), "x".into()]);
        inst.insert(r, vec!["2".into(), "y".into()]);
        // Fresh relations: copy the projection of R on their attributes.
        for rel in enc.schema.relations() {
            let relation = enc.schema.relation(rel).clone();
            if !relation.name.contains("new") {
                continue;
            }
            let source_positions: Vec<usize> = relation
                .attrs
                .iter()
                .map(|a| enc.schema.relation(r).attr_pos(a).unwrap())
                .collect();
            let source_tuples: Vec<Vec<String>> = inst.tuples(r).to_vec();
            for t in source_tuples {
                inst.insert(
                    rel,
                    source_positions.iter().map(|&p| t[p].clone()).collect(),
                );
            }
        }
        assert!(instance_satisfies(&enc.schema, &inst, &enc.sigma));
        assert!(enc.target_key.satisfied_by(&enc.schema, &inst));
    }
}
