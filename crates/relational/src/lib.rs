//! # xic-relational — the relational substrate of the undecidability proofs
//!
//! Section 3 of Fan & Libkin proves undecidability of consistency and
//! implication for multi-attribute XML keys and foreign keys by a chain of
//! reductions that starts in relational databases:
//!
//! ```text
//! FD implication by FDs + INDs   (undecidable, classical)
//!     → key implication by keys + foreign keys          (Lemma 3.2)
//!     → complement of XML specification consistency      (Theorem 3.1)
//! ```
//!
//! This crate provides the relational side of that chain: schemas, finite
//! instances, the four dependency forms with their satisfaction relations
//! ([`model`]), the classical chase as a step-bounded semi-decision procedure
//! for FD/IND implication ([`chase`]), and the executable Lemma 3.2 encoding
//! ([`encode`]).  The XML half of Theorem 3.1 lives in `xic-core::reductions`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chase;
pub mod encode;
pub mod model;

pub use chase::{implies_fd, implies_ind, ChaseConfig, ChaseResult};
pub use encode::{encode_fd_implication, EncodedImplication};
pub use model::{instance_satisfies, Instance, RelConstraint, RelId, RelSchema, Relation, Tuple};
