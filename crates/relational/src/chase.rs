//! The chase for functional and inclusion dependencies.
//!
//! The paper's undecidability proof (Lemma 3.2 / Theorem 3.1) starts from the
//! classical fact that implication of FDs by FDs and INDs is undecidable.
//! There is therefore no complete procedure to implement — what *can* be
//! implemented is the standard chase, which is sound and complete whenever it
//! terminates but may run forever on cyclic inclusion dependencies.  This
//! module provides a step-bounded chase used by the `undecidability_frontier`
//! example and by the tests of the Theorem 3.1 reduction.

use std::collections::HashMap;

use crate::model::{Instance, RelConstraint, RelId, RelSchema};

/// Result of a bounded chase-based implication test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaseResult {
    /// The dependency is implied (the chase closed the goal).
    Implied,
    /// The dependency is not implied; the counterexample instance satisfies
    /// Σ but violates the target.
    NotImplied(Instance),
    /// The step budget was exhausted before the chase terminated — the
    /// observable footprint of the undecidability frontier.
    Unknown,
}

impl ChaseResult {
    /// Whether the result is [`ChaseResult::Implied`].
    pub fn is_implied(&self) -> bool {
        matches!(self, ChaseResult::Implied)
    }
}

/// Configuration of the bounded chase.
#[derive(Debug, Clone)]
pub struct ChaseConfig {
    /// Maximum number of chase steps (tuple insertions plus equalities).
    pub max_steps: usize,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig { max_steps: 5_000 }
    }
}

/// Internal chase state: tuples hold labelled nulls represented as integers
/// managed by a union-find.
struct ChaseState {
    tables: Vec<Vec<Vec<usize>>>,
    parent: Vec<usize>,
    steps: usize,
}

impl ChaseState {
    fn new(schema: &RelSchema) -> ChaseState {
        ChaseState {
            tables: vec![Vec::new(); schema.num_relations()],
            parent: Vec::new(),
            steps: 0,
        }
    }

    fn fresh(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        id
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }

    fn values(&mut self, rel: RelId, row: usize, cols: &[usize]) -> Vec<usize> {
        cols.iter()
            .map(|&c| self.find(self.tables[rel.index()][row][c]))
            .collect()
    }

    /// One round of applying every dependency; returns `true` if anything
    /// changed.
    fn apply_round(&mut self, schema: &RelSchema, sigma: &[RelConstraint]) -> bool {
        let mut changed = false;
        for c in sigma {
            match c {
                RelConstraint::Fd { rel, lhs, rhs } => {
                    let lhs_pos = schema.positions(*rel, lhs).expect("fd lhs");
                    let rhs_pos = schema.positions(*rel, rhs).expect("fd rhs");
                    changed |= self.apply_fd(*rel, &lhs_pos, &rhs_pos);
                }
                RelConstraint::Key { rel, attrs } => {
                    // A key is the FD attrs → all attributes.
                    let lhs_pos = schema.positions(*rel, attrs).expect("key attrs");
                    let all: Vec<usize> = (0..schema.relation(*rel).attrs.len()).collect();
                    changed |= self.apply_fd(*rel, &lhs_pos, &all);
                }
                RelConstraint::Ind {
                    rel,
                    attrs,
                    target,
                    target_attrs,
                } => {
                    let src = schema.positions(*rel, attrs).expect("ind src");
                    let dst = schema.positions(*target, target_attrs).expect("ind dst");
                    changed |= self.apply_ind(schema, *rel, &src, *target, &dst);
                }
                RelConstraint::ForeignKey {
                    rel,
                    attrs,
                    target,
                    target_attrs,
                } => {
                    let src = schema.positions(*rel, attrs).expect("fk src");
                    let dst = schema.positions(*target, target_attrs).expect("fk dst");
                    changed |= self.apply_ind(schema, *rel, &src, *target, &dst);
                    let all: Vec<usize> = (0..schema.relation(*target).attrs.len()).collect();
                    changed |= self.apply_fd(*target, &dst, &all);
                }
            }
        }
        changed
    }

    fn apply_fd(&mut self, rel: RelId, lhs: &[usize], rhs: &[usize]) -> bool {
        let mut changed = false;
        let n = self.tables[rel.index()].len();
        for i in 0..n {
            for j in (i + 1)..n {
                let li = self.values(rel, i, lhs);
                let lj = self.values(rel, j, lhs);
                if li != lj {
                    continue;
                }
                for &p in rhs {
                    let vi = self.tables[rel.index()][i][p];
                    let vj = self.tables[rel.index()][j][p];
                    if self.find(vi) != self.find(vj) {
                        self.union(vi, vj);
                        self.steps += 1;
                        changed = true;
                    }
                }
            }
        }
        changed
    }

    fn apply_ind(
        &mut self,
        schema: &RelSchema,
        rel: RelId,
        src: &[usize],
        target: RelId,
        dst: &[usize],
    ) -> bool {
        let mut changed = false;
        let n = self.tables[rel.index()].len();
        for i in 0..n {
            let wanted = self.values(rel, i, src);
            let m = self.tables[target.index()].len();
            let mut found = false;
            for j in 0..m {
                if self.values(target, j, dst) == wanted {
                    found = true;
                    break;
                }
            }
            if !found {
                // Add a new tuple to the target with fresh nulls except at the
                // destination positions.
                let width = schema.relation(target).attrs.len();
                let mut tuple = Vec::with_capacity(width);
                for col in 0..width {
                    match dst.iter().position(|&d| d == col) {
                        Some(k) => tuple.push(wanted[k]),
                        None => tuple.push(self.fresh()),
                    }
                }
                self.tables[target.index()].push(tuple);
                self.steps += 1;
                changed = true;
            }
        }
        changed
    }

    /// Converts the chase state into a concrete instance: each equivalence
    /// class of nulls becomes the constant `v<root>`.
    #[allow(clippy::wrong_self_convention)] // mutates union-find roots while reading
    fn to_instance(&mut self, schema: &RelSchema) -> Instance {
        let mut instance = Instance::empty(schema);
        for rel in schema.relations() {
            let rows = self.tables[rel.index()].clone();
            for row in rows {
                let tuple = row.iter().map(|&v| format!("v{}", self.find(v))).collect();
                instance.insert(rel, tuple);
            }
        }
        instance
    }
}

/// Bounded chase test of `Σ ⊨ (R : X → Y)`.
pub fn implies_fd(
    schema: &RelSchema,
    sigma: &[RelConstraint],
    rel: RelId,
    lhs: &[String],
    rhs: &[String],
    config: &ChaseConfig,
) -> ChaseResult {
    let lhs_pos = schema.positions(rel, lhs).expect("target fd lhs");
    let rhs_pos = schema.positions(rel, rhs).expect("target fd rhs");
    let width = schema.relation(rel).attrs.len();
    let mut state = ChaseState::new(schema);
    // Two tuples agreeing exactly on the lhs.
    let shared: HashMap<usize, usize> = lhs_pos.iter().map(|&p| (p, 0)).collect::<HashMap<_, _>>();
    let mut t1 = Vec::with_capacity(width);
    let mut t2 = Vec::with_capacity(width);
    let mut shared_vals: HashMap<usize, usize> = HashMap::new();
    for col in 0..width {
        if shared.contains_key(&col) {
            let v = *shared_vals.entry(col).or_insert_with(|| state.fresh());
            t1.push(v);
        } else {
            t1.push(state.fresh());
        }
    }
    for col in 0..width {
        if shared.contains_key(&col) {
            t2.push(*shared_vals.get(&col).expect("shared value"));
        } else {
            t2.push(state.fresh());
        }
    }
    state.tables[rel.index()].push(t1);
    state.tables[rel.index()].push(t2);

    loop {
        if state.steps > config.max_steps {
            return ChaseResult::Unknown;
        }
        let changed = state.apply_round(schema, sigma);
        // Check the goal: rows 0 and 1 of `rel` agree on the rhs.
        let a = state.values(rel, 0, &rhs_pos);
        let b = state.values(rel, 1, &rhs_pos);
        if a == b {
            return ChaseResult::Implied;
        }
        if !changed {
            return ChaseResult::NotImplied(state.to_instance(schema));
        }
    }
}

/// Bounded chase test of `Σ ⊨ R1[X] ⊆ R2[Y]`.
pub fn implies_ind(
    schema: &RelSchema,
    sigma: &[RelConstraint],
    rel: RelId,
    attrs: &[String],
    target: RelId,
    target_attrs: &[String],
    config: &ChaseConfig,
) -> ChaseResult {
    let src_pos = schema.positions(rel, attrs).expect("target ind src");
    let dst_pos = schema
        .positions(target, target_attrs)
        .expect("target ind dst");
    let width = schema.relation(rel).attrs.len();
    let mut state = ChaseState::new(schema);
    let tuple: Vec<usize> = (0..width).map(|_| state.fresh()).collect();
    state.tables[rel.index()].push(tuple);

    loop {
        if state.steps > config.max_steps {
            return ChaseResult::Unknown;
        }
        let changed = state.apply_round(schema, sigma);
        let wanted = state.values(rel, 0, &src_pos);
        let m = state.tables[target.index()].len();
        let mut found = false;
        for j in 0..m {
            if state.values(target, j, &dst_pos) == wanted {
                found = true;
                break;
            }
        }
        if found {
            return ChaseResult::Implied;
        }
        if !changed {
            return ChaseResult::NotImplied(state.to_instance(schema));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::instance_satisfies;

    fn owned(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn fd_transitivity_is_implied() {
        // R(a,b,c) with a→b and b→c implies a→c.
        let mut s = RelSchema::new();
        let r = s.add_relation("R", &["a", "b", "c"]);
        let sigma = vec![
            RelConstraint::fd(r, &["a"], &["b"]),
            RelConstraint::fd(r, &["b"], &["c"]),
        ];
        let result = implies_fd(
            &s,
            &sigma,
            r,
            &owned(&["a"]),
            &owned(&["c"]),
            &ChaseConfig::default(),
        );
        assert!(result.is_implied());
    }

    #[test]
    fn unrelated_fd_is_not_implied() {
        let mut s = RelSchema::new();
        let r = s.add_relation("R", &["a", "b", "c"]);
        let sigma = vec![RelConstraint::fd(r, &["a"], &["b"])];
        let result = implies_fd(
            &s,
            &sigma,
            r,
            &owned(&["b"]),
            &owned(&["c"]),
            &ChaseConfig::default(),
        );
        match result {
            ChaseResult::NotImplied(instance) => {
                // The counterexample satisfies Σ and violates b→c.
                assert!(instance_satisfies(&s, &instance, &sigma));
                assert!(!RelConstraint::fd(r, &["b"], &["c"]).satisfied_by(&s, &instance));
            }
            other => panic!("expected NotImplied, got {other:?}"),
        }
    }

    #[test]
    fn ind_transitivity_is_implied() {
        let mut s = RelSchema::new();
        let r1 = s.add_relation("R1", &["x"]);
        let r2 = s.add_relation("R2", &["y"]);
        let r3 = s.add_relation("R3", &["z"]);
        let sigma = vec![
            RelConstraint::ind(r1, &["x"], r2, &["y"]),
            RelConstraint::ind(r2, &["y"], r3, &["z"]),
        ];
        let result = implies_ind(
            &s,
            &sigma,
            r1,
            &owned(&["x"]),
            r3,
            &owned(&["z"]),
            &ChaseConfig::default(),
        );
        assert!(result.is_implied());
    }

    #[test]
    fn ind_not_implied_gives_counterexample() {
        let mut s = RelSchema::new();
        let r1 = s.add_relation("R1", &["x"]);
        let r2 = s.add_relation("R2", &["y"]);
        let sigma: Vec<RelConstraint> = vec![];
        let result = implies_ind(
            &s,
            &sigma,
            r1,
            &owned(&["x"]),
            r2,
            &owned(&["y"]),
            &ChaseConfig::default(),
        );
        match result {
            ChaseResult::NotImplied(instance) => {
                assert_eq!(instance.tuples(r1).len(), 1);
                assert!(instance.tuples(r2).is_empty());
            }
            other => panic!("expected NotImplied, got {other:?}"),
        }
    }

    #[test]
    fn interaction_of_fd_and_ind() {
        // Classic interaction: R(a,b), S(c) with R[a] ⊆ S[c], S[c] ⊆ R[b]
        // and the FD R: a→b.  Chase may need several rounds; the target
        // R[a] ⊆ R[b] is implied... actually we check a simpler consequence:
        // S[c] ⊆ R[b] combined with R[a] ⊆ S[c] implies R[a] ⊆ R[b].
        let mut s = RelSchema::new();
        let r = s.add_relation("R", &["a", "b"]);
        let t = s.add_relation("S", &["c"]);
        let sigma = vec![
            RelConstraint::ind(r, &["a"], t, &["c"]),
            RelConstraint::ind(t, &["c"], r, &["b"]),
        ];
        let result = implies_ind(
            &s,
            &sigma,
            r,
            &owned(&["a"]),
            r,
            &owned(&["b"]),
            &ChaseConfig::default(),
        );
        assert!(result.is_implied());
    }

    #[test]
    fn cyclic_inds_hit_the_step_budget() {
        // R(a,b) with R[a] ⊆ R[b]: chasing the FD goal keeps inventing new
        // tuples forever; with a tiny budget the result is Unknown.
        let mut s = RelSchema::new();
        let r = s.add_relation("R", &["a", "b"]);
        let sigma = vec![RelConstraint::ind(r, &["a"], r, &["b"])];
        let result = implies_fd(
            &s,
            &sigma,
            r,
            &owned(&["a"]),
            &owned(&["b"]),
            &ChaseConfig { max_steps: 10 },
        );
        assert_eq!(result, ChaseResult::Unknown);
    }

    #[test]
    fn keys_and_foreign_keys_chase() {
        // emp(dept) ⊆ dept(dname) with dname a key; the FK implies the IND.
        let mut s = RelSchema::new();
        let emp = s.add_relation("emp", &["id", "dept"]);
        let dept = s.add_relation("dept", &["dname", "head"]);
        let sigma = vec![
            RelConstraint::key(dept, &["dname"]),
            RelConstraint::foreign_key(emp, &["dept"], dept, &["dname"]),
        ];
        let result = implies_ind(
            &s,
            &sigma,
            emp,
            &owned(&["dept"]),
            dept,
            &owned(&["dname"]),
            &ChaseConfig::default(),
        );
        assert!(result.is_implied());
        // head is not a key of dept: not implied.
        let result = implies_fd(
            &s,
            &sigma,
            dept,
            &owned(&["head"]),
            &owned(&["dname"]),
            &ChaseConfig::default(),
        );
        assert!(matches!(result, ChaseResult::NotImplied(_)));
    }
}
