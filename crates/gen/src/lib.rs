//! # xic-gen — workload generators for tests and benchmarks
//!
//! The paper's evaluation is a complexity landscape, not a measurement table,
//! so reproducing it means measuring the implemented procedures on families
//! of specifications whose size can be dialled up.  This crate provides those
//! families:
//!
//! * [`dtd_gen`] — random and structured DTD generators (flat catalogues,
//!   chains, stars of unions, recursive list shapes);
//! * [`constraint_gen`] — random constraint sets of each class over a DTD;
//! * [`doc_gen`] — random documents conforming to a DTD (used to exercise
//!   validation and satisfaction checking at scale);
//! * [`workloads`] — the named experiment workloads E2–E12 referenced by
//!   DESIGN.md / EXPERIMENTS.md and the `xic-bench` harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod constraint_gen;
pub mod doc_gen;
pub mod dtd_gen;
pub mod workloads;

pub use constraint_gen::{random_unary_constraints, ConstraintGenConfig};
pub use doc_gen::{random_document, DocGenConfig};
pub use dtd_gen::fanout_dtd;
pub use dtd_gen::{catalogue_dtd, random_dtd, recursive_list_dtd, DtdGenConfig};
pub use workloads::{
    fixed_dtd_growing_sigma, hard_lip_family, inconsistent_fanout_family, keys_only_family,
    negation_family, primary_key_family, unary_consistency_family, SpecInstance,
};
