//! Random document generation: valid XML trees for a given DTD.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xic_dtd::{analyze, ContentModel, Dtd, DtdAnalysis, ElemId};
use xic_xml::{NodeId, XmlTree};

/// Parameters for [`random_document`].
#[derive(Debug, Clone)]
pub struct DocGenConfig {
    /// Soft cap on the number of elements.
    pub max_elements: usize,
    /// Expansion depth after which stars/options collapse.
    pub max_depth: usize,
    /// Expected repetitions for starred content.
    pub star_fanout: usize,
    /// Size of the attribute value pool (smaller pools create more key
    /// clashes, useful for violation-handling tests).
    pub value_pool: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DocGenConfig {
    fn default() -> Self {
        DocGenConfig {
            max_elements: 500,
            max_depth: 16,
            star_fanout: 3,
            value_pool: 50,
            seed: 1,
        }
    }
}

/// Generates a random document conforming to the DTD (structurally valid and
/// with every required attribute present).  Returns `None` if the DTD has no
/// valid tree at all.
pub fn random_document(dtd: &Dtd, config: &DocGenConfig) -> Option<XmlTree> {
    let analysis = analyze(dtd);
    if !analysis.satisfiable() {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut tree = XmlTree::new(dtd.root());
    let mut elements = 1usize;
    let root = tree.root();
    expand(
        dtd,
        &analysis,
        config,
        &mut rng,
        &mut tree,
        root,
        dtd.root(),
        0,
        &mut elements,
    );
    // Fill attributes.
    let nodes: Vec<NodeId> = tree.elements().collect();
    for node in nodes {
        if let Some(ty) = tree.element_type(node) {
            for &attr in dtd.attrs_of(ty) {
                let v = format!("val{}", rng.gen_range(0..config.value_pool.max(1)));
                tree.set_attr(node, attr, v);
            }
        }
    }
    Some(tree)
}

#[allow(clippy::too_many_arguments)]
fn expand(
    dtd: &Dtd,
    analysis: &DtdAnalysis,
    config: &DocGenConfig,
    rng: &mut StdRng,
    tree: &mut XmlTree,
    node: NodeId,
    ty: ElemId,
    depth: usize,
    elements: &mut usize,
) {
    let minimal = depth >= config.max_depth || *elements >= config.max_elements;
    let mut word = Vec::new();
    sample(dtd.content(ty), analysis, config, rng, minimal, &mut word);
    for symbol in word {
        match symbol {
            Symbol::Text => {
                tree.add_text(node, format!("text{}", rng.gen_range(0..1000)));
            }
            Symbol::Element(child_ty) => {
                *elements += 1;
                let child = tree.add_element(node, child_ty);
                expand(
                    dtd,
                    analysis,
                    config,
                    rng,
                    tree,
                    child,
                    child_ty,
                    depth + 1,
                    elements,
                );
            }
        }
    }
}

enum Symbol {
    Element(ElemId),
    Text,
}

fn sample(
    model: &ContentModel,
    analysis: &DtdAnalysis,
    config: &DocGenConfig,
    rng: &mut StdRng,
    minimal: bool,
    out: &mut Vec<Symbol>,
) {
    match model {
        ContentModel::Epsilon => {}
        ContentModel::Text => out.push(Symbol::Text),
        ContentModel::Element(e) => out.push(Symbol::Element(*e)),
        ContentModel::Seq(a, b) => {
            sample(a, analysis, config, rng, minimal, out);
            sample(b, analysis, config, rng, minimal, out);
        }
        ContentModel::Alt(a, b) => {
            let a_ok = productive(a, analysis);
            let b_ok = productive(b, analysis);
            let pick_a = match (a_ok, b_ok) {
                (true, false) => true,
                (false, true) => false,
                _ => rng.gen_bool(0.5),
            };
            if pick_a {
                sample(a, analysis, config, rng, minimal, out);
            } else {
                sample(b, analysis, config, rng, minimal, out);
            }
        }
        ContentModel::Star(a) => {
            let reps = if minimal || !productive(a, analysis) {
                0
            } else {
                rng.gen_range(0..=config.star_fanout)
            };
            for _ in 0..reps {
                sample(a, analysis, config, rng, minimal, out);
            }
        }
        ContentModel::Plus(a) => {
            let reps = if minimal {
                1
            } else {
                rng.gen_range(1..=config.star_fanout.max(1))
            };
            for _ in 0..reps {
                sample(a, analysis, config, rng, minimal, out);
            }
        }
        ContentModel::Opt(a) => {
            if !minimal && productive(a, analysis) && rng.gen_bool(0.5) {
                sample(a, analysis, config, rng, minimal, out);
            }
        }
    }
}

fn productive(model: &ContentModel, analysis: &DtdAnalysis) -> bool {
    match model {
        ContentModel::Epsilon | ContentModel::Text => true,
        ContentModel::Element(e) => analysis.productive(*e),
        ContentModel::Seq(a, b) => productive(a, analysis) && productive(b, analysis),
        ContentModel::Alt(a, b) => productive(a, analysis) || productive(b, analysis),
        ContentModel::Star(_) | ContentModel::Opt(_) => true,
        ContentModel::Plus(a) => productive(a, analysis),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtd_gen::{catalogue_dtd, random_dtd, recursive_list_dtd, DtdGenConfig};
    use xic_dtd::{example_d1, example_d2};
    use xic_xml::validate;

    #[test]
    fn documents_validate_against_their_dtd() {
        for seed in 0..5 {
            let dtd = random_dtd(&DtdGenConfig {
                seed,
                ..Default::default()
            });
            let doc = random_document(
                &dtd,
                &DocGenConfig {
                    seed,
                    ..Default::default()
                },
            )
            .expect("satisfiable DTD");
            let errors = validate(&doc, &dtd);
            assert!(errors.is_empty(), "seed {seed}: {errors:?}");
        }
    }

    #[test]
    fn d1_documents_have_paired_subjects() {
        let d1 = example_d1();
        let doc = random_document(&d1, &DocGenConfig::default()).unwrap();
        assert!(validate(&doc, &d1).is_empty());
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        assert_eq!(doc.ext_count(subject), 2 * doc.ext_count(teacher));
    }

    #[test]
    fn unsatisfiable_dtd_yields_none() {
        assert!(random_document(&example_d2(), &DocGenConfig::default()).is_none());
    }

    #[test]
    fn element_budget_is_respected_softly() {
        let dtd = catalogue_dtd(8);
        let doc = random_document(
            &dtd,
            &DocGenConfig {
                max_elements: 50,
                star_fanout: 10,
                ..Default::default()
            },
        )
        .unwrap();
        // The cap is soft (the current expansion finishes) but must stay in
        // the same order of magnitude.
        assert!(doc.num_nodes() < 100 * 4);
    }

    #[test]
    fn recursive_dtd_terminates() {
        let dtd = recursive_list_dtd();
        let doc = random_document(
            &dtd,
            &DocGenConfig {
                max_depth: 6,
                ..Default::default()
            },
        )
        .expect("satisfiable");
        assert!(validate(&doc, &dtd).is_empty());
    }
}
