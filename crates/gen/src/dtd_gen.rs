//! DTD generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xic_dtd::{ContentModel, Dtd, DtdBuilder};

/// Parameters for [`random_dtd`].
#[derive(Debug, Clone)]
pub struct DtdGenConfig {
    /// Number of element types (≥ 2).
    pub num_types: usize,
    /// Attributes per element type.
    pub attrs_per_type: usize,
    /// Probability that a content-model slot is starred.
    pub star_probability: f64,
    /// Probability that two children are combined with `|` instead of `,`.
    pub union_probability: f64,
    /// Maximum children per content model.
    pub max_children: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DtdGenConfig {
    fn default() -> Self {
        DtdGenConfig {
            num_types: 10,
            attrs_per_type: 2,
            star_probability: 0.4,
            union_probability: 0.3,
            max_children: 3,
            seed: 42,
        }
    }
}

/// Generates a random *layered* DTD: element type `i` only references types
/// with larger indices, so the DTD is acyclic and always satisfiable, and
/// every type is reachable from the root.  This is the generic workload shape
/// for the consistency benches.
pub fn random_dtd(config: &DtdGenConfig) -> Dtd {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.num_types.max(2);
    let mut b = Dtd::builder();
    let types: Vec<_> = (0..n).map(|i| b.elem(&format!("t{i}"))).collect();
    for i in 0..n {
        let remaining = n - i - 1;
        if remaining == 0 {
            b.content(types[i], ContentModel::Text);
        } else {
            let children = rng.gen_range(1..=config.max_children.min(remaining).max(1));
            let mut parts = Vec::with_capacity(children);
            for _ in 0..children {
                let child = types[rng.gen_range(i + 1..n)];
                let mut part = ContentModel::Element(child);
                if rng.gen_bool(config.star_probability) {
                    part = ContentModel::star(part);
                }
                parts.push(part);
            }
            let model = if rng.gen_bool(config.union_probability) && parts.len() >= 2 {
                ContentModel::alt_all(parts)
            } else {
                ContentModel::seq_all(parts)
            };
            b.content(types[i], model);
        }
        for a in 0..config.attrs_per_type {
            b.attr(types[i], &format!("a{i}_{a}"));
        }
    }
    b.build("t0").expect("generated DTD is well-formed")
}

/// A flat "catalogue" DTD with `n` record kinds under a starred root:
/// `<!ELEMENT catalogue (kind0*, kind1*, …)>`, each kind carrying `id` and
/// `ref` attributes.  Foreign keys between kinds are what the unary
/// consistency workloads constrain.
pub fn catalogue_dtd(kinds: usize) -> Dtd {
    let mut b = Dtd::builder();
    let root = b.elem("catalogue");
    let mut parts = Vec::with_capacity(kinds);
    for k in 0..kinds {
        let kind = b.elem(&format!("kind{k}"));
        b.content(kind, ContentModel::Text);
        b.attr(kind, &format!("id{k}"));
        b.attr(kind, &format!("ref{k}"));
        parts.push(ContentModel::star(ContentModel::Element(kind)));
    }
    b.content(root, ContentModel::seq_all(parts));
    b.build("catalogue").expect("catalogue DTD is well-formed")
}

/// A recursive list DTD: `list → (item, list) | ε`, `item` carrying an `id`.
/// The `depth_hint` only names the DTD; recursion depth is decided by
/// documents/solutions, exercising the star-free recursion path of the
/// simplification and the realizability cuts.
pub fn recursive_list_dtd() -> Dtd {
    let mut b = Dtd::builder();
    let root = b.elem("doc");
    let list = b.elem("list");
    let item = b.elem("item");
    b.content(root, ContentModel::Element(list));
    b.content(
        list,
        ContentModel::alt(
            ContentModel::seq(ContentModel::Element(item), ContentModel::Element(list)),
            ContentModel::Epsilon,
        ),
    );
    b.content(item, ContentModel::Text);
    b.attr(item, "id");
    b.attr(item, "next");
    b.build("doc").expect("list DTD is well-formed")
}

/// A teacher-style DTD with a configurable fanout: each `group` requires
/// exactly `fanout` members, reproducing at scale the cardinality interaction
/// of the paper's introductory example.
pub fn fanout_dtd(fanout: usize) -> Dtd {
    let mut b = Dtd::builder();
    let root = b.elem("groups");
    let group = b.elem("group");
    let member = b.elem("member");
    b.content(root, ContentModel::plus(ContentModel::Element(group)));
    b.content(
        group,
        ContentModel::seq_all(std::iter::repeat_n(
            ContentModel::Element(member),
            fanout.max(1),
        )),
    );
    b.content(member, ContentModel::Text);
    b.attr(group, "gid");
    b.attr(member, "owner");
    b.build("groups").expect("fanout DTD is well-formed")
}

/// Builder escape hatch used by a few tests.
pub fn builder() -> DtdBuilder {
    Dtd::builder()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_dtd::dtd_satisfiable;

    #[test]
    fn random_dtds_are_satisfiable_and_sized() {
        for seed in 0..5 {
            let dtd = random_dtd(&DtdGenConfig {
                seed,
                num_types: 12,
                ..Default::default()
            });
            assert_eq!(dtd.num_types(), 12);
            assert!(dtd_satisfiable(&dtd));
        }
    }

    #[test]
    fn random_dtd_is_deterministic_per_seed() {
        let a = random_dtd(&DtdGenConfig::default());
        let b = random_dtd(&DtdGenConfig::default());
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn catalogue_shape() {
        let dtd = catalogue_dtd(5);
        assert_eq!(dtd.num_types(), 6);
        assert!(dtd_satisfiable(&dtd));
        assert!(dtd.type_by_name("kind4").is_some());
    }

    #[test]
    fn recursive_list_is_satisfiable() {
        assert!(dtd_satisfiable(&recursive_list_dtd()));
    }

    #[test]
    fn fanout_dtd_shape() {
        let dtd = fanout_dtd(3);
        let group = dtd.type_by_name("group").unwrap();
        assert_eq!(dtd.content(group).size(), 5);
        assert!(dtd_satisfiable(&dtd));
    }
}
