//! Named experiment workloads (see DESIGN.md §6 and EXPERIMENTS.md).
//!
//! Each function produces a family of [`SpecInstance`]s indexed by a size
//! parameter; the `xic-bench` harness measures the relevant procedure on each
//! member and reports the scaling curve that stands in for the corresponding
//! row of the paper's Figure 5.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xic_constraints::ConstraintSet;
use xic_core::{lip_to_spec, LipSpec};
use xic_dtd::Dtd;

use crate::constraint_gen::{random_unary_constraints, reference_chain, ConstraintGenConfig};
use crate::dtd_gen::{catalogue_dtd, fanout_dtd, random_dtd, DtdGenConfig};

/// One benchmarkable specification instance.
#[derive(Debug, Clone)]
pub struct SpecInstance {
    /// Short label (used as the Criterion benchmark id).
    pub label: String,
    /// The DTD.
    pub dtd: Dtd,
    /// The constraint set.
    pub sigma: ConstraintSet,
}

impl SpecInstance {
    /// Combined size `|D| + |Σ|` used as the x-axis of scaling plots.
    pub fn size(&self) -> usize {
        self.dtd.size() + self.sigma.len()
    }
}

/// E3a — consistent unary key/foreign-key specifications of growing size
/// (catalogue DTD with a reference chain).
pub fn unary_consistency_family(sizes: &[usize]) -> Vec<SpecInstance> {
    sizes
        .iter()
        .map(|&kinds| {
            let dtd = catalogue_dtd(kinds);
            let sigma = reference_chain(&dtd, kinds);
            SpecInstance {
                label: format!("chain/{kinds}"),
                dtd,
                sigma,
            }
        })
        .collect()
}

/// E3b — *inconsistent* unary specifications of growing size, generalising
/// the paper's teachers example: each group needs `fanout` members, members
/// reference groups through a foreign key, and `owner` is a key of members —
/// so |member| ≤ |group| while the DTD forces |member| = fanout·|group|.
pub fn inconsistent_fanout_family(fanouts: &[usize]) -> Vec<SpecInstance> {
    fanouts
        .iter()
        .map(|&fanout| {
            let dtd = fanout_dtd(fanout);
            let group = dtd.type_by_name("group").expect("group");
            let member = dtd.type_by_name("member").expect("member");
            let gid = dtd.attr_by_name("gid").expect("gid");
            let owner = dtd.attr_by_name("owner").expect("owner");
            let sigma = ConstraintSet::from_vec(vec![
                xic_constraints::Constraint::unary_key(group, gid),
                xic_constraints::Constraint::unary_key(member, owner),
                xic_constraints::Constraint::unary_foreign_key(member, owner, group, gid),
            ]);
            SpecInstance {
                label: format!("fanout/{fanout}"),
                dtd,
                sigma,
            }
        })
        .collect()
}

/// E3c / E4 — hard instances from the Theorem 4.7 reduction: random 0/1
/// exact-cover style systems with `rows` rows and `cols` columns.
pub fn hard_lip_family(shapes: &[(usize, usize)], seed: u64) -> Vec<(String, LipSpec)> {
    let mut rng = StdRng::seed_from_u64(seed);
    shapes
        .iter()
        .map(|&(rows, cols)| {
            let mut matrix = vec![vec![false; cols]; rows];
            for row in matrix.iter_mut() {
                // Each row selects 2–3 random columns.
                let picks = 2 + rng.gen_range(0..2usize);
                for _ in 0..picks {
                    let j = rng.gen_range(0..cols);
                    row[j] = true;
                }
            }
            (format!("lip/{rows}x{cols}"), lip_to_spec(&matrix))
        })
        .collect()
}

/// E4 — primary-key-restricted unary workloads over random DTDs.
pub fn primary_key_family(sizes: &[usize], seed: u64) -> Vec<SpecInstance> {
    sizes
        .iter()
        .map(|&n| {
            let dtd = random_dtd(&DtdGenConfig {
                num_types: n,
                seed,
                ..Default::default()
            });
            let sigma = random_unary_constraints(
                &dtd,
                &ConstraintGenConfig {
                    keys: n / 2,
                    foreign_keys: n / 2,
                    primary_keys_only: true,
                    seed,
                    ..Default::default()
                },
            );
            SpecInstance {
                label: format!("primary/{n}"),
                dtd,
                sigma,
            }
        })
        .collect()
}

/// E5 — a fixed DTD with a growing number of constraints (Corollary 4.11 /
/// Corollary 5.5: PTIME when the DTD is fixed).
pub fn fixed_dtd_growing_sigma(
    kinds: usize,
    sigma_sizes: &[usize],
    seed: u64,
) -> Vec<SpecInstance> {
    let dtd = catalogue_dtd(kinds);
    sigma_sizes
        .iter()
        .map(|&m| {
            let sigma = random_unary_constraints(
                &dtd,
                &ConstraintGenConfig {
                    keys: m / 2,
                    foreign_keys: m - m / 2,
                    seed,
                    ..Default::default()
                },
            );
            SpecInstance {
                label: format!("fixed-dtd/{m}"),
                dtd: dtd.clone(),
                sigma,
            }
        })
        .collect()
}

/// E6 / E7 — keys-only and DTD-only workloads over growing random DTDs.
pub fn keys_only_family(sizes: &[usize], seed: u64) -> Vec<SpecInstance> {
    sizes
        .iter()
        .map(|&n| {
            let dtd = random_dtd(&DtdGenConfig {
                num_types: n,
                seed,
                ..Default::default()
            });
            let mut sigma = ConstraintSet::new();
            for ty in dtd.types() {
                if let Some(&attr) = dtd.attrs_of(ty).first() {
                    sigma.push(xic_constraints::Constraint::unary_key(ty, attr));
                }
            }
            SpecInstance {
                label: format!("keys-only/{n}"),
                dtd,
                sigma,
            }
        })
        .collect()
}

/// E9 — workloads with negated keys and negated inclusion constraints
/// (Theorem 5.1).
pub fn negation_family(sizes: &[usize], seed: u64) -> Vec<SpecInstance> {
    sizes
        .iter()
        .map(|&kinds| {
            let dtd = catalogue_dtd(kinds);
            let sigma = random_unary_constraints(
                &dtd,
                &ConstraintGenConfig {
                    keys: kinds / 2,
                    foreign_keys: kinds / 2,
                    negated_keys: 2.min(kinds),
                    negated_inclusions: 2.min(kinds),
                    seed,
                    ..Default::default()
                },
            );
            SpecInstance {
                label: format!("negation/{kinds}"),
                dtd,
                sigma,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_core::ConsistencyChecker;

    #[test]
    fn chain_family_is_consistent() {
        for spec in unary_consistency_family(&[2, 4]) {
            let outcome = ConsistencyChecker::new()
                .check(&spec.dtd, &spec.sigma)
                .unwrap();
            assert!(
                outcome.is_consistent(),
                "{}: {}",
                spec.label,
                outcome.explanation()
            );
        }
    }

    #[test]
    fn fanout_family_is_inconsistent() {
        for spec in inconsistent_fanout_family(&[2, 3]) {
            let outcome = ConsistencyChecker::new()
                .check(&spec.dtd, &spec.sigma)
                .unwrap();
            assert!(
                outcome.is_inconsistent(),
                "{}: {}",
                spec.label,
                outcome.explanation()
            );
        }
    }

    #[test]
    fn lip_family_produces_unary_specs() {
        for (label, spec) in hard_lip_family(&[(3, 4)], 11) {
            assert!(spec.sigma.validate(&spec.dtd).is_ok(), "{label}");
            assert!(spec
                .sigma
                .in_class(xic_constraints::ConstraintClass::UnaryKeyForeignKey));
        }
    }

    #[test]
    fn families_are_well_formed() {
        for spec in primary_key_family(&[6], 3)
            .into_iter()
            .chain(fixed_dtd_growing_sigma(6, &[4], 3))
            .chain(keys_only_family(&[6], 3))
            .chain(negation_family(&[3], 3))
        {
            assert!(spec.sigma.validate(&spec.dtd).is_ok(), "{}", spec.label);
            assert!(spec.size() > 0);
        }
    }
}
