//! Random constraint-set generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xic_constraints::{Constraint, ConstraintSet};
use xic_dtd::{AttrId, Dtd, ElemId};

/// Parameters for [`random_unary_constraints`].
#[derive(Debug, Clone)]
pub struct ConstraintGenConfig {
    /// Number of unary keys to draw.
    pub keys: usize,
    /// Number of unary foreign keys to draw.
    pub foreign_keys: usize,
    /// Number of plain unary inclusion constraints to draw.
    pub inclusions: usize,
    /// Number of negated keys to draw (0 keeps the set in `C^unary_{K,FK}`).
    pub negated_keys: usize,
    /// Number of negated inclusion constraints to draw.
    pub negated_inclusions: usize,
    /// Enforce the primary-key restriction (at most one key per type).
    pub primary_keys_only: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ConstraintGenConfig {
    fn default() -> Self {
        ConstraintGenConfig {
            keys: 3,
            foreign_keys: 3,
            inclusions: 0,
            negated_keys: 0,
            negated_inclusions: 0,
            primary_keys_only: false,
            seed: 7,
        }
    }
}

/// All (element type, attribute) slots of a DTD.
fn slots(dtd: &Dtd) -> Vec<(ElemId, AttrId)> {
    let mut out = Vec::new();
    for ty in dtd.types() {
        for &attr in dtd.attrs_of(ty) {
            out.push((ty, attr));
        }
    }
    out
}

/// Draws a random set of unary constraints over the DTD's attribute slots.
/// Returns an empty set if the DTD has no attributes.
pub fn random_unary_constraints(dtd: &Dtd, config: &ConstraintGenConfig) -> ConstraintSet {
    let slots = slots(dtd);
    let mut sigma = ConstraintSet::new();
    if slots.is_empty() {
        return sigma;
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut keyed_types: Vec<ElemId> = Vec::new();
    let pick = |rng: &mut StdRng| slots[rng.gen_range(0..slots.len())];

    for _ in 0..config.keys {
        let (ty, attr) = pick(&mut rng);
        if config.primary_keys_only && keyed_types.contains(&ty) {
            continue;
        }
        keyed_types.push(ty);
        sigma.push(Constraint::unary_key(ty, attr));
    }
    for _ in 0..config.foreign_keys {
        let (t1, l1) = pick(&mut rng);
        let (t2, l2) = pick(&mut rng);
        if config.primary_keys_only && keyed_types.contains(&t2) {
            // The foreign key's target key would be a second key on t2.
            continue;
        }
        keyed_types.push(t2);
        sigma.push(Constraint::unary_foreign_key(t1, l1, t2, l2));
    }
    for _ in 0..config.inclusions {
        let (t1, l1) = pick(&mut rng);
        let (t2, l2) = pick(&mut rng);
        sigma.push(Constraint::unary_inclusion(t1, l1, t2, l2));
    }
    for _ in 0..config.negated_keys {
        let (ty, attr) = pick(&mut rng);
        sigma.push(Constraint::not_unary_key(ty, attr));
    }
    for _ in 0..config.negated_inclusions {
        let (t1, l1) = pick(&mut rng);
        let (t2, l2) = pick(&mut rng);
        sigma.push(Constraint::not_unary_inclusion(t1, l1, t2, l2));
    }
    sigma
}

/// A deterministic "reference chain" constraint set over [`crate::dtd_gen::catalogue_dtd`]:
/// each kind's `ref` attribute is a foreign key into the next kind's `id`,
/// and every `id` is a key.  Always consistent, and the number of kinds
/// controls the instance size.
pub fn reference_chain(dtd: &Dtd, kinds: usize) -> ConstraintSet {
    let mut sigma = ConstraintSet::new();
    for k in 0..kinds {
        let kind = dtd.type_by_name(&format!("kind{k}")).expect("kind exists");
        let id = dtd.attr_by_name(&format!("id{k}")).expect("id exists");
        sigma.push(Constraint::unary_key(kind, id));
    }
    for k in 0..kinds {
        let next = (k + 1) % kinds;
        let kind = dtd.type_by_name(&format!("kind{k}")).expect("kind exists");
        let refk = dtd.attr_by_name(&format!("ref{k}")).expect("ref exists");
        let target = dtd
            .type_by_name(&format!("kind{next}"))
            .expect("kind exists");
        let target_id = dtd.attr_by_name(&format!("id{next}")).expect("id exists");
        sigma.push(Constraint::unary_foreign_key(kind, refk, target, target_id));
    }
    sigma
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtd_gen::{catalogue_dtd, random_dtd, DtdGenConfig};
    use xic_constraints::ConstraintClass;

    #[test]
    fn generated_sets_are_well_formed_and_unary() {
        let dtd = random_dtd(&DtdGenConfig::default());
        let sigma = random_unary_constraints(
            &dtd,
            &ConstraintGenConfig {
                keys: 5,
                foreign_keys: 5,
                ..Default::default()
            },
        );
        assert!(sigma.validate(&dtd).is_ok());
        assert!(sigma.in_class(ConstraintClass::UnaryKeyForeignKey));
    }

    #[test]
    fn negations_move_the_class_up() {
        let dtd = random_dtd(&DtdGenConfig::default());
        let sigma = random_unary_constraints(
            &dtd,
            &ConstraintGenConfig {
                negated_keys: 2,
                negated_inclusions: 1,
                ..Default::default()
            },
        );
        assert!(sigma.validate(&dtd).is_ok());
        assert!(sigma.in_class(ConstraintClass::UnaryKeyNegInclusionNeg));
        assert!(!sigma.in_class(ConstraintClass::UnaryKeyForeignKey));
    }

    #[test]
    fn primary_key_restriction_is_respected() {
        let dtd = catalogue_dtd(6);
        let sigma = random_unary_constraints(
            &dtd,
            &ConstraintGenConfig {
                keys: 20,
                foreign_keys: 20,
                primary_keys_only: true,
                seed: 3,
                ..Default::default()
            },
        );
        assert!(sigma.satisfies_primary_key_restriction());
    }

    #[test]
    fn reference_chain_is_consistent_shape() {
        let dtd = catalogue_dtd(4);
        let sigma = reference_chain(&dtd, 4);
        assert_eq!(sigma.len(), 8);
        assert!(sigma.validate(&dtd).is_ok());
    }

    #[test]
    fn deterministic_per_seed() {
        let dtd = catalogue_dtd(4);
        let a = random_unary_constraints(&dtd, &ConstraintGenConfig::default());
        let b = random_unary_constraints(&dtd, &ConstraintGenConfig::default());
        assert_eq!(a.render(&dtd), b.render(&dtd));
    }
}
