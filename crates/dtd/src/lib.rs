//! # xic-dtd — DTDs, content models and their structural analyses
//!
//! This crate implements Definition 2.1 of Fan & Libkin: a DTD
//! `D = (E, A, P, R, r)` with regular-expression content models, together
//! with everything the rest of the reproduction needs from DTDs:
//!
//! * [`content::ContentModel`] — the regular expressions `α ::= S | τ | ε |
//!   α|α | α,α | α*` (plus the `+`/`?` sugar of real DTDs);
//! * [`dtd::Dtd`] / [`dtd::DtdBuilder`] — the formalism itself, with the
//!   paper's running examples [`dtd::example_d1`], [`dtd::example_d2`] and
//!   [`dtd::example_d3`] as ready-made fixtures;
//! * [`glushkov::Glushkov`] and [`deriv::DerivativeMatcher`] — two
//!   independent membership tests for content-model languages (used by
//!   document validation and cross-checked against each other);
//! * [`simplify::SimpleDtd`] — the Section 4.1 rewriting into simple DTDs on
//!   which the cardinality encoding Ψ_D is defined;
//! * [`analysis`] — the linear-time analyses of Theorem 3.5(1) and Lemma 3.6
//!   (DTD satisfiability, "can τ occur", "can τ occur twice");
//! * [`parser::parse_dtd`] — a parser for `<!ELEMENT …>` / `<!ATTLIST …>`
//!   syntax.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod content;
pub mod deriv;
pub mod dtd;
pub mod error;
pub mod glushkov;
pub mod parser;
pub mod simplify;

pub use analysis::{analyze, dtd_satisfiable, DtdAnalysis};
pub use content::{ChildSymbol, ContentModel};
pub use deriv::DerivativeMatcher;
pub use dtd::{example_d1, example_d2, example_d3, AttrId, Dtd, DtdBuilder, ElemId};
pub use error::DtdError;
pub use glushkov::Glushkov;
pub use parser::parse_dtd;
pub use simplify::{SimpleDtd, SimpleId, SimpleRule};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy producing arbitrary content models over a small alphabet.
    fn arb_model(depth: u32) -> impl Strategy<Value = ContentModel> {
        let leaf = prop_oneof![
            Just(ContentModel::Epsilon),
            Just(ContentModel::Text),
            (0u32..4).prop_map(|i| ContentModel::Element(ElemId(i))),
        ];
        leaf.prop_recursive(depth, 64, 4, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| ContentModel::seq(a, b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| ContentModel::alt(a, b)),
                inner.clone().prop_map(ContentModel::star),
                inner.clone().prop_map(ContentModel::plus),
                inner.prop_map(ContentModel::opt),
            ]
        })
    }

    fn arb_word() -> impl Strategy<Value = Vec<ChildSymbol>> {
        proptest::collection::vec(
            prop_oneof![
                (0u32..4).prop_map(|i| ChildSymbol::Element(ElemId(i))),
                Just(ChildSymbol::Text),
            ],
            0..6,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The Glushkov automaton and the Brzozowski-derivative matcher are
        /// independent implementations of the same language membership test;
        /// they must always agree.
        #[test]
        fn glushkov_agrees_with_derivatives(model in arb_model(3), word in arb_word()) {
            let g = Glushkov::new(&model);
            let d = DerivativeMatcher::new(&model);
            prop_assert_eq!(g.matches(&word), d.matches(&word));
        }

        /// Nullability reported by the content model matches acceptance of
        /// the empty word by both matchers.
        #[test]
        fn nullable_matches_empty_word(model in arb_model(3)) {
            let g = Glushkov::new(&model);
            let d = DerivativeMatcher::new(&model);
            let desugared = model.desugar();
            prop_assert_eq!(g.accepts_empty(), desugared.nullable());
            prop_assert_eq!(d.accepts_empty(), desugared.nullable());
        }

        /// A word sampled from the Glushkov automaton is always accepted.
        #[test]
        fn sampled_words_are_members(model in arb_model(3)) {
            let g = Glushkov::new(&model);
            if let Some(w) = g.sample_word(16) {
                prop_assert!(g.matches(&w));
                prop_assert!(DerivativeMatcher::new(&model).matches(&w));
            }
        }

        /// Desugaring preserves the language (checked against sampled words).
        #[test]
        fn desugaring_preserves_membership(model in arb_model(3), word in arb_word()) {
            let original = Glushkov::new(&model);
            let desugared = Glushkov::new(&model.desugar());
            prop_assert_eq!(original.matches(&word), desugared.matches(&word));
        }
    }
}
