//! Error types for DTD construction and parsing.

use std::fmt;

/// Errors raised while building or parsing a DTD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtdError {
    /// An element type name was referenced but never declared.
    UnknownType(String),
    /// An attribute name was referenced but never declared.
    UnknownAttr(String),
    /// A syntax error in the textual DTD representation.
    Syntax {
        /// Byte offset of the error in the input.
        offset: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// The textual DTD used a feature outside the paper's model
    /// (e.g. `ANY` content, entities, notations).
    Unsupported(String),
}

impl fmt::Display for DtdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DtdError::UnknownType(name) => write!(f, "unknown element type `{name}`"),
            DtdError::UnknownAttr(name) => write!(f, "unknown attribute `{name}`"),
            DtdError::Syntax { offset, message } => {
                write!(f, "DTD syntax error at byte {offset}: {message}")
            }
            DtdError::Unsupported(what) => write!(f, "unsupported DTD feature: {what}"),
        }
    }
}

impl std::error::Error for DtdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DtdError::UnknownType("x".into()).to_string().contains('x'));
        assert!(DtdError::Syntax {
            offset: 3,
            message: "oops".into()
        }
        .to_string()
        .contains("byte 3"));
        assert!(DtdError::Unsupported("ANY".into())
            .to_string()
            .contains("ANY"));
    }
}
