//! Regular-expression content models.
//!
//! Definition 2.1 of the paper gives element type definitions as regular
//! expressions `α ::= S | τ' | ε | α|α | α,α | α*` over element types and the
//! string type `S`.  [`ContentModel`] is that grammar, extended with the two
//! standard DTD abbreviations `α?` and `α+` which normalise into the core.

use std::fmt;

use crate::dtd::ElemId;

/// A content-model regular expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ContentModel {
    /// The empty word ε (an element with this model has no subelements).
    Epsilon,
    /// The string type `S` (`#PCDATA` in DTD syntax): a single text node.
    Text,
    /// A single subelement of the given element type.
    Element(ElemId),
    /// Concatenation `α, β`.
    Seq(Box<ContentModel>, Box<ContentModel>),
    /// Union `α | β`.
    Alt(Box<ContentModel>, Box<ContentModel>),
    /// Kleene closure `α*`.
    Star(Box<ContentModel>),
    /// One-or-more `α+` (sugar for `α, α*`).
    Plus(Box<ContentModel>),
    /// Optional `α?` (sugar for `α | ε`).
    Opt(Box<ContentModel>),
}

impl ContentModel {
    /// Concatenation of two models.
    pub fn seq(a: ContentModel, b: ContentModel) -> ContentModel {
        ContentModel::Seq(Box::new(a), Box::new(b))
    }

    /// Union of two models.
    pub fn alt(a: ContentModel, b: ContentModel) -> ContentModel {
        ContentModel::Alt(Box::new(a), Box::new(b))
    }

    /// Kleene star.
    pub fn star(a: ContentModel) -> ContentModel {
        ContentModel::Star(Box::new(a))
    }

    /// One or more repetitions.
    pub fn plus(a: ContentModel) -> ContentModel {
        ContentModel::Plus(Box::new(a))
    }

    /// Zero or one occurrence.
    pub fn opt(a: ContentModel) -> ContentModel {
        ContentModel::Opt(Box::new(a))
    }

    /// Concatenation of an arbitrary number of models (ε for the empty list).
    pub fn seq_all<I: IntoIterator<Item = ContentModel>>(items: I) -> ContentModel {
        let mut iter = items.into_iter();
        match iter.next() {
            None => ContentModel::Epsilon,
            Some(first) => iter.fold(first, ContentModel::seq),
        }
    }

    /// Union of an arbitrary number of models (ε for the empty list).
    pub fn alt_all<I: IntoIterator<Item = ContentModel>>(items: I) -> ContentModel {
        let mut iter = items.into_iter();
        match iter.next() {
            None => ContentModel::Epsilon,
            Some(first) => iter.fold(first, ContentModel::alt),
        }
    }

    /// Rewrites the model into the paper's core grammar: `+` becomes `α, α*`
    /// and `?` becomes `α | ε`.
    pub fn desugar(&self) -> ContentModel {
        match self {
            ContentModel::Epsilon => ContentModel::Epsilon,
            ContentModel::Text => ContentModel::Text,
            ContentModel::Element(e) => ContentModel::Element(*e),
            ContentModel::Seq(a, b) => ContentModel::seq(a.desugar(), b.desugar()),
            ContentModel::Alt(a, b) => ContentModel::alt(a.desugar(), b.desugar()),
            ContentModel::Star(a) => ContentModel::star(a.desugar()),
            ContentModel::Plus(a) => {
                let inner = a.desugar();
                ContentModel::seq(inner.clone(), ContentModel::star(inner))
            }
            ContentModel::Opt(a) => ContentModel::alt(a.desugar(), ContentModel::Epsilon),
        }
    }

    /// Returns `true` iff the empty word is in the language of the model.
    pub fn nullable(&self) -> bool {
        match self {
            ContentModel::Epsilon | ContentModel::Star(_) | ContentModel::Opt(_) => true,
            ContentModel::Text | ContentModel::Element(_) => false,
            ContentModel::Seq(a, b) => a.nullable() && b.nullable(),
            ContentModel::Alt(a, b) => a.nullable() || b.nullable(),
            ContentModel::Plus(a) => a.nullable(),
        }
    }

    /// Collects every element type mentioned in the model into `out`.
    pub fn collect_element_types(&self, out: &mut Vec<ElemId>) {
        match self {
            ContentModel::Epsilon | ContentModel::Text => {}
            ContentModel::Element(e) => out.push(*e),
            ContentModel::Seq(a, b) | ContentModel::Alt(a, b) => {
                a.collect_element_types(out);
                b.collect_element_types(out);
            }
            ContentModel::Star(a) | ContentModel::Plus(a) | ContentModel::Opt(a) => {
                a.collect_element_types(out)
            }
        }
    }

    /// Returns `true` iff the model mentions the string type `S`.
    pub fn mentions_text(&self) -> bool {
        match self {
            ContentModel::Text => true,
            ContentModel::Epsilon | ContentModel::Element(_) => false,
            ContentModel::Seq(a, b) | ContentModel::Alt(a, b) => {
                a.mentions_text() || b.mentions_text()
            }
            ContentModel::Star(a) | ContentModel::Plus(a) | ContentModel::Opt(a) => {
                a.mentions_text()
            }
        }
    }

    /// Number of AST nodes (used for size accounting in benches).
    pub fn size(&self) -> usize {
        match self {
            ContentModel::Epsilon | ContentModel::Text | ContentModel::Element(_) => 1,
            ContentModel::Seq(a, b) | ContentModel::Alt(a, b) => 1 + a.size() + b.size(),
            ContentModel::Star(a) | ContentModel::Plus(a) | ContentModel::Opt(a) => 1 + a.size(),
        }
    }

    /// Renders the model with names supplied by `name_of` (DTD-ish syntax).
    pub fn render(&self, name_of: &dyn Fn(ElemId) -> String) -> String {
        fn go(cm: &ContentModel, name_of: &dyn Fn(ElemId) -> String, out: &mut String) {
            match cm {
                ContentModel::Epsilon => out.push_str("EMPTY"),
                ContentModel::Text => out.push_str("#PCDATA"),
                ContentModel::Element(e) => out.push_str(&name_of(*e)),
                ContentModel::Seq(a, b) => {
                    out.push('(');
                    go(a, name_of, out);
                    out.push_str(", ");
                    go(b, name_of, out);
                    out.push(')');
                }
                ContentModel::Alt(a, b) => {
                    out.push('(');
                    go(a, name_of, out);
                    out.push_str(" | ");
                    go(b, name_of, out);
                    out.push(')');
                }
                ContentModel::Star(a) => {
                    go(a, name_of, out);
                    out.push('*');
                }
                ContentModel::Plus(a) => {
                    go(a, name_of, out);
                    out.push('+');
                }
                ContentModel::Opt(a) => {
                    go(a, name_of, out);
                    out.push('?');
                }
            }
        }
        let mut s = String::new();
        go(self, name_of, &mut s);
        s
    }
}

impl fmt::Display for ContentModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(&|e: ElemId| format!("e{}", e.0)))
    }
}

/// A symbol of the "child alphabet": either an element type or a text node.
/// Words over this alphabet are what content models match (the label
/// sequences `lab(v1) … lab(vn)` of Definition 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChildSymbol {
    /// A subelement of the given type.
    Element(ElemId),
    /// A text node (label `S`).
    Text,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> ContentModel {
        ContentModel::Element(ElemId(i))
    }

    #[test]
    fn nullable_cases() {
        assert!(ContentModel::Epsilon.nullable());
        assert!(!ContentModel::Text.nullable());
        assert!(!e(0).nullable());
        assert!(ContentModel::star(e(0)).nullable());
        assert!(ContentModel::opt(e(0)).nullable());
        assert!(!ContentModel::plus(e(0)).nullable());
        assert!(ContentModel::seq(ContentModel::Epsilon, ContentModel::star(e(1))).nullable());
        assert!(!ContentModel::seq(e(0), ContentModel::star(e(1))).nullable());
        assert!(ContentModel::alt(e(0), ContentModel::Epsilon).nullable());
    }

    #[test]
    fn desugar_plus_and_opt() {
        let d = ContentModel::plus(e(0)).desugar();
        assert_eq!(d, ContentModel::seq(e(0), ContentModel::star(e(0))));
        let d = ContentModel::opt(e(1)).desugar();
        assert_eq!(d, ContentModel::alt(e(1), ContentModel::Epsilon));
        // Desugaring is recursive.
        let d = ContentModel::seq(ContentModel::plus(e(0)), ContentModel::opt(e(1))).desugar();
        assert!(matches!(d, ContentModel::Seq(_, _)));
        assert!(!format!("{d:?}").contains("Plus"));
        assert!(!format!("{d:?}").contains("Opt"));
    }

    #[test]
    fn collects_element_types() {
        let cm = ContentModel::seq(e(0), ContentModel::alt(e(1), ContentModel::star(e(0))));
        let mut out = Vec::new();
        cm.collect_element_types(&mut out);
        assert_eq!(out, vec![ElemId(0), ElemId(1), ElemId(0)]);
        assert!(!cm.mentions_text());
        assert!(ContentModel::seq(e(0), ContentModel::Text).mentions_text());
    }

    #[test]
    fn seq_all_and_alt_all() {
        assert_eq!(ContentModel::seq_all([]), ContentModel::Epsilon);
        assert_eq!(ContentModel::seq_all([e(0)]), e(0));
        let three = ContentModel::seq_all([e(0), e(1), e(2)]);
        assert_eq!(three.size(), 5);
        let alts = ContentModel::alt_all([e(0), e(1)]);
        assert_eq!(alts, ContentModel::alt(e(0), e(1)));
    }

    #[test]
    fn render_is_readable() {
        let cm = ContentModel::seq(e(0), ContentModel::star(e(1)));
        let s = cm.render(&|id| ["teach", "research"][id.0 as usize].to_string());
        assert_eq!(s, "(teach, research*)");
    }
}
