//! Glushkov position automaton for content models.
//!
//! Validation of an XML tree against a DTD (Definition 2.2) requires testing
//! whether the label sequence of an element's children belongs to the regular
//! language of its content model.  The Glushkov construction yields an
//! ε-free NFA whose states are the occurrences of symbols in the expression;
//! matching a word of length `k` over an expression with `p` positions takes
//! `O(k · p²)` time, which is ample for the document sizes handled here.

use crate::content::{ChildSymbol, ContentModel};
use crate::dtd::ElemId;

/// A compiled Glushkov automaton for a single content model.
#[derive(Debug, Clone)]
pub struct Glushkov {
    /// Symbol carried by each position.
    positions: Vec<ChildSymbol>,
    /// Positions reachable as the first symbol of a word.
    first: Vec<usize>,
    /// Positions that can end a word.
    last: Vec<bool>,
    /// `follow[p]` = positions that may immediately follow position `p`.
    follow: Vec<Vec<usize>>,
    /// Whether the empty word is accepted.
    nullable: bool,
}

struct BuildState {
    positions: Vec<ChildSymbol>,
    follow: Vec<Vec<usize>>,
}

/// Local result of the recursive construction.
struct Piece {
    nullable: bool,
    first: Vec<usize>,
    last: Vec<usize>,
}

impl Glushkov {
    /// Compiles a content model into its position automaton.
    pub fn new(model: &ContentModel) -> Glushkov {
        let desugared = model.desugar();
        let mut st = BuildState {
            positions: Vec::new(),
            follow: Vec::new(),
        };
        let piece = build(&desugared, &mut st);
        let mut last = vec![false; st.positions.len()];
        for &p in &piece.last {
            last[p] = true;
        }
        Glushkov {
            positions: st.positions,
            first: piece.first,
            last,
            follow: st.follow,
            nullable: piece.nullable,
        }
    }

    /// Number of positions (size of the automaton).
    pub fn num_positions(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` iff the automaton accepts the empty word.
    pub fn accepts_empty(&self) -> bool {
        self.nullable
    }

    /// Tests whether a word over the child alphabet is in the language.
    pub fn matches(&self, word: &[ChildSymbol]) -> bool {
        if word.is_empty() {
            return self.nullable;
        }
        let n = self.positions.len();
        let mut current = vec![false; n];
        let mut any = false;
        for &p in &self.first {
            if self.positions[p] == word[0] {
                current[p] = true;
                any = true;
            }
        }
        if !any {
            return false;
        }
        for symbol in &word[1..] {
            let mut next = vec![false; n];
            let mut reached = false;
            for (p, active) in current.iter().enumerate() {
                if !active {
                    continue;
                }
                for &q in &self.follow[p] {
                    if self.positions[q] == *symbol {
                        next[q] = true;
                        reached = true;
                    }
                }
            }
            if !reached {
                return false;
            }
            current = next;
        }
        current
            .iter()
            .enumerate()
            .any(|(p, active)| *active && self.last[p])
    }

    /// Convenience wrapper: matches a sequence of element-type children with
    /// no text nodes.
    pub fn matches_elements(&self, children: &[ElemId]) -> bool {
        let word: Vec<ChildSymbol> = children.iter().map(|&e| ChildSymbol::Element(e)).collect();
        self.matches(&word)
    }

    /// Produces *some* accepted word, if the language is non-empty, choosing
    /// the shortest-first expansion.  Used by the random document generator
    /// as a fallback and in tests.
    pub fn sample_word(&self, max_len: usize) -> Option<Vec<ChildSymbol>> {
        if self.nullable {
            return Some(Vec::new());
        }
        // Breadth-first search over (position) states tracking one path.
        use std::collections::VecDeque;
        let mut queue: VecDeque<(usize, Vec<ChildSymbol>)> = VecDeque::new();
        let mut seen = vec![false; self.positions.len()];
        for &p in &self.first {
            if !seen[p] {
                seen[p] = true;
                queue.push_back((p, vec![self.positions[p]]));
            }
        }
        while let Some((p, word)) = queue.pop_front() {
            if self.last[p] {
                return Some(word);
            }
            if word.len() >= max_len {
                continue;
            }
            for &q in &self.follow[p] {
                if !seen[q] {
                    seen[q] = true;
                    let mut next = word.clone();
                    next.push(self.positions[q]);
                    queue.push_back((q, next));
                }
            }
        }
        None
    }
}

fn build(model: &ContentModel, st: &mut BuildState) -> Piece {
    match model {
        ContentModel::Epsilon => Piece {
            nullable: true,
            first: vec![],
            last: vec![],
        },
        ContentModel::Text => leaf(ChildSymbol::Text, st),
        ContentModel::Element(e) => leaf(ChildSymbol::Element(*e), st),
        ContentModel::Seq(a, b) => {
            let pa = build(a, st);
            let pb = build(b, st);
            for &p in &pa.last {
                st.follow[p].extend_from_slice(&pb.first);
            }
            let mut first = pa.first.clone();
            if pa.nullable {
                first.extend_from_slice(&pb.first);
            }
            let mut last = pb.last.clone();
            if pb.nullable {
                last.extend_from_slice(&pa.last);
            }
            Piece {
                nullable: pa.nullable && pb.nullable,
                first,
                last,
            }
        }
        ContentModel::Alt(a, b) => {
            let pa = build(a, st);
            let pb = build(b, st);
            let mut first = pa.first;
            first.extend(pb.first);
            let mut last = pa.last;
            last.extend(pb.last);
            Piece {
                nullable: pa.nullable || pb.nullable,
                first,
                last,
            }
        }
        ContentModel::Star(a) => {
            let pa = build(a, st);
            for &p in &pa.last {
                let firsts = pa.first.clone();
                st.follow[p].extend(firsts);
            }
            Piece {
                nullable: true,
                first: pa.first,
                last: pa.last,
            }
        }
        // `desugar` removes these before compilation, but handle them anyway
        // so `Glushkov::new(model)` is total.
        ContentModel::Plus(a) => {
            let pa = build(a, st);
            for &p in &pa.last {
                let firsts = pa.first.clone();
                st.follow[p].extend(firsts);
            }
            Piece {
                nullable: pa.nullable,
                first: pa.first,
                last: pa.last,
            }
        }
        ContentModel::Opt(a) => {
            let pa = build(a, st);
            Piece {
                nullable: true,
                first: pa.first,
                last: pa.last,
            }
        }
    }
}

fn leaf(symbol: ChildSymbol, st: &mut BuildState) -> Piece {
    let p = st.positions.len();
    st.positions.push(symbol);
    st.follow.push(Vec::new());
    Piece {
        nullable: false,
        first: vec![p],
        last: vec![p],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> ContentModel {
        ContentModel::Element(ElemId(i))
    }

    fn ce(i: u32) -> ChildSymbol {
        ChildSymbol::Element(ElemId(i))
    }

    #[test]
    fn single_element() {
        let g = Glushkov::new(&e(0));
        assert!(g.matches(&[ce(0)]));
        assert!(!g.matches(&[]));
        assert!(!g.matches(&[ce(1)]));
        assert!(!g.matches(&[ce(0), ce(0)]));
    }

    #[test]
    fn sequence_and_union() {
        // (a, b) | c
        let g = Glushkov::new(&ContentModel::alt(ContentModel::seq(e(0), e(1)), e(2)));
        assert!(g.matches(&[ce(0), ce(1)]));
        assert!(g.matches(&[ce(2)]));
        assert!(!g.matches(&[ce(0)]));
        assert!(!g.matches(&[ce(0), ce(2)]));
        assert!(!g.matches(&[]));
    }

    #[test]
    fn star_and_plus() {
        let star = Glushkov::new(&ContentModel::star(e(0)));
        assert!(star.matches(&[]));
        assert!(star.matches(&[ce(0)]));
        assert!(star.matches(&[ce(0), ce(0), ce(0)]));
        assert!(!star.matches(&[ce(1)]));

        let plus = Glushkov::new(&ContentModel::plus(e(0)));
        assert!(!plus.matches(&[]));
        assert!(plus.matches(&[ce(0)]));
        assert!(plus.matches(&[ce(0), ce(0)]));
    }

    #[test]
    fn optional_and_text() {
        // (a?, S)
        let g = Glushkov::new(&ContentModel::seq(
            ContentModel::opt(e(0)),
            ContentModel::Text,
        ));
        assert!(g.matches(&[ChildSymbol::Text]));
        assert!(g.matches(&[ce(0), ChildSymbol::Text]));
        assert!(!g.matches(&[ce(0)]));
    }

    #[test]
    fn teachers_content() {
        // teacher+ from D1.
        let g = Glushkov::new(&ContentModel::plus(e(1)));
        assert!(!g.matches(&[]));
        assert!(g.matches(&[ce(1), ce(1)]));
        // (subject, subject) from D1.
        let teach = Glushkov::new(&ContentModel::seq(e(4), e(4)));
        assert!(teach.matches(&[ce(4), ce(4)]));
        assert!(!teach.matches(&[ce(4)]));
        assert!(!teach.matches(&[ce(4), ce(4), ce(4)]));
    }

    #[test]
    fn nested_star_of_union() {
        // (a | b)* accepts any interleaving.
        let g = Glushkov::new(&ContentModel::star(ContentModel::alt(e(0), e(1))));
        assert!(g.matches(&[]));
        assert!(g.matches(&[ce(0), ce(1), ce(1), ce(0)]));
        assert!(!g.matches(&[ce(0), ce(2)]));
    }

    #[test]
    fn sample_word_is_accepted() {
        let cm = ContentModel::seq(
            ContentModel::star(e(0)),
            ContentModel::seq(e(1), ContentModel::opt(e(2))),
        );
        let g = Glushkov::new(&cm);
        let w = g.sample_word(8).expect("language nonempty");
        assert!(g.matches(&w));
    }

    #[test]
    fn matches_elements_helper() {
        let g = Glushkov::new(&ContentModel::seq(e(0), e(1)));
        assert!(g.matches_elements(&[ElemId(0), ElemId(1)]));
        assert!(!g.matches_elements(&[ElemId(1), ElemId(0)]));
    }
}
