//! The DTD formalism of Definition 2.1: `D = (E, A, P, R, r)`.

use std::collections::HashMap;
use std::fmt;

use crate::content::ContentModel;
use crate::error::DtdError;

/// Identifier of an element type within a [`Dtd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElemId(pub u32);

impl ElemId {
    /// Index into the DTD's element-type table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an attribute within a [`Dtd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u32);

impl AttrId {
    /// Index into the DTD's attribute table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A DTD `D = (E, A, P, R, r)`:
///
/// * `E` — the element types (interned, addressed by [`ElemId`]);
/// * `A` — the attributes (interned, addressed by [`AttrId`]);
/// * `P` — a content model per element type;
/// * `R` — the set of attributes defined for each element type;
/// * `r` — the root element type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dtd {
    type_names: Vec<String>,
    attr_names: Vec<String>,
    content: Vec<ContentModel>,
    attrs_of: Vec<Vec<AttrId>>,
    root: ElemId,
    type_index: HashMap<String, ElemId>,
    attr_index: HashMap<String, AttrId>,
}

impl Dtd {
    /// Starts building a DTD.
    pub fn builder() -> DtdBuilder {
        DtdBuilder::new()
    }

    /// The root element type.
    pub fn root(&self) -> ElemId {
        self.root
    }

    /// Number of element types.
    pub fn num_types(&self) -> usize {
        self.type_names.len()
    }

    /// Number of attributes.
    pub fn num_attrs(&self) -> usize {
        self.attr_names.len()
    }

    /// Iterates over all element type ids.
    pub fn types(&self) -> impl Iterator<Item = ElemId> {
        (0..self.type_names.len() as u32).map(ElemId)
    }

    /// Iterates over all attribute ids.
    pub fn attrs(&self) -> impl Iterator<Item = AttrId> {
        (0..self.attr_names.len() as u32).map(AttrId)
    }

    /// Name of an element type.
    pub fn type_name(&self, id: ElemId) -> &str {
        &self.type_names[id.index()]
    }

    /// Name of an attribute.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attr_names[id.index()]
    }

    /// Looks up an element type by name.
    pub fn type_by_name(&self, name: &str) -> Option<ElemId> {
        self.type_index.get(name).copied()
    }

    /// Looks up an attribute by name.
    pub fn attr_by_name(&self, name: &str) -> Option<AttrId> {
        self.attr_index.get(name).copied()
    }

    /// Content model `P(τ)` of an element type.
    pub fn content(&self, id: ElemId) -> &ContentModel {
        &self.content[id.index()]
    }

    /// Attributes `R(τ)` defined for an element type.
    pub fn attrs_of(&self, id: ElemId) -> &[AttrId] {
        &self.attrs_of[id.index()]
    }

    /// Returns `true` iff attribute `attr` is defined for element type `ty`.
    pub fn has_attr(&self, ty: ElemId, attr: AttrId) -> bool {
        self.attrs_of[ty.index()].contains(&attr)
    }

    /// Total size of the DTD (element types + attribute occurrences + content
    /// model nodes); the `|D|` used in the paper's complexity statements.
    pub fn size(&self) -> usize {
        self.type_names.len()
            + self.attrs_of.iter().map(Vec::len).sum::<usize>()
            + self.content.iter().map(ContentModel::size).sum::<usize>()
    }

    /// Renders the DTD in `<!ELEMENT …>` / `<!ATTLIST …>` syntax.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for ty in self.types() {
            let body = match self.content(ty) {
                ContentModel::Epsilon => "EMPTY".to_string(),
                ContentModel::Text => "(#PCDATA)".to_string(),
                cm => {
                    let rendered = cm.render(&|e| self.type_name(e).to_string());
                    if rendered.starts_with('(') {
                        rendered
                    } else {
                        format!("({rendered})")
                    }
                }
            };
            let _ = writeln!(out, "<!ELEMENT {} {}>", self.type_name(ty), body);
            if !self.attrs_of(ty).is_empty() {
                let _ = write!(out, "<!ATTLIST {}", self.type_name(ty));
                for &a in self.attrs_of(ty) {
                    let _ = write!(out, " {} CDATA #REQUIRED", self.attr_name(a));
                }
                let _ = writeln!(out, ">");
            }
        }
        out
    }
}

impl fmt::Display for Dtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Incremental builder for [`Dtd`] values.
///
/// ```
/// use xic_dtd::{Dtd, ContentModel};
///
/// let mut b = Dtd::builder();
/// let teachers = b.elem("teachers");
/// let teacher = b.elem("teacher");
/// b.content(teachers, ContentModel::plus(ContentModel::Element(teacher)));
/// b.content(teacher, ContentModel::Text);
/// b.attr(teacher, "name");
/// let dtd = b.build("teachers").unwrap();
/// assert_eq!(dtd.num_types(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct DtdBuilder {
    type_names: Vec<String>,
    attr_names: Vec<String>,
    content: Vec<Option<ContentModel>>,
    attrs_of: Vec<Vec<AttrId>>,
    type_index: HashMap<String, ElemId>,
    attr_index: HashMap<String, AttrId>,
}

impl DtdBuilder {
    /// Creates an empty builder.
    pub fn new() -> DtdBuilder {
        DtdBuilder::default()
    }

    /// Declares (or returns the existing) element type with the given name.
    pub fn elem(&mut self, name: &str) -> ElemId {
        if let Some(&id) = self.type_index.get(name) {
            return id;
        }
        let id = ElemId(self.type_names.len() as u32);
        self.type_names.push(name.to_string());
        self.content.push(None);
        self.attrs_of.push(Vec::new());
        self.type_index.insert(name.to_string(), id);
        id
    }

    /// Sets the content model of an element type (defaults to `EMPTY`).
    pub fn content(&mut self, ty: ElemId, model: ContentModel) -> &mut Self {
        self.content[ty.index()] = Some(model);
        self
    }

    /// Declares an attribute `name` for element type `ty`, returning its id.
    /// The same attribute name used on different element types shares one
    /// [`AttrId`], matching the paper where `A` is a single set of attributes.
    pub fn attr(&mut self, ty: ElemId, name: &str) -> AttrId {
        let id = match self.attr_index.get(name) {
            Some(&id) => id,
            None => {
                let id = AttrId(self.attr_names.len() as u32);
                self.attr_names.push(name.to_string());
                self.attr_index.insert(name.to_string(), id);
                id
            }
        };
        if !self.attrs_of[ty.index()].contains(&id) {
            self.attrs_of[ty.index()].push(id);
        }
        id
    }

    /// Finalises the DTD with the given root element type name.
    pub fn build(self, root: &str) -> Result<Dtd, DtdError> {
        let root_id = *self
            .type_index
            .get(root)
            .ok_or_else(|| DtdError::UnknownType(root.to_string()))?;
        // Every element type referenced in a content model must be declared
        // (the builder API guarantees this by construction since ElemIds can
        // only come from `elem`), and every content model must be present.
        let mut content = Vec::with_capacity(self.content.len());
        for (i, cm) in self.content.into_iter().enumerate() {
            match cm {
                Some(cm) => {
                    let mut used = Vec::new();
                    cm.collect_element_types(&mut used);
                    for e in used {
                        if e.index() >= self.type_names.len() {
                            return Err(DtdError::UnknownType(format!("#{}", e.0)));
                        }
                    }
                    content.push(cm);
                }
                None => {
                    // Undeclared content defaults to EMPTY, mirroring the
                    // paper's convention of omitting string-typed elements.
                    let _ = i;
                    content.push(ContentModel::Epsilon);
                }
            }
        }
        Ok(Dtd {
            type_names: self.type_names,
            attr_names: self.attr_names,
            content,
            attrs_of: self.attrs_of,
            root: root_id,
            type_index: self.type_index,
            attr_index: self.attr_index,
        })
    }
}

/// Builds the teachers DTD `D1` from Section 1 of the paper.
///
/// ```text
/// <!ELEMENT teachers (teacher+)>
/// <!ELEMENT teacher (teach, research)>
/// <!ELEMENT teach (subject, subject)>
/// teacher has attribute name; subject has attribute taught_by.
/// ```
pub fn example_d1() -> Dtd {
    let mut b = Dtd::builder();
    let teachers = b.elem("teachers");
    let teacher = b.elem("teacher");
    let teach = b.elem("teach");
    let research = b.elem("research");
    let subject = b.elem("subject");
    b.content(teachers, ContentModel::plus(ContentModel::Element(teacher)));
    b.content(
        teacher,
        ContentModel::seq(
            ContentModel::Element(teach),
            ContentModel::Element(research),
        ),
    );
    b.content(
        teach,
        ContentModel::seq(
            ContentModel::Element(subject),
            ContentModel::Element(subject),
        ),
    );
    b.content(research, ContentModel::Text);
    b.content(subject, ContentModel::Text);
    b.attr(teacher, "name");
    b.attr(subject, "taught_by");
    b.build("teachers").expect("D1 is well-formed")
}

/// Builds the non-satisfiable DTD `D2` from Section 1 of the paper:
/// `<!ELEMENT db (foo)> <!ELEMENT foo (foo)>` has no finite valid tree.
#[allow(clippy::disallowed_names)] // `foo` is the paper's own element name
pub fn example_d2() -> Dtd {
    let mut b = Dtd::builder();
    let db = b.elem("db");
    let foo = b.elem("foo");
    b.content(db, ContentModel::Element(foo));
    b.content(foo, ContentModel::Element(foo));
    b.build("db").expect("D2 is well-formed")
}

/// Builds the school DTD `D3` from Section 2.2 of the paper.
pub fn example_d3() -> Dtd {
    let mut b = Dtd::builder();
    let school = b.elem("school");
    let course = b.elem("course");
    let student = b.elem("student");
    let enroll = b.elem("enroll");
    let name = b.elem("name");
    let subject = b.elem("subject");
    b.content(
        school,
        ContentModel::seq_all([
            ContentModel::star(ContentModel::Element(course)),
            ContentModel::star(ContentModel::Element(student)),
            ContentModel::star(ContentModel::Element(enroll)),
        ]),
    );
    b.content(course, ContentModel::Element(subject));
    b.content(student, ContentModel::Element(name));
    b.content(enroll, ContentModel::Text);
    b.content(name, ContentModel::Text);
    b.content(subject, ContentModel::Text);
    b.attr(course, "dept");
    b.attr(course, "course_no");
    b.attr(student, "student_id");
    b.attr(enroll, "student_id");
    b.attr(enroll, "dept");
    b.attr(enroll, "course_no");
    b.build("school").expect("D3 is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_interns_names() {
        let mut b = Dtd::builder();
        let a = b.elem("a");
        let a2 = b.elem("a");
        assert_eq!(a, a2);
        let x = b.attr(a, "x");
        let x2 = b.attr(a, "x");
        assert_eq!(x, x2);
        let dtd = b.build("a").unwrap();
        assert_eq!(dtd.num_types(), 1);
        assert_eq!(dtd.num_attrs(), 1);
        assert_eq!(dtd.attrs_of(a), &[x]);
        assert!(dtd.has_attr(a, x));
    }

    #[test]
    fn build_rejects_unknown_root() {
        let mut b = Dtd::builder();
        b.elem("a");
        assert!(matches!(b.build("nope"), Err(DtdError::UnknownType(_))));
    }

    #[test]
    fn missing_content_defaults_to_empty() {
        let mut b = Dtd::builder();
        let a = b.elem("a");
        let dtd = b.build("a").unwrap();
        assert_eq!(dtd.content(a), &ContentModel::Epsilon);
    }

    #[test]
    fn d1_shape() {
        let d1 = example_d1();
        assert_eq!(d1.num_types(), 5);
        assert_eq!(d1.num_attrs(), 2);
        let teacher = d1.type_by_name("teacher").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        assert!(d1.has_attr(teacher, name));
        assert_eq!(d1.type_name(d1.root()), "teachers");
        let rendered = d1.render();
        assert!(rendered.contains("<!ELEMENT teachers"));
        assert!(rendered.contains("<!ATTLIST teacher name CDATA #REQUIRED>"));
    }

    #[test]
    fn d3_attribute_sharing() {
        let d3 = example_d3();
        // student_id is shared between student and enroll.
        let student = d3.type_by_name("student").unwrap();
        let enroll = d3.type_by_name("enroll").unwrap();
        let sid = d3.attr_by_name("student_id").unwrap();
        assert!(d3.has_attr(student, sid));
        assert!(d3.has_attr(enroll, sid));
        // A3 = {student_id, course_no, dept} in the paper.
        assert_eq!(d3.num_attrs(), 3);
    }

    #[test]
    fn size_accounts_for_content() {
        let d2 = example_d2();
        assert!(d2.size() >= 4);
    }
}
