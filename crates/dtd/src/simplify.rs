//! Simplification of DTDs (Section 4.1 of the paper).
//!
//! The encoding of DTDs by cardinality constraints is defined over *simple*
//! DTDs, whose production rules have one of five shapes:
//!
//! ```text
//! τ → τ1, τ2    τ → τ1 | τ2    τ → τ1    τ → S    τ → ε
//! ```
//!
//! [`SimpleDtd::from_dtd`] performs the paper's rewriting: composite regular
//! expressions are split by introducing fresh element types, and Kleene stars
//! `α*` become a fresh type `t` with `t → ε | (α, t)`.  Lemma 4.3 guarantees
//! that the rewriting preserves, for every *original* element type τ and
//! attribute l, both `|ext(τ)|` and `ext(τ.l)` across valid trees — the
//! integration tests exercise exactly that property.

use crate::content::ContentModel;
use crate::dtd::{AttrId, Dtd, ElemId};

/// Identifier of an element type in a [`SimpleDtd`] (original types keep
/// their [`ElemId`] index; synthetic types are appended after them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimpleId(pub u32);

impl SimpleId {
    /// Index into the simple DTD's tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A production rule of a simple DTD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimpleRule {
    /// `τ → ε`
    Epsilon,
    /// `τ → S`
    Text,
    /// `τ → τ1`
    One(SimpleId),
    /// `τ → τ1, τ2`
    Seq(SimpleId, SimpleId),
    /// `τ → τ1 | τ2`
    Alt(SimpleId, SimpleId),
}

/// A simplified DTD `D_N` (Section 4.1).
#[derive(Debug, Clone)]
pub struct SimpleDtd {
    names: Vec<String>,
    rules: Vec<SimpleRule>,
    /// For each simple type, the original element type it corresponds to
    /// (`None` for the synthetic types introduced by the rewriting).
    original: Vec<Option<ElemId>>,
    root: SimpleId,
    /// Attributes of each simple type (copied from the original DTD for
    /// original types; synthetic types carry no attributes, per the paper).
    attrs_of: Vec<Vec<AttrId>>,
}

struct Simplifier<'a> {
    dtd: &'a Dtd,
    names: Vec<String>,
    rules: Vec<SimpleRule>,
    original: Vec<Option<ElemId>>,
    attrs_of: Vec<Vec<AttrId>>,
    shared_epsilon: Option<SimpleId>,
    counter: usize,
}

impl<'a> Simplifier<'a> {
    fn new(dtd: &'a Dtd) -> Self {
        let n = dtd.num_types();
        let mut names = Vec::with_capacity(n);
        let mut original = Vec::with_capacity(n);
        let mut attrs_of = Vec::with_capacity(n);
        for ty in dtd.types() {
            names.push(dtd.type_name(ty).to_string());
            original.push(Some(ty));
            attrs_of.push(dtd.attrs_of(ty).to_vec());
        }
        Simplifier {
            dtd,
            names,
            // Placeholder rules for the original types, overwritten below.
            rules: vec![SimpleRule::Epsilon; n],
            original,
            attrs_of,
            shared_epsilon: None,
            counter: 0,
        }
    }

    fn fresh(&mut self, hint: &str) -> SimpleId {
        let id = SimpleId(self.names.len() as u32);
        self.counter += 1;
        self.names.push(format!("#{hint}{}", self.counter));
        self.rules.push(SimpleRule::Epsilon);
        self.original.push(None);
        self.attrs_of.push(Vec::new());
        id
    }

    fn epsilon_type(&mut self) -> SimpleId {
        if let Some(id) = self.shared_epsilon {
            return id;
        }
        let id = self.fresh("eps");
        self.rules[id.index()] = SimpleRule::Epsilon;
        self.shared_epsilon = Some(id);
        id
    }

    /// Compiles a content model into a rule shape (for the type whose rule it
    /// will become).
    fn compile_rule(&mut self, cm: &ContentModel) -> SimpleRule {
        match cm {
            ContentModel::Epsilon => SimpleRule::Epsilon,
            ContentModel::Text => SimpleRule::Text,
            ContentModel::Element(e) => SimpleRule::One(SimpleId(e.0)),
            ContentModel::Seq(a, b) => {
                let sa = self.as_symbol(a);
                let sb = self.as_symbol(b);
                SimpleRule::Seq(sa, sb)
            }
            ContentModel::Alt(a, b) => {
                let sa = self.as_symbol(a);
                let sb = self.as_symbol(b);
                SimpleRule::Alt(sa, sb)
            }
            ContentModel::Star(a) => SimpleRule::One(self.star_type(a)),
            ContentModel::Plus(_) | ContentModel::Opt(_) => {
                unreachable!("content models are desugared before simplification")
            }
        }
    }

    /// Returns a simple type whose language is exactly the language of `cm`,
    /// creating a synthetic type when `cm` is not already a single symbol.
    fn as_symbol(&mut self, cm: &ContentModel) -> SimpleId {
        match cm {
            ContentModel::Element(e) => SimpleId(e.0),
            ContentModel::Epsilon => self.epsilon_type(),
            ContentModel::Star(a) => {
                let a = a.clone();
                self.star_type(&a)
            }
            _ => {
                let id = self.fresh("t");
                let rule = self.compile_rule(cm);
                self.rules[id.index()] = rule;
                id
            }
        }
    }

    /// Builds the fresh type `t` with `t → ε | (α, t)` for `α*`.
    fn star_type(&mut self, inner: &ContentModel) -> SimpleId {
        let t = self.fresh("star");
        let eps = self.epsilon_type();
        let inner_sym = self.as_symbol(inner);
        let pair = self.fresh("rep");
        self.rules[pair.index()] = SimpleRule::Seq(inner_sym, t);
        self.rules[t.index()] = SimpleRule::Alt(eps, pair);
        t
    }

    fn run(mut self) -> SimpleDtd {
        for ty in self.dtd.types() {
            let cm = self.dtd.content(ty).desugar();
            let rule = self.compile_rule(&cm);
            self.rules[ty.index()] = rule;
        }
        SimpleDtd {
            names: self.names,
            rules: self.rules,
            original: self.original,
            root: SimpleId(self.dtd.root().0),
            attrs_of: self.attrs_of,
        }
    }
}

impl SimpleDtd {
    /// Simplifies a DTD per Section 4.1.
    pub fn from_dtd(dtd: &Dtd) -> SimpleDtd {
        Simplifier::new(dtd).run()
    }

    /// Number of simple element types (original + synthetic).
    pub fn num_types(&self) -> usize {
        self.rules.len()
    }

    /// The root type.
    pub fn root(&self) -> SimpleId {
        self.root
    }

    /// The production rule of a type.
    pub fn rule(&self, id: SimpleId) -> SimpleRule {
        self.rules[id.index()]
    }

    /// Name of a type (synthetic names start with `#`).
    pub fn name(&self, id: SimpleId) -> &str {
        &self.names[id.index()]
    }

    /// Original element type, if `id` is not synthetic.
    pub fn original(&self, id: SimpleId) -> Option<ElemId> {
        self.original[id.index()]
    }

    /// The simple type corresponding to an original element type.
    pub fn simple_of(&self, original: ElemId) -> SimpleId {
        SimpleId(original.0)
    }

    /// Attributes defined for a simple type.
    pub fn attrs_of(&self, id: SimpleId) -> &[AttrId] {
        &self.attrs_of[id.index()]
    }

    /// Iterates over all simple type ids.
    pub fn types(&self) -> impl Iterator<Item = SimpleId> {
        (0..self.rules.len() as u32).map(SimpleId)
    }

    /// Computes which simple types are productive (admit a finite tree).
    pub fn productive(&self) -> Vec<bool> {
        let n = self.num_types();
        let mut productive = vec![false; n];
        loop {
            let mut changed = false;
            for i in 0..n {
                if productive[i] {
                    continue;
                }
                let ok = match self.rules[i] {
                    SimpleRule::Epsilon | SimpleRule::Text => true,
                    SimpleRule::One(a) => productive[a.index()],
                    SimpleRule::Seq(a, b) => productive[a.index()] && productive[b.index()],
                    SimpleRule::Alt(a, b) => productive[a.index()] || productive[b.index()],
                };
                if ok {
                    productive[i] = true;
                    changed = true;
                }
            }
            if !changed {
                return productive;
            }
        }
    }

    /// Whether the simplified DTD admits a valid tree.  By Lemma 4.3 this
    /// agrees with [`crate::analysis::dtd_satisfiable`] on the original DTD.
    pub fn satisfiable(&self) -> bool {
        self.productive()[self.root.index()]
    }

    /// Renders the grammar for debugging.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for id in self.types() {
            let rhs = match self.rule(id) {
                SimpleRule::Epsilon => "ε".to_string(),
                SimpleRule::Text => "S".to_string(),
                SimpleRule::One(a) => self.name(a).to_string(),
                SimpleRule::Seq(a, b) => format!("{}, {}", self.name(a), self.name(b)),
                SimpleRule::Alt(a, b) => format!("{} | {}", self.name(a), self.name(b)),
            };
            let _ = writeln!(out, "{} → {}", self.name(id), rhs);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtd::{example_d1, example_d2, example_d3};
    use crate::ContentModel as CM;

    #[test]
    fn original_types_keep_their_indices() {
        let d1 = example_d1();
        let s = SimpleDtd::from_dtd(&d1);
        for ty in d1.types() {
            let sid = s.simple_of(ty);
            assert_eq!(s.original(sid), Some(ty));
            assert_eq!(s.name(sid), d1.type_name(ty));
        }
        assert_eq!(s.root(), s.simple_of(d1.root()));
    }

    #[test]
    fn rules_are_simple_shapes() {
        let d3 = example_d3();
        let s = SimpleDtd::from_dtd(&d3);
        // Every rule is one of the five allowed shapes by construction; check
        // that synthetic types carry no attributes and have `#` names.
        for id in s.types() {
            if s.original(id).is_none() {
                assert!(s.name(id).starts_with('#'));
                assert!(s.attrs_of(id).is_empty());
            }
        }
        // D3's school rule (course*, student*, enroll*) must have introduced
        // synthetic types.
        assert!(s.num_types() > d3.num_types());
    }

    #[test]
    fn satisfiability_is_preserved() {
        assert!(SimpleDtd::from_dtd(&example_d1()).satisfiable());
        assert!(!SimpleDtd::from_dtd(&example_d2()).satisfiable());
        assert!(SimpleDtd::from_dtd(&example_d3()).satisfiable());
    }

    #[test]
    fn star_rewrites_to_recursive_pair() {
        // r → a*  becomes  r → t, t → #eps | #rep, #rep → a, t.
        let mut b = Dtd::builder();
        let r = b.elem("r");
        let a = b.elem("a");
        b.content(r, CM::star(CM::Element(a)));
        b.content(a, CM::Epsilon);
        let dtd = b.build("r").unwrap();
        let s = SimpleDtd::from_dtd(&dtd);
        let r_rule = s.rule(s.simple_of(r));
        let SimpleRule::One(t) = r_rule else {
            panic!("expected One, got {r_rule:?}")
        };
        let SimpleRule::Alt(eps, pair) = s.rule(t) else {
            panic!("expected Alt")
        };
        assert_eq!(s.rule(eps), SimpleRule::Epsilon);
        let SimpleRule::Seq(first, rest) = s.rule(pair) else {
            panic!("expected Seq")
        };
        assert_eq!(first, s.simple_of(a));
        assert_eq!(rest, t);
        assert!(s.satisfiable());
    }

    #[test]
    fn plus_is_desugared_before_simplification() {
        let mut b = Dtd::builder();
        let r = b.elem("r");
        let a = b.elem("a");
        b.content(r, CM::plus(CM::Element(a)));
        b.content(a, CM::Text);
        let dtd = b.build("r").unwrap();
        let s = SimpleDtd::from_dtd(&dtd);
        // a+ = (a, a*): the root rule is a Seq whose first component is a.
        let SimpleRule::Seq(first, _) = s.rule(s.simple_of(r)) else {
            panic!("expected Seq for a+")
        };
        assert_eq!(first, s.simple_of(a));
        assert!(s.satisfiable());
    }

    #[test]
    fn text_inside_composite_gets_wrapped() {
        let mut b = Dtd::builder();
        let r = b.elem("r");
        let a = b.elem("a");
        b.content(r, CM::seq(CM::Text, CM::Element(a)));
        b.content(a, CM::Epsilon);
        let dtd = b.build("r").unwrap();
        let s = SimpleDtd::from_dtd(&dtd);
        let SimpleRule::Seq(text_wrapper, second) = s.rule(s.simple_of(r)) else {
            panic!("expected Seq")
        };
        assert_eq!(second, s.simple_of(a));
        assert_eq!(s.rule(text_wrapper), SimpleRule::Text);
        assert!(s.original(text_wrapper).is_none());
    }

    #[test]
    fn shared_epsilon_type_is_reused() {
        let mut b = Dtd::builder();
        let r = b.elem("r");
        let a = b.elem("a");
        let c = b.elem("c");
        b.content(
            r,
            CM::seq(CM::star(CM::Element(a)), CM::star(CM::Element(c))),
        );
        b.content(a, CM::Epsilon);
        b.content(c, CM::Epsilon);
        let dtd = b.build("r").unwrap();
        let s = SimpleDtd::from_dtd(&dtd);
        let eps_types: Vec<_> = s
            .types()
            .filter(|&id| s.original(id).is_none() && s.rule(id) == SimpleRule::Epsilon)
            .collect();
        assert_eq!(eps_types.len(), 1, "the ε helper type is shared");
    }

    #[test]
    fn render_lists_all_rules() {
        let s = SimpleDtd::from_dtd(&example_d1());
        let rendered = s.render();
        assert!(rendered.contains("teachers →"));
        assert!(rendered.lines().count() >= s.num_types());
    }
}
