//! Parser for the textual DTD syntax (`<!ELEMENT …>` / `<!ATTLIST …>`).
//!
//! The paper works with an abstract formalisation of DTDs; real specifications
//! arrive as text.  This parser covers the fragment corresponding to the
//! paper's model: element declarations with regular-expression content models
//! (`EMPTY`, `(#PCDATA)`, sequences, choices, `*`, `+`, `?`) and `ATTLIST`
//! declarations whose attributes are all treated as required, single-valued
//! string attributes.  `ID`/`IDREF` attribute types are accepted
//! syntactically but, as in the paper (footnote 1), carry no constraint
//! semantics — constraints are specified separately.

use std::collections::HashMap;

use crate::content::ContentModel;
use crate::dtd::{Dtd, ElemId};
use crate::error::DtdError;

/// Parses a textual DTD.  The root element type is the first declared
/// element unless `root` is given explicitly.
pub fn parse_dtd(input: &str, root: Option<&str>) -> Result<Dtd, DtdError> {
    let mut parser = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    let mut builder = Dtd::builder();
    // Names may be referenced before declaration; collect content models and
    // attributes first, then resolve.
    let mut declared: Vec<(String, RawContent)> = Vec::new();
    let mut attlists: Vec<(String, Vec<String>)> = Vec::new();

    loop {
        parser.skip_ws_and_comments();
        if parser.eof() {
            break;
        }
        if parser.try_consume("<!ELEMENT") {
            parser.skip_ws();
            let name = parser.name()?;
            parser.skip_ws();
            let content = parser.content_spec()?;
            parser.skip_ws();
            parser.expect('>')?;
            declared.push((name, content));
        } else if parser.try_consume("<!ATTLIST") {
            parser.skip_ws();
            let elem = parser.name()?;
            let mut attrs = Vec::new();
            loop {
                parser.skip_ws();
                if parser.peek() == Some('>') {
                    parser.expect('>')?;
                    break;
                }
                let attr_name = parser.name()?;
                parser.skip_ws();
                // Attribute type: CDATA | ID | IDREF | IDREFS | NMTOKEN(S) |
                // enumeration "(a|b|c)".
                if parser.peek() == Some('(') {
                    parser.skip_enumeration()?;
                } else {
                    let _ty = parser.name()?;
                }
                parser.skip_ws();
                // Default declaration: #REQUIRED | #IMPLIED | #FIXED "v" | "v".
                if parser.try_consume("#REQUIRED") || parser.try_consume("#IMPLIED") {
                    // nothing more
                } else if parser.try_consume("#FIXED") {
                    parser.skip_ws();
                    parser.quoted_string()?;
                } else if parser.peek() == Some('"') || parser.peek() == Some('\'') {
                    parser.quoted_string()?;
                }
                attrs.push(attr_name);
            }
            attlists.push((elem, attrs));
        } else if parser.try_consume("<!DOCTYPE") || parser.try_consume("<?xml") {
            // Skip to the end of the declaration (internal subsets are not
            // supported; the caller should pass the subset directly).
            parser.skip_until('>')?;
        } else {
            return Err(parser.error("expected <!ELEMENT or <!ATTLIST declaration"));
        }
    }

    // First pass: declare every element type (including ones only referenced).
    let mut ids: HashMap<String, ElemId> = HashMap::new();
    for (name, _) in &declared {
        ids.insert(name.clone(), builder.elem(name));
    }
    let mut referenced: Vec<String> = Vec::new();
    for (_, content) in &declared {
        content.collect_names(&mut referenced);
    }
    for name in referenced {
        ids.entry(name.clone())
            .or_insert_with(|| builder.elem(&name));
    }
    // Second pass: content models.
    for (name, content) in &declared {
        let id = ids[name];
        let model = content.to_model(&ids);
        builder.content(id, model);
    }
    // Attributes.
    for (elem, attrs) in &attlists {
        let id = *ids
            .get(elem)
            .ok_or_else(|| DtdError::UnknownType(elem.clone()))?;
        for a in attrs {
            builder.attr(id, a);
        }
    }

    let root_name = match root {
        Some(r) => r.to_string(),
        None => declared
            .first()
            .map(|(n, _)| n.clone())
            .ok_or_else(|| DtdError::Unsupported("empty DTD".to_string()))?,
    };
    builder.build(&root_name)
}

/// Raw content specification before name resolution.
#[derive(Debug, Clone)]
enum RawContent {
    Empty,
    PcData,
    Name(String),
    Seq(Vec<RawContent>),
    Alt(Vec<RawContent>),
    Star(Box<RawContent>),
    Plus(Box<RawContent>),
    Opt(Box<RawContent>),
}

impl RawContent {
    fn collect_names(&self, out: &mut Vec<String>) {
        match self {
            RawContent::Empty | RawContent::PcData => {}
            RawContent::Name(n) => out.push(n.clone()),
            RawContent::Seq(items) | RawContent::Alt(items) => {
                for i in items {
                    i.collect_names(out);
                }
            }
            RawContent::Star(a) | RawContent::Plus(a) | RawContent::Opt(a) => a.collect_names(out),
        }
    }

    fn to_model(&self, ids: &HashMap<String, ElemId>) -> ContentModel {
        match self {
            RawContent::Empty => ContentModel::Epsilon,
            RawContent::PcData => ContentModel::Text,
            RawContent::Name(n) => ContentModel::Element(ids[n]),
            RawContent::Seq(items) => ContentModel::seq_all(items.iter().map(|i| i.to_model(ids))),
            RawContent::Alt(items) => ContentModel::alt_all(items.iter().map(|i| i.to_model(ids))),
            RawContent::Star(a) => ContentModel::star(a.to_model(ids)),
            RawContent::Plus(a) => ContentModel::plus(a.to_model(ids)),
            RawContent::Opt(a) => ContentModel::opt(a.to_model(ids)),
        }
    }
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn eof(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<char> {
        self.input.get(self.pos).map(|&b| b as char)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn error(&self, message: &str) -> DtdError {
        DtdError::Syntax {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            self.skip_ws();
            if self.input[self.pos..].starts_with(b"<!--") {
                match find(self.input, self.pos + 4, b"-->") {
                    Some(end) => self.pos = end + 3,
                    None => {
                        self.pos = self.input.len();
                    }
                }
            } else {
                return;
            }
        }
    }

    fn try_consume(&mut self, token: &str) -> bool {
        if self.input[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, ch: char) -> Result<(), DtdError> {
        if self.peek() == Some(ch) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{ch}`")))
        }
    }

    fn skip_until(&mut self, ch: char) -> Result<(), DtdError> {
        while let Some(c) = self.bump() {
            if c == ch {
                return Ok(());
            }
        }
        Err(self.error(&format!("unterminated declaration, expected `{ch}`")))
    }

    fn name(&mut self) -> Result<String, DtdError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' || c == ':')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn quoted_string(&mut self) -> Result<String, DtdError> {
        let quote = self
            .bump()
            .ok_or_else(|| self.error("expected a quoted string"))?;
        if quote != '"' && quote != '\'' {
            return Err(self.error("expected a quoted string"));
        }
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == quote {
                let s = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.error("unterminated string literal"))
    }

    fn skip_enumeration(&mut self) -> Result<(), DtdError> {
        self.expect('(')?;
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                Some('(') => depth += 1,
                Some(')') => depth -= 1,
                Some(_) => {}
                None => return Err(self.error("unterminated enumeration")),
            }
        }
        Ok(())
    }

    fn content_spec(&mut self) -> Result<RawContent, DtdError> {
        if self.try_consume("EMPTY") {
            return Ok(RawContent::Empty);
        }
        if self.try_consume("ANY") {
            return Err(DtdError::Unsupported("ANY content".to_string()));
        }
        if self.peek() == Some('(') {
            let inner = self.group()?;
            return Ok(self.postfix(inner));
        }
        Err(self.error("expected EMPTY or a parenthesised content model"))
    }

    /// Parses a parenthesised group: `( item (sep item)* )` with a single
    /// separator kind (`,` or `|`) per group, as in XML DTDs.
    fn group(&mut self) -> Result<RawContent, DtdError> {
        self.expect('(')?;
        self.skip_ws();
        if self.try_consume("#PCDATA") {
            // (#PCDATA) or mixed content (#PCDATA | a | b)*.
            self.skip_ws();
            let mut names = Vec::new();
            while self.peek() == Some('|') {
                self.expect('|')?;
                self.skip_ws();
                names.push(self.name()?);
                self.skip_ws();
            }
            self.expect(')')?;
            if names.is_empty() {
                return Ok(RawContent::PcData);
            }
            // Mixed content: (#PCDATA | a | b)* — model as (S | a | b)*.
            let mut items = vec![RawContent::PcData];
            items.extend(names.into_iter().map(RawContent::Name));
            // The trailing * is mandatory in XML for mixed content; accept it
            // if present.
            let alt = RawContent::Alt(items);
            if self.peek() == Some('*') {
                self.pos += 1;
                return Ok(RawContent::Star(Box::new(alt)));
            }
            return Ok(RawContent::Star(Box::new(alt)));
        }
        let mut items = vec![self.item()?];
        self.skip_ws();
        let mut separator: Option<char> = None;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(')') => {
                    self.pos += 1;
                    break;
                }
                Some(c @ (',' | '|')) => {
                    match separator {
                        None => separator = Some(c),
                        Some(s) if s == c => {}
                        Some(_) => {
                            return Err(
                                self.error("cannot mix `,` and `|` at the same nesting level")
                            )
                        }
                    }
                    self.pos += 1;
                    self.skip_ws();
                    items.push(self.item()?);
                }
                _ => return Err(self.error("expected `,`, `|` or `)` in content model")),
            }
        }
        Ok(match separator {
            Some('|') => RawContent::Alt(items),
            _ if items.len() == 1 => items.into_iter().next().expect("one item"),
            _ => RawContent::Seq(items),
        })
    }

    /// Parses one item of a group: a name or a nested group, with an optional
    /// postfix operator.
    fn item(&mut self) -> Result<RawContent, DtdError> {
        let base = if self.peek() == Some('(') {
            self.group()?
        } else {
            RawContent::Name(self.name()?)
        };
        Ok(self.postfix(base))
    }

    fn postfix(&mut self, base: RawContent) -> RawContent {
        match self.peek() {
            Some('*') => {
                self.pos += 1;
                RawContent::Star(Box::new(base))
            }
            Some('+') => {
                self.pos += 1;
                RawContent::Plus(Box::new(base))
            }
            Some('?') => {
                self.pos += 1;
                RawContent::Opt(Box::new(base))
            }
            _ => base,
        }
    }
}

fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::dtd_satisfiable;
    use crate::dtd::example_d1;

    const D1_TEXT: &str = r#"
        <!ELEMENT teachers (teacher+)>
        <!ELEMENT teacher (teach, research)>
        <!ELEMENT teach (subject, subject)>
        <!ELEMENT research (#PCDATA)>
        <!ELEMENT subject (#PCDATA)>
        <!ATTLIST teacher name CDATA #REQUIRED>
        <!ATTLIST subject taught_by CDATA #REQUIRED>
    "#;

    #[test]
    fn parses_the_teachers_dtd() {
        let dtd = parse_dtd(D1_TEXT, None).unwrap();
        assert_eq!(dtd.type_name(dtd.root()), "teachers");
        assert_eq!(dtd.num_types(), 5);
        assert_eq!(dtd.num_attrs(), 2);
        let teacher = dtd.type_by_name("teacher").unwrap();
        assert_eq!(dtd.attrs_of(teacher).len(), 1);
        assert!(dtd_satisfiable(&dtd));
        // Structure matches the programmatic D1.
        let built = example_d1();
        assert_eq!(dtd.num_types(), built.num_types());
    }

    #[test]
    fn round_trips_through_render() {
        let dtd = parse_dtd(D1_TEXT, None).unwrap();
        let rendered = dtd.render();
        let reparsed = parse_dtd(&rendered, Some("teachers")).unwrap();
        assert_eq!(reparsed.num_types(), dtd.num_types());
        assert_eq!(reparsed.num_attrs(), dtd.num_attrs());
        for ty in dtd.types() {
            let name = dtd.type_name(ty);
            let other = reparsed.type_by_name(name).unwrap();
            assert_eq!(dtd.attrs_of(ty).len(), reparsed.attrs_of(other).len());
        }
    }

    #[test]
    fn parses_alternation_and_nesting() {
        let text = r#"
            <!ELEMENT doc ((intro | abstract)?, section+)>
            <!ELEMENT intro (#PCDATA)>
            <!ELEMENT abstract (#PCDATA)>
            <!ELEMENT section (title, (para | figure)*)>
            <!ELEMENT title (#PCDATA)>
            <!ELEMENT para (#PCDATA)>
            <!ELEMENT figure EMPTY>
            <!ATTLIST figure src CDATA #REQUIRED caption CDATA #IMPLIED>
        "#;
        let dtd = parse_dtd(text, None).unwrap();
        assert_eq!(dtd.type_name(dtd.root()), "doc");
        let figure = dtd.type_by_name("figure").unwrap();
        assert_eq!(dtd.attrs_of(figure).len(), 2);
        assert!(dtd_satisfiable(&dtd));
    }

    #[test]
    fn rejects_any_content() {
        let text = "<!ELEMENT doc ANY>";
        assert!(matches!(
            parse_dtd(text, None),
            Err(DtdError::Unsupported(_))
        ));
    }

    #[test]
    fn rejects_mixed_separators() {
        let text =
            "<!ELEMENT doc (a, b | c)> <!ELEMENT a EMPTY> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>";
        assert!(matches!(
            parse_dtd(text, None),
            Err(DtdError::Syntax { .. })
        ));
    }

    #[test]
    fn referenced_but_undeclared_types_default_to_empty() {
        let text = "<!ELEMENT doc (mystery)>";
        let dtd = parse_dtd(text, None).unwrap();
        let mystery = dtd.type_by_name("mystery").unwrap();
        assert_eq!(dtd.content(mystery), &ContentModel::Epsilon);
    }

    #[test]
    fn comments_and_doctype_are_skipped() {
        let text = r#"
            <!-- the classic example -->
            <!ELEMENT db (foo)>
            <!-- recursion below -->
            <!ELEMENT foo (foo)>
        "#;
        let dtd = parse_dtd(text, None).unwrap();
        assert!(!dtd_satisfiable(&dtd));
    }

    #[test]
    fn mixed_content_parses_as_star_of_union() {
        let text = "<!ELEMENT p (#PCDATA | em | strong)*> <!ELEMENT em (#PCDATA)> <!ELEMENT strong (#PCDATA)>";
        let dtd = parse_dtd(text, None).unwrap();
        let p = dtd.type_by_name("p").unwrap();
        assert!(matches!(dtd.content(p), ContentModel::Star(_)));
    }

    #[test]
    fn explicit_root_override() {
        let dtd = parse_dtd(D1_TEXT, Some("teacher")).unwrap();
        assert_eq!(dtd.type_name(dtd.root()), "teacher");
    }

    #[test]
    fn error_reports_offset() {
        let text = "<!ELEMENT doc (a,>";
        match parse_dtd(text, None) {
            Err(DtdError::Syntax { offset, .. }) => assert!(offset > 0),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }
}
