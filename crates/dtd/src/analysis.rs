//! Linear-time structural analyses of DTDs.
//!
//! These implement the PTIME cases of the paper:
//!
//! * Theorem 3.5(1): whether a DTD has any valid (finite) XML tree at all —
//!   the emptiness test for the associated extended context-free grammar;
//! * Lemma 3.6: whether some valid tree contains **more than one** node of a
//!   given element type, which drives the linear-time implication test for
//!   keys (Lemma 3.7);
//! * plus reachability, used by the witness synthesizer and the generators.
//!
//! All three are computed by monotone fixpoints over the content-model
//! grammar, without expanding Kleene stars.

use crate::content::ContentModel;
use crate::dtd::{Dtd, ElemId};

/// Result of [`analyze`] — per-type structural facts about a DTD.
#[derive(Debug, Clone)]
pub struct DtdAnalysis {
    /// `productive[τ]` — some finite tree rooted at a `τ` element exists.
    productive: Vec<bool>,
    /// `reachable[τ]` — `τ` occurs in some valid tree position reachable from
    /// the root *through productive contexts* (i.e. `max_count[τ] >= 1`).
    reachable: Vec<bool>,
    /// `max_count[τ]` ∈ {0, 1, 2} — the maximum number of `τ` elements over
    /// all valid trees, capped at 2 ("2" means "at least 2 is achievable").
    max_count: Vec<u8>,
    /// Whether the DTD has any valid tree at all.
    satisfiable: bool,
}

impl DtdAnalysis {
    /// Whether the DTD admits a valid finite XML tree (Theorem 3.5(1)).
    pub fn satisfiable(&self) -> bool {
        self.satisfiable
    }

    /// Whether a finite tree rooted at an element of type `ty` exists.
    pub fn productive(&self, ty: ElemId) -> bool {
        self.productive[ty.index()]
    }

    /// Whether some valid tree of the DTD contains at least one `ty` element.
    pub fn can_occur(&self, ty: ElemId) -> bool {
        self.max_count[ty.index()] >= 1
    }

    /// Whether some valid tree of the DTD contains at least two `ty`
    /// elements (Lemma 3.6).
    pub fn can_occur_twice(&self, ty: ElemId) -> bool {
        self.max_count[ty.index()] >= 2
    }

    /// Whether `ty` is reachable from the root through productive contexts.
    pub fn reachable(&self, ty: ElemId) -> bool {
        self.reachable[ty.index()]
    }
}

/// Runs all analyses on a DTD.
pub fn analyze(dtd: &Dtd) -> DtdAnalysis {
    let productive = compute_productive(dtd);
    let satisfiable = productive[dtd.root().index()];
    let max_count = compute_max_counts(dtd, &productive, satisfiable);
    let reachable = max_count.iter().map(|&c| c >= 1).collect();
    DtdAnalysis {
        productive,
        reachable,
        max_count,
        satisfiable,
    }
}

/// Whether a DTD has any valid XML tree (Theorem 3.5(1)).
pub fn dtd_satisfiable(dtd: &Dtd) -> bool {
    analyze(dtd).satisfiable()
}

/// Can a content model derive a word consisting only of productive symbols?
/// (`None`-free completion.)
fn model_terminates(cm: &ContentModel, productive: &[bool]) -> bool {
    match cm {
        ContentModel::Epsilon | ContentModel::Text => true,
        ContentModel::Element(e) => productive[e.index()],
        ContentModel::Seq(a, b) => {
            model_terminates(a, productive) && model_terminates(b, productive)
        }
        ContentModel::Alt(a, b) => {
            model_terminates(a, productive) || model_terminates(b, productive)
        }
        // α* can always choose zero repetitions.
        ContentModel::Star(_) | ContentModel::Opt(_) => true,
        ContentModel::Plus(a) => model_terminates(a, productive),
    }
}

fn compute_productive(dtd: &Dtd) -> Vec<bool> {
    let n = dtd.num_types();
    let mut productive = vec![false; n];
    loop {
        let mut changed = false;
        for ty in dtd.types() {
            if productive[ty.index()] {
                continue;
            }
            if model_terminates(dtd.content(ty), &productive) {
                productive[ty.index()] = true;
                changed = true;
            }
        }
        if !changed {
            return productive;
        }
    }
}

/// Maximum achievable number of `target`-free... — rather, for every type τ we
/// compute `count[τ]` = max over valid trees rooted at a τ element of the
/// number of nodes, **per target type**, capped at 2.  To keep the analysis
/// linear we compute, for every type simultaneously, the capped maximum count
/// of *that* type in a tree rooted at the *root*: this needs a per-target
/// fixpoint, so we run one fixpoint per element type (overall `O(|E|·|D|)`,
/// still comfortably polynomial and linear per query as in Lemma 3.6).
fn compute_max_counts(dtd: &Dtd, productive: &[bool], satisfiable: bool) -> Vec<u8> {
    let n = dtd.num_types();
    let mut out = vec![0u8; n];
    if !satisfiable {
        return out;
    }
    for target in dtd.types() {
        out[target.index()] = max_count_of(dtd, productive, target);
    }
    out
}

/// Capped (at 2) maximum number of `target` elements over valid trees rooted
/// at the DTD root.
fn max_count_of(dtd: &Dtd, productive: &[bool], target: ElemId) -> u8 {
    let n = dtd.num_types();
    // count[τ] = capped max #target-nodes in a valid tree rooted at τ,
    // or None if τ is not productive.
    let mut count: Vec<Option<u8>> = (0..n)
        .map(|i| if productive[i] { Some(0) } else { None })
        .collect();
    // Seed: a productive target element contains itself.
    loop {
        let mut changed = false;
        for ty in dtd.types() {
            if !productive[ty.index()] {
                continue;
            }
            let from_children = model_count(dtd.content(ty), &count);
            let Some(mut c) = from_children else { continue };
            if ty == target {
                c = (c + 1).min(2);
            }
            if count[ty.index()] != Some(c) && c > count[ty.index()].unwrap_or(0) {
                count[ty.index()] = Some(c);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    count[dtd.root().index()].unwrap_or(0)
}

/// Capped maximum contribution of a content model: max over words in the
/// language (restricted to productive symbols) of the summed child counts.
/// `None` means no word over productive symbols exists.
fn model_count(cm: &ContentModel, count: &[Option<u8>]) -> Option<u8> {
    match cm {
        ContentModel::Epsilon | ContentModel::Text => Some(0),
        ContentModel::Element(e) => count[e.index()],
        ContentModel::Seq(a, b) => {
            let ca = model_count(a, count)?;
            let cb = model_count(b, count)?;
            Some((ca + cb).min(2))
        }
        ContentModel::Alt(a, b) => match (model_count(a, count), model_count(b, count)) {
            (None, None) => None,
            (Some(c), None) | (None, Some(c)) => Some(c),
            (Some(ca), Some(cb)) => Some(ca.max(cb)),
        },
        ContentModel::Star(a) => match model_count(a, count) {
            // Zero repetitions are always allowed; a positive inner count can
            // be doubled by repeating the block.
            None | Some(0) => Some(0),
            Some(_) => Some(2),
        },
        ContentModel::Plus(a) => match model_count(a, count)? {
            0 => Some(0),
            _ => Some(2),
        },
        ContentModel::Opt(a) => Some(model_count(a, count).unwrap_or(0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtd::{example_d1, example_d2, example_d3};
    use crate::ContentModel as CM;

    #[test]
    fn d1_is_satisfiable() {
        let a = analyze(&example_d1());
        assert!(a.satisfiable());
    }

    #[test]
    fn d2_is_unsatisfiable() {
        // db -> foo, foo -> foo: no finite tree.
        let d2 = example_d2();
        let a = analyze(&d2);
        assert!(!a.satisfiable());
        let foo = d2.type_by_name("foo").unwrap();
        assert!(!a.productive(foo));
        assert!(!a.can_occur(foo));
    }

    #[test]
    fn d1_multiplicities() {
        let d1 = example_d1();
        let a = analyze(&d1);
        let teachers = d1.type_by_name("teachers").unwrap();
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        // Exactly one root; teacher can repeat (teacher+); subject appears
        // twice per teacher.
        assert!(a.can_occur(teachers));
        assert!(!a.can_occur_twice(teachers));
        assert!(a.can_occur_twice(teacher));
        assert!(a.can_occur_twice(subject));
    }

    #[test]
    fn d3_star_children_can_be_absent_or_multiple() {
        let d3 = example_d3();
        let a = analyze(&d3);
        let course = d3.type_by_name("course").unwrap();
        let school = d3.type_by_name("school").unwrap();
        assert!(a.can_occur_twice(course));
        assert!(!a.can_occur_twice(school));
        assert!(a.satisfiable());
    }

    #[test]
    fn unreachable_types_are_not_occurring() {
        let mut b = Dtd::builder();
        let r = b.elem("r");
        let a = b.elem("a");
        let orphan = b.elem("orphan");
        b.content(r, CM::Element(a));
        b.content(a, CM::Text);
        b.content(orphan, CM::Text);
        let dtd = b.build("r").unwrap();
        let an = analyze(&dtd);
        assert!(an.satisfiable());
        assert!(an.productive(orphan));
        assert!(!an.reachable(orphan));
        assert!(!an.can_occur(orphan));
        assert!(an.can_occur(a));
    }

    #[test]
    fn recursion_with_escape_is_satisfiable() {
        // r -> a; a -> (a | EMPTY): finite trees exist and a can repeat along
        // a chain, so two a-nodes are achievable.
        let mut b = Dtd::builder();
        let r = b.elem("r");
        let a = b.elem("a");
        b.content(r, CM::Element(a));
        b.content(a, CM::alt(CM::Element(a), CM::Epsilon));
        let dtd = b.build("r").unwrap();
        let an = analyze(&dtd);
        assert!(an.satisfiable());
        assert!(an.can_occur_twice(a));
    }

    #[test]
    fn optional_unproductive_branch_is_fine() {
        // r -> (bad | good); bad -> bad; good -> EMPTY.
        let mut b = Dtd::builder();
        let r = b.elem("r");
        let bad = b.elem("bad");
        let good = b.elem("good");
        b.content(r, CM::alt(CM::Element(bad), CM::Element(good)));
        b.content(bad, CM::Element(bad));
        b.content(good, CM::Epsilon);
        let dtd = b.build("r").unwrap();
        let an = analyze(&dtd);
        assert!(an.satisfiable());
        assert!(!an.can_occur(bad));
        assert!(an.can_occur(good));
        assert!(!an.can_occur_twice(good));
    }

    #[test]
    fn required_unproductive_child_poisons_parent() {
        // r -> (good, bad); bad -> bad.
        let mut b = Dtd::builder();
        let r = b.elem("r");
        let good = b.elem("good");
        let bad = b.elem("bad");
        b.content(r, CM::seq(CM::Element(good), CM::Element(bad)));
        b.content(good, CM::Epsilon);
        b.content(bad, CM::Element(bad));
        let dtd = b.build("r").unwrap();
        assert!(!dtd_satisfiable(&dtd));
    }

    #[test]
    fn star_of_unproductive_is_satisfiable_but_type_cannot_occur() {
        // r -> bad*; bad -> bad.
        let mut b = Dtd::builder();
        let r = b.elem("r");
        let bad = b.elem("bad");
        b.content(r, CM::star(CM::Element(bad)));
        b.content(bad, CM::Element(bad));
        let dtd = b.build("r").unwrap();
        let an = analyze(&dtd);
        assert!(an.satisfiable());
        assert!(!an.can_occur(bad));
    }
}
