//! Brzozowski-derivative matcher for content models.
//!
//! This is a second, independently-implemented membership test for content
//! model languages.  It exists purely to cross-check the Glushkov automaton
//! (`proptest` asserts the two matchers agree on random expressions and
//! words), following the project convention that every non-trivial algorithm
//! with a cheap independent oracle gets one.

use std::rc::Rc;

use crate::content::{ChildSymbol, ContentModel};

/// Internal regular-expression representation with an explicit empty
/// language ∅ (needed as the derivative of a symbol by a different symbol).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Re {
    Empty,
    Epsilon,
    Sym(ChildSymbol),
    Seq(Rc<Re>, Rc<Re>),
    Alt(Rc<Re>, Rc<Re>),
    Star(Rc<Re>),
}

impl Re {
    fn nullable(&self) -> bool {
        match self {
            Re::Empty | Re::Sym(_) => false,
            Re::Epsilon | Re::Star(_) => true,
            Re::Seq(a, b) => a.nullable() && b.nullable(),
            Re::Alt(a, b) => a.nullable() || b.nullable(),
        }
    }
}

/// Smart constructors performing the usual similarity simplifications so that
/// derivative chains do not blow up.
fn seq(a: Rc<Re>, b: Rc<Re>) -> Rc<Re> {
    match (&*a, &*b) {
        (Re::Empty, _) | (_, Re::Empty) => Rc::new(Re::Empty),
        (Re::Epsilon, _) => b,
        (_, Re::Epsilon) => a,
        _ => Rc::new(Re::Seq(a, b)),
    }
}

fn alt(a: Rc<Re>, b: Rc<Re>) -> Rc<Re> {
    match (&*a, &*b) {
        (Re::Empty, _) => b,
        (_, Re::Empty) => a,
        _ if a == b => a,
        _ => Rc::new(Re::Alt(a, b)),
    }
}

fn star(a: Rc<Re>) -> Rc<Re> {
    match &*a {
        Re::Empty | Re::Epsilon => Rc::new(Re::Epsilon),
        Re::Star(_) => a,
        _ => Rc::new(Re::Star(a)),
    }
}

fn compile(model: &ContentModel) -> Rc<Re> {
    match model {
        ContentModel::Epsilon => Rc::new(Re::Epsilon),
        ContentModel::Text => Rc::new(Re::Sym(ChildSymbol::Text)),
        ContentModel::Element(e) => Rc::new(Re::Sym(ChildSymbol::Element(*e))),
        ContentModel::Seq(a, b) => seq(compile(a), compile(b)),
        ContentModel::Alt(a, b) => alt(compile(a), compile(b)),
        ContentModel::Star(a) => star(compile(a)),
        ContentModel::Plus(a) => {
            let inner = compile(a);
            seq(inner.clone(), star(inner))
        }
        ContentModel::Opt(a) => alt(compile(a), Rc::new(Re::Epsilon)),
    }
}

/// Brzozowski derivative of `re` with respect to `symbol`.
fn derive(re: &Rc<Re>, symbol: ChildSymbol) -> Rc<Re> {
    match &**re {
        Re::Empty | Re::Epsilon => Rc::new(Re::Empty),
        Re::Sym(s) => {
            if *s == symbol {
                Rc::new(Re::Epsilon)
            } else {
                Rc::new(Re::Empty)
            }
        }
        Re::Seq(a, b) => {
            let da_b = seq(derive(a, symbol), b.clone());
            if a.nullable() {
                alt(da_b, derive(b, symbol))
            } else {
                da_b
            }
        }
        Re::Alt(a, b) => alt(derive(a, symbol), derive(b, symbol)),
        Re::Star(a) => seq(derive(a, symbol), star(a.clone())),
    }
}

/// A derivative-based matcher for one content model.
#[derive(Debug, Clone)]
pub struct DerivativeMatcher {
    compiled: Rc<Re>,
}

impl DerivativeMatcher {
    /// Compiles a content model.
    pub fn new(model: &ContentModel) -> DerivativeMatcher {
        DerivativeMatcher {
            compiled: compile(model),
        }
    }

    /// Tests membership of a word in the model's language.
    pub fn matches(&self, word: &[ChildSymbol]) -> bool {
        let mut current = self.compiled.clone();
        for &symbol in word {
            current = derive(&current, symbol);
            if matches!(&*current, Re::Empty) {
                return false;
            }
        }
        current.nullable()
    }

    /// Returns `true` iff the language contains the empty word.
    pub fn accepts_empty(&self) -> bool {
        self.compiled.nullable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtd::ElemId;
    use crate::glushkov::Glushkov;

    fn e(i: u32) -> ContentModel {
        ContentModel::Element(ElemId(i))
    }

    fn ce(i: u32) -> ChildSymbol {
        ChildSymbol::Element(ElemId(i))
    }

    #[test]
    fn basic_membership() {
        let m = DerivativeMatcher::new(&ContentModel::seq(e(0), ContentModel::star(e(1))));
        assert!(m.matches(&[ce(0)]));
        assert!(m.matches(&[ce(0), ce(1), ce(1)]));
        assert!(!m.matches(&[ce(1)]));
        assert!(!m.matches(&[]));
        assert!(!m.accepts_empty());
    }

    #[test]
    fn plus_and_opt() {
        let m = DerivativeMatcher::new(&ContentModel::seq(
            ContentModel::plus(e(0)),
            ContentModel::opt(ContentModel::Text),
        ));
        assert!(m.matches(&[ce(0)]));
        assert!(m.matches(&[ce(0), ce(0), ChildSymbol::Text]));
        assert!(!m.matches(&[ChildSymbol::Text]));
    }

    #[test]
    fn agrees_with_glushkov_on_fixed_cases() {
        let models = vec![
            ContentModel::Epsilon,
            ContentModel::Text,
            e(0),
            ContentModel::seq(e(0), e(1)),
            ContentModel::alt(e(0), e(1)),
            ContentModel::star(ContentModel::alt(e(0), ContentModel::seq(e(1), e(2)))),
            ContentModel::plus(ContentModel::opt(e(0))),
            ContentModel::seq(ContentModel::star(e(0)), ContentModel::star(e(0))),
        ];
        let words: Vec<Vec<ChildSymbol>> = vec![
            vec![],
            vec![ce(0)],
            vec![ce(1)],
            vec![ce(0), ce(1)],
            vec![ce(1), ce(2)],
            vec![ce(0), ce(0), ce(0)],
            vec![ce(0), ce(1), ce(2)],
            vec![ChildSymbol::Text],
        ];
        for m in &models {
            let g = Glushkov::new(m);
            let d = DerivativeMatcher::new(m);
            for w in &words {
                assert_eq!(g.matches(w), d.matches(w), "model {m:?} word {w:?}");
            }
        }
    }
}
