//! `IncrementalIndex` — `T ⊨ Σ` maintained under point edits in O(edit).
//!
//! [`crate::DocIndex`] answers the checking problem for a *frozen* document:
//! one pass builds every index the plan names, and checking is O(1) probes.
//! A long-lived session needs the same answers while the document *changes*.
//! Rebuilding after every edit costs O(document); this module maintains the
//! answers under [`xic_xml::EditEffect`] deltas at a cost proportional to
//! the edit instead.
//!
//! The machinery splits along a `(D, Σ)` / `T` boundary:
//!
//! * [`IncrementalLayout`] is the **document-independent** half: one **slot**
//!   per distinct `(τ, X̄)` a constraint mentions, the source descriptors and
//!   watcher lists of every inclusion constraint, and the `(type, attribute)`
//!   touch maps that drive dirty tracking.  It depends only on the
//!   specification, so corpus-scale consumers (`xic-engine`'s
//!   `CompiledSpec`) derive it **once** and share it — behind an `Arc` —
//!   across every open document;
//! * [`IncrementalIndex`] is the **per-document** half: for each slot, the
//!   refcounted tuple → carrier map `{x[X̄] ↦ {elements carrying it}}` as
//!   ordered carrier sets — presence of a tuple is "carrier set non-empty",
//!   which doubles as the inclusion target multiset; per key slot, a
//!   **clash-witness order** (every tuple with ≥ 2 carriers indexed by its
//!   second-smallest carrier, so "the first key clash" in
//!   [`xic_xml::XmlTree::elements`] order — the exact witness a fresh
//!   [`crate::DocIndex`] build reports — is a single `first_key_value`
//!   lookup); per inclusion constraint, the **source states** (sources
//!   bucketed by tuple, plus ordered sets of sources with missing attributes
//!   and of *dangling* sources whose tuple is absent from the target slot —
//!   target slots notify their watching inclusions on present ↔ absent
//!   transitions, so dangling sets stay exact without rescanning); and a
//!   **dirty set** over the constraints of Σ: an edit marks only the
//!   constraints whose slots mention the touched `(type, attribute)`, and
//!   verdict extraction re-renders violations for those while reusing the
//!   cached answer for everything else.
//!
//! The invariant, enforced by `tests/session_agreement.rs` and
//! `tests/corpus_agreement.rs`, is *witness identity*: after any edit
//! sequence, [`IncrementalIndex::check_all`] equals
//! `DocIndex::build(..).check_all(..)` on the edited tree — same violations,
//! same witnesses, same order.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::BuildHasherDefault;
use std::sync::{Arc, OnceLock};

use xic_dtd::{AttrId, Dtd, ElemId};
use xic_telemetry::{Counter, Histogram};
use xic_xml::{EditEffect, NodeId, ValueId, XmlTree};

use crate::classes::ConstraintSet;
use crate::constraint::{Constraint, InclusionSpec};
use crate::index::TupleHasher;
use crate::satisfy::Violation;

type TupleMap<V> = HashMap<Box<[ValueId]>, V, BuildHasherDefault<TupleHasher>>;

/// Process-wide incremental-index instruments (builds, build latency,
/// constraints recomputed by verdict extraction), resolved once.
fn instruments() -> &'static (Arc<Counter>, Arc<Histogram>, Arc<Counter>) {
    static INSTRUMENTS: OnceLock<(Arc<Counter>, Arc<Histogram>, Arc<Counter>)> = OnceLock::new();
    INSTRUMENTS.get_or_init(|| {
        let telemetry = xic_telemetry::global();
        (
            telemetry.counter("incremental.builds"),
            telemetry.histogram("incremental.build_ns"),
            telemetry.counter("incremental.constraints_rechecked"),
        )
    })
}

/// The document-independent descriptor of one `(τ, X̄)` slot.
#[derive(Debug)]
struct SlotSpec {
    ty: ElemId,
    attrs: Vec<AttrId>,
    /// Whether any key constraint reads this slot's clashes (pure inclusion
    /// targets skip clash bookkeeping).
    track_clash: bool,
    /// Indices into the source table to notify on tuple present ↔ absent
    /// flips.
    watchers: Vec<usize>,
}

/// The document-independent descriptor of one inclusion constraint's source
/// side `τ1[X̄] ⊆ τ2[Ȳ]`.
#[derive(Debug)]
struct SourceSpec {
    from_ty: ElemId,
    from_attrs: Vec<AttrId>,
    /// The slot holding the target tuple multiset.
    target: usize,
}

/// How one constraint of Σ reads the maintained state.
#[derive(Debug, Clone, Copy)]
enum Check {
    Key { slot: usize },
    NotKey { slot: usize },
    Inclusion { source: usize },
    NotInclusion { source: usize },
    ForeignKey { slot: usize, source: usize },
}

/// The `(D, Σ)`-only layout of an [`IncrementalIndex`]: slot and source
/// descriptors, watcher lists, and the `(type, attribute)` touch maps that
/// drive constraint dirty tracking.
///
/// Deriving the layout walks Σ once and the document never; it is therefore
/// computed **per specification**, not per document.  `xic-engine` stores
/// one on every `CompiledSpec` (next to the [`crate::IndexPlan`] it
/// mirrors), and every document opened against that spec shares it through
/// [`IncrementalIndex::with_layout`].
#[derive(Debug)]
pub struct IncrementalLayout {
    checks: Vec<(Check, String)>,
    slots: Vec<SlotSpec>,
    sources: Vec<SourceSpec>,
    /// Slot indices to update when an element of the type appears/vanishes.
    slots_of_ty: HashMap<ElemId, Vec<usize>>,
    /// Source indices to update, keyed the same way.
    sources_of_ty: HashMap<ElemId, Vec<usize>>,
    /// Constraints whose verdict can change when the type's extension does.
    checks_of_ty: HashMap<ElemId, Vec<usize>>,
    /// Constraints whose verdict can change when `(τ, l)` values do.
    checks_of_attr: HashMap<(ElemId, AttrId), Vec<usize>>,
}

impl IncrementalLayout {
    /// Lays out slots, source descriptors, watcher lists and touch maps for
    /// Σ.  Pure in `(D, Σ)`: no document is consulted.
    pub fn new(dtd: &Dtd, sigma: &ConstraintSet) -> IncrementalLayout {
        let mut slots: Vec<SlotSpec> = Vec::new();
        let mut sources: Vec<SourceSpec> = Vec::new();
        let mut checks: Vec<(Check, String)> = Vec::new();

        for c in sigma.iter() {
            let rendered = c.render(dtd);
            let check = match c {
                Constraint::Key(k) => Check::Key {
                    slot: slot_index(&mut slots, k.ty, &k.attrs, true),
                },
                Constraint::NotKey(k) => Check::NotKey {
                    slot: slot_index(&mut slots, k.ty, &k.attrs, true),
                },
                Constraint::Inclusion(i) => Check::Inclusion {
                    source: source_index(&mut sources, &mut slots, i),
                },
                Constraint::NotInclusion(i) => Check::NotInclusion {
                    source: source_index(&mut sources, &mut slots, i),
                },
                Constraint::ForeignKey(i) => Check::ForeignKey {
                    slot: slot_index(&mut slots, i.to_ty, &i.to_attrs, true),
                    source: source_index(&mut sources, &mut slots, i),
                },
            };
            checks.push((check, rendered));
        }

        // Register watchers now that source targets are final.
        for (qi, src) in sources.iter().enumerate() {
            let watchers = &mut slots[src.target].watchers;
            if !watchers.contains(&qi) {
                watchers.push(qi);
            }
        }

        let mut slots_of_ty: HashMap<ElemId, Vec<usize>> = HashMap::new();
        for (i, s) in slots.iter().enumerate() {
            slots_of_ty.entry(s.ty).or_default().push(i);
        }
        let mut sources_of_ty: HashMap<ElemId, Vec<usize>> = HashMap::new();
        for (i, s) in sources.iter().enumerate() {
            sources_of_ty.entry(s.from_ty).or_default().push(i);
        }

        // Touch maps: which constraints can change verdict when a type's
        // extension changes, or when a (type, attribute) value changes.
        // This is the IndexPlan touch-graph restricted to Σ's own slots.
        let mut checks_of_ty: HashMap<ElemId, Vec<usize>> = HashMap::new();
        let mut checks_of_attr: HashMap<(ElemId, AttrId), Vec<usize>> = HashMap::new();
        let touch = |map: &mut HashMap<ElemId, Vec<usize>>,
                     attr_map: &mut HashMap<(ElemId, AttrId), Vec<usize>>,
                     idx: usize,
                     ty: ElemId,
                     attrs: &[AttrId]| {
            let list = map.entry(ty).or_default();
            if !list.contains(&idx) {
                list.push(idx);
            }
            for &a in attrs {
                let list = attr_map.entry((ty, a)).or_default();
                if !list.contains(&idx) {
                    list.push(idx);
                }
            }
        };
        for (idx, c) in sigma.iter().enumerate() {
            match c {
                Constraint::Key(k) | Constraint::NotKey(k) => {
                    touch(&mut checks_of_ty, &mut checks_of_attr, idx, k.ty, &k.attrs);
                }
                Constraint::Inclusion(i)
                | Constraint::NotInclusion(i)
                | Constraint::ForeignKey(i) => {
                    touch(
                        &mut checks_of_ty,
                        &mut checks_of_attr,
                        idx,
                        i.from_ty,
                        &i.from_attrs,
                    );
                    touch(
                        &mut checks_of_ty,
                        &mut checks_of_attr,
                        idx,
                        i.to_ty,
                        &i.to_attrs,
                    );
                }
            }
        }

        IncrementalLayout {
            checks,
            slots,
            sources,
            slots_of_ty,
            sources_of_ty,
            checks_of_ty,
            checks_of_attr,
        }
    }

    /// Number of constraints in Σ (one cached verdict each).
    pub fn num_checks(&self) -> usize {
        self.checks.len()
    }

    /// Number of distinct `(τ, X̄)` slots the layout maintains.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Number of inclusion source states.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// The constraints whose verdict can change when the extension of `ty`
    /// does (elements of the type appearing or vanishing) — exactly the set
    /// [`IncrementalIndex`] marks dirty for an `ElementAdded` /
    /// `SubtreeRemoved` effect on the type.  Routing layers (a coordinator
    /// fanning edit batches out to shard workers) use this to predict a
    /// batch's dirty set without owning an index.
    pub fn checks_touched_by_ty(&self, ty: ElemId) -> &[usize] {
        self.checks_of_ty.get(&ty).map_or(&[], Vec::as_slice)
    }

    /// The constraints whose verdict can change when `(ty, attr)` values do
    /// — the set an `AttrSet` effect marks dirty (an `AttrSet` whose new
    /// value equals the old marks nothing).
    pub fn checks_touched_by_attr(&self, ty: ElemId, attr: AttrId) -> &[usize] {
        self.checks_of_attr
            .get(&(ty, attr))
            .map_or(&[], Vec::as_slice)
    }
}

/// The connected components of the layout's touch-graph: two constraints
/// share a shard exactly when a chain of shared `(type, attribute)` touches
/// links them, so an edit can flip verdicts in at most the shards its
/// touch-set intersects.  Derived once per specification from the
/// [`IncrementalLayout`] touch maps — pure in `(D, Σ)`, like the layout.
///
/// Shard ids are canonical: shards are numbered by the first constraint
/// (in Σ order) they contain, so the same Σ always yields the same plan
/// regardless of map iteration order.
#[derive(Debug)]
pub struct ShardPlan {
    shard_of_check: Vec<u32>,
    checks_of_shard: Vec<Vec<usize>>,
    /// Rendered constraint → shard, for projecting reports whose violations
    /// carry only the rendered form.  Identical renders name identical
    /// slots, so the keying is unambiguous.
    shard_of_rendered: HashMap<String, u32>,
    /// Rendered constraint → first Σ index carrying that render, for
    /// re-interleaving per-shard violation slices back into global Σ order
    /// (verdict extraction emits at most one violation per constraint, in
    /// Σ order, so a stable sort on this key reproduces the monolithic
    /// ordering exactly).
    order_of_rendered: HashMap<String, usize>,
}

/// Union-find root with path halving.
fn uf_find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

impl ShardPlan {
    /// Computes the touch-graph components of `layout`.  Every
    /// `checks_of_ty` / `checks_of_attr` bucket is a clique in the touch
    /// graph (all its constraints react to the same touch), so unioning
    /// along buckets yields exactly the connected components.
    pub fn of_layout(layout: &IncrementalLayout) -> ShardPlan {
        let n = layout.checks.len();
        let mut parent: Vec<usize> = (0..n).collect();
        let buckets = layout
            .checks_of_ty
            .values()
            .chain(layout.checks_of_attr.values());
        for bucket in buckets {
            let Some(&first) = bucket.first() else {
                continue;
            };
            for &other in &bucket[1..] {
                let a = uf_find(&mut parent, first);
                let b = uf_find(&mut parent, other);
                if a != b {
                    parent[b] = a;
                }
            }
        }
        let mut id_of_root: HashMap<usize, u32> = HashMap::new();
        let mut shard_of_check = Vec::with_capacity(n);
        let mut checks_of_shard: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            let root = uf_find(&mut parent, i);
            let id = *id_of_root.entry(root).or_insert_with(|| {
                checks_of_shard.push(Vec::new());
                (checks_of_shard.len() - 1) as u32
            });
            shard_of_check.push(id);
            checks_of_shard[id as usize].push(i);
        }
        let shard_of_rendered = layout
            .checks
            .iter()
            .enumerate()
            .map(|(i, (_, rendered))| (rendered.clone(), shard_of_check[i]))
            .collect();
        let mut order_of_rendered: HashMap<String, usize> = HashMap::new();
        for (i, (_, rendered)) in layout.checks.iter().enumerate() {
            order_of_rendered.entry(rendered.clone()).or_insert(i);
        }
        ShardPlan {
            shard_of_check,
            checks_of_shard,
            shard_of_rendered,
            order_of_rendered,
        }
    }

    /// Number of touch-graph components (shards).  Zero for an empty Σ.
    pub fn num_shards(&self) -> usize {
        self.checks_of_shard.len()
    }

    /// Number of constraints the plan partitions.
    pub fn num_checks(&self) -> usize {
        self.shard_of_check.len()
    }

    /// The shard holding constraint `idx` (Σ order).
    pub fn shard_of_check(&self, idx: usize) -> u32 {
        self.shard_of_check[idx]
    }

    /// The constraint indices of shard `shard`, in Σ order.
    pub fn checks_of_shard(&self, shard: u32) -> &[usize] {
        &self.checks_of_shard[shard as usize]
    }

    /// The shard of a rendered constraint, as carried by a
    /// [`Violation`] — `None` when Σ contains no such constraint.
    pub fn shard_of_rendered(&self, rendered: &str) -> Option<u32> {
        self.shard_of_rendered.get(rendered).copied()
    }

    /// Every shard id, in canonical order.
    pub fn all_shards(&self) -> impl Iterator<Item = u32> + '_ {
        0..self.checks_of_shard.len() as u32
    }

    /// The Σ position of a rendered constraint (first occurrence for
    /// duplicate renders — duplicates share a shard, so slices keep their
    /// relative order under a stable sort on this key).  `None` when Σ
    /// contains no such constraint.  The merge key for recombining
    /// per-shard violation slices into the monolithic report order.
    pub fn order_of_rendered(&self, rendered: &str) -> Option<usize> {
        self.order_of_rendered.get(rendered).copied()
    }
}

/// Per-document mutable state of one slot (the spec half lives in
/// [`IncrementalLayout`]).
#[derive(Debug, Default)]
struct SlotData {
    /// Every tuple present in the document, with the ordered set of
    /// elements carrying it (the "multiset" view: multiplicity = set size).
    carriers: TupleMap<BTreeSet<NodeId>>,
    /// Second-smallest carrier → tuple, for every tuple with ≥ 2 carriers.
    /// Each element carries exactly one tuple per slot, so the keys are
    /// unique; the first entry is the traversal-order first clash (the
    /// ascending-id order of [`xic_xml::XmlTree::elements`], which every
    /// checker in the workspace scans in).
    clashes: BTreeMap<NodeId, Box<[ValueId]>>,
}

/// Per-document mutable state of one inclusion source.
#[derive(Debug, Default)]
struct SourceData {
    /// Live sources bucketed by their tuple.
    by_tuple: TupleMap<BTreeSet<NodeId>>,
    /// Sources missing one of `from_attrs` (a violation of its own kind).
    missing: BTreeSet<NodeId>,
    /// Sources whose tuple is absent from the target slot.
    dangling: BTreeSet<NodeId>,
}

/// Incrementally maintained satisfaction indexes for one `(Σ, T)` pair.
///
/// Built once with [`IncrementalIndex::build`] (standalone) or
/// [`IncrementalIndex::with_layout`] (sharing a precomputed spec-level
/// [`IncrementalLayout`]); kept exact by feeding every [`EditEffect`] the
/// tree produces to [`IncrementalIndex::apply`] — *immediately* after the
/// edit, against the already-mutated tree (removed subtrees stay readable as
/// tombstones, which retraction relies on).
/// [`IncrementalIndex::check_all`] then reproduces the full-rebuild verdict
/// from cached per-constraint answers, recomputing only the dirty ones.
#[derive(Debug)]
pub struct IncrementalIndex {
    layout: Arc<IncrementalLayout>,
    slots: Vec<SlotData>,
    sources: Vec<SourceData>,
    dirty_flags: Vec<bool>,
    dirty: Vec<usize>,
    cache: Vec<Option<Violation>>,
    /// How many constraints the last [`IncrementalIndex::check_all`] had to
    /// recompute (the rest came from cache) — the observable O(edit) claim.
    rechecked: usize,
}

impl IncrementalIndex {
    /// Standalone build: derives a fresh layout for `(D, Σ)`, then populates
    /// it from `tree`.  Single-document callers use this; corpus-scale
    /// callers derive the layout once and use
    /// [`IncrementalIndex::with_layout`].
    pub fn build(dtd: &Dtd, sigma: &ConstraintSet, tree: &XmlTree) -> IncrementalIndex {
        IncrementalIndex::with_layout(Arc::new(IncrementalLayout::new(dtd, sigma)), tree)
    }

    /// Populates per-document state over a shared, precomputed layout in one
    /// traversal-order pass (every constraint starts dirty, so the first
    /// verdict is computed, not assumed).  No layout derivation happens
    /// here: the `Arc` is the only thing cloned.
    pub fn with_layout(layout: Arc<IncrementalLayout>, tree: &XmlTree) -> IncrementalIndex {
        let (builds, build_ns, _) = instruments();
        let timer = xic_telemetry::global().start_timer();
        let index = IncrementalIndex::with_layout_uninstrumented(layout, tree);
        builds.inc();
        if let Some(t) = timer {
            build_ns.record_elapsed(t);
        }
        index
    }

    fn with_layout_uninstrumented(
        layout: Arc<IncrementalLayout>,
        tree: &XmlTree,
    ) -> IncrementalIndex {
        let n = layout.checks.len();
        let mut index = IncrementalIndex {
            slots: layout.slots.iter().map(|_| SlotData::default()).collect(),
            sources: layout
                .sources
                .iter()
                .map(|_| SourceData::default())
                .collect(),
            layout,
            dirty_flags: vec![true; n],
            dirty: (0..n).collect(),
            cache: vec![None; n],
            rechecked: 0,
        };
        for node in tree.elements() {
            if let Some(ty) = tree.element_type(node) {
                index.insert_element(tree, node, ty);
            }
        }
        index
    }

    /// The shared spec-level layout this index populates.
    pub fn layout(&self) -> &Arc<IncrementalLayout> {
        &self.layout
    }

    /// How many constraints the last verdict extraction recomputed.
    pub fn rechecked(&self) -> usize {
        self.rechecked
    }

    /// Number of constraints currently marked dirty.
    pub fn pending(&self) -> usize {
        self.dirty.len()
    }

    /// The constraint indices currently marked dirty, in marking order.
    /// Shard-aware callers map these through a [`ShardPlan`] *before*
    /// verdict extraction (which drains the set) to learn which shards the
    /// pending edits can affect.
    pub fn dirty_checks(&self) -> &[usize] {
        &self.dirty
    }

    // ------------------------------------------------------------------
    // Edit application
    // ------------------------------------------------------------------

    /// Folds one applied edit into the maintained state.  Must be called
    /// with the tree the effect was produced on, *after* the edit.
    pub fn apply(&mut self, tree: &XmlTree, effect: &EditEffect) {
        // The immutable layout is read alongside the mutable per-document
        // state throughout; an Arc clone (one refcount bump) decouples the
        // two borrows without moving anything.
        let layout = Arc::clone(&self.layout);
        match effect {
            EditEffect::AttrSet {
                element,
                ty,
                attr,
                old,
                new,
            } => {
                if *old == Some(*new) {
                    return;
                }
                self.mark_dirty_attr(&layout, *ty, *attr);
                for si in layout.slots_of_ty.get(ty).into_iter().flatten() {
                    let spec = &layout.slots[*si];
                    if !spec.attrs.contains(attr) {
                        continue;
                    }
                    let old_tuple = tuple_with_displaced(tree, *element, &spec.attrs, *attr, *old);
                    let new_tuple = tuple_of(tree, *element, &spec.attrs);
                    if old_tuple == new_tuple {
                        continue;
                    }
                    if let Some(t) = old_tuple {
                        self.remove_carrier(&layout, *si, &t, *element);
                    }
                    if let Some(t) = new_tuple {
                        self.add_carrier(&layout, *si, &t, *element);
                    }
                }
                for qi in layout.sources_of_ty.get(ty).into_iter().flatten() {
                    let spec = &layout.sources[*qi];
                    if !spec.from_attrs.contains(attr) {
                        continue;
                    }
                    let old_tuple =
                        tuple_with_displaced(tree, *element, &spec.from_attrs, *attr, *old);
                    let new_tuple = tuple_of(tree, *element, &spec.from_attrs);
                    if old_tuple == new_tuple {
                        continue;
                    }
                    self.remove_source(&layout, *qi, old_tuple.as_deref(), *element);
                    self.add_source(&layout, *qi, new_tuple.as_deref(), *element);
                }
            }
            EditEffect::ElementAdded { element, ty, .. } => {
                self.mark_dirty_ty(&layout, *ty);
                self.insert_element(tree, *element, *ty);
            }
            EditEffect::TextAdded { .. } => {
                // Text values are invisible to attribute-based constraints.
            }
            EditEffect::SubtreeRemoved { elements, .. } => {
                for &(node, ty) in elements {
                    self.mark_dirty_ty(&layout, ty);
                    self.retract_element(tree, node, ty);
                }
            }
        }
    }

    fn insert_element(&mut self, tree: &XmlTree, node: NodeId, ty: ElemId) {
        let layout = Arc::clone(&self.layout);
        for si in layout.slots_of_ty.get(&ty).into_iter().flatten() {
            if let Some(t) = tuple_of(tree, node, &layout.slots[*si].attrs) {
                self.add_carrier(&layout, *si, &t, node);
            }
        }
        for qi in layout.sources_of_ty.get(&ty).into_iter().flatten() {
            let t = tuple_of(tree, node, &layout.sources[*qi].from_attrs);
            self.add_source(&layout, *qi, t.as_deref(), node);
        }
    }

    /// Retracts a removed element; its attribute values are read from the
    /// tombstoned arena slot, which [`XmlTree::remove_subtree`] preserves.
    fn retract_element(&mut self, tree: &XmlTree, node: NodeId, ty: ElemId) {
        let layout = Arc::clone(&self.layout);
        for si in layout.slots_of_ty.get(&ty).into_iter().flatten() {
            if let Some(t) = tuple_of(tree, node, &layout.slots[*si].attrs) {
                self.remove_carrier(&layout, *si, &t, node);
            }
        }
        for qi in layout.sources_of_ty.get(&ty).into_iter().flatten() {
            let t = tuple_of(tree, node, &layout.sources[*qi].from_attrs);
            self.remove_source(&layout, *qi, t.as_deref(), node);
        }
    }

    fn add_carrier(
        &mut self,
        layout: &IncrementalLayout,
        si: usize,
        tuple: &[ValueId],
        node: NodeId,
    ) {
        let became_present;
        {
            let slot = &mut self.slots[si];
            let set = match slot.carriers.get_mut(tuple) {
                Some(set) => set,
                None => slot.carriers.entry(tuple.into()).or_default(),
            };
            became_present = set.is_empty();
            let old_second = set.iter().nth(1).copied();
            set.insert(node);
            let new_second = set.iter().nth(1).copied();
            if layout.slots[si].track_clash && old_second != new_second {
                if let Some(s) = old_second {
                    slot.clashes.remove(&s);
                }
                if let Some(s) = new_second {
                    slot.clashes.insert(s, tuple.into());
                }
            }
        }
        if became_present {
            self.notify_presence(layout, si, tuple, true);
        }
    }

    fn remove_carrier(
        &mut self,
        layout: &IncrementalLayout,
        si: usize,
        tuple: &[ValueId],
        node: NodeId,
    ) {
        let became_absent;
        {
            let slot = &mut self.slots[si];
            let Some(set) = slot.carriers.get_mut(tuple) else {
                debug_assert!(false, "removing a carrier that was never added");
                return;
            };
            let old_second = set.iter().nth(1).copied();
            set.remove(&node);
            let new_second = set.iter().nth(1).copied();
            if layout.slots[si].track_clash && old_second != new_second {
                if let Some(s) = old_second {
                    slot.clashes.remove(&s);
                }
                if let Some(s) = new_second {
                    slot.clashes.insert(s, tuple.into());
                }
            }
            became_absent = set.is_empty();
            if became_absent {
                slot.carriers.remove(tuple);
            }
        }
        if became_absent {
            self.notify_presence(layout, si, tuple, false);
        }
    }

    /// Re-files the sources carrying `tuple` when its target-slot presence
    /// flips (the 0 ↔ 1 multiset transitions the dangling sets hinge on).
    fn notify_presence(
        &mut self,
        layout: &IncrementalLayout,
        si: usize,
        tuple: &[ValueId],
        present: bool,
    ) {
        for &qi in &layout.slots[si].watchers {
            let SourceData {
                by_tuple, dangling, ..
            } = &mut self.sources[qi];
            if let Some(nodes) = by_tuple.get(tuple) {
                for &n in nodes {
                    if present {
                        dangling.remove(&n);
                    } else {
                        dangling.insert(n);
                    }
                }
            }
        }
    }

    fn add_source(
        &mut self,
        layout: &IncrementalLayout,
        qi: usize,
        tuple: Option<&[ValueId]>,
        node: NodeId,
    ) {
        match tuple {
            None => {
                self.sources[qi].missing.insert(node);
            }
            Some(t) => {
                let target = layout.sources[qi].target;
                let present = self.slots[target].carriers.contains_key(t);
                let src = &mut self.sources[qi];
                match src.by_tuple.get_mut(t) {
                    Some(set) => {
                        set.insert(node);
                    }
                    None => {
                        src.by_tuple.entry(t.into()).or_default().insert(node);
                    }
                }
                if !present {
                    src.dangling.insert(node);
                }
            }
        }
    }

    fn remove_source(
        &mut self,
        _layout: &IncrementalLayout,
        qi: usize,
        tuple: Option<&[ValueId]>,
        node: NodeId,
    ) {
        let src = &mut self.sources[qi];
        match tuple {
            None => {
                src.missing.remove(&node);
            }
            Some(t) => {
                if let Some(set) = src.by_tuple.get_mut(t) {
                    set.remove(&node);
                    if set.is_empty() {
                        src.by_tuple.remove(t);
                    }
                }
                src.dangling.remove(&node);
            }
        }
    }

    fn mark_dirty_ty(&mut self, layout: &IncrementalLayout, ty: ElemId) {
        if let Some(list) = layout.checks_of_ty.get(&ty) {
            for &i in list {
                if !self.dirty_flags[i] {
                    self.dirty_flags[i] = true;
                    self.dirty.push(i);
                }
            }
        }
    }

    fn mark_dirty_attr(&mut self, layout: &IncrementalLayout, ty: ElemId, attr: AttrId) {
        if let Some(list) = layout.checks_of_attr.get(&(ty, attr)) {
            for &i in list {
                if !self.dirty_flags[i] {
                    self.dirty_flags[i] = true;
                    self.dirty.push(i);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Verdict extraction
    // ------------------------------------------------------------------

    /// `T ⊨ Σ`: every violation, in Σ order — identical (violations,
    /// witnesses and all) to a from-scratch [`crate::DocIndex`] rebuild on
    /// the current tree.  Only dirty constraints are recomputed.
    pub fn check_all(&mut self, tree: &XmlTree) -> Vec<Violation> {
        self.check_all_where(tree, |_| true)
    }

    /// Shard-scoped verdict extraction: dirty constraints satisfying `keep`
    /// are recomputed (and counted as rechecked); the rest are *dropped* —
    /// their cached verdict is cleared, not refreshed — so out-of-scope
    /// constraints never surface in the report.  Only meaningful when the
    /// scope is fixed for the index's lifetime (a dropped verdict is not
    /// recoverable without re-dirtying); [`IncrementalIndex::check_all`] is
    /// the `keep = always` case.
    pub fn check_all_where(
        &mut self,
        tree: &XmlTree,
        mut keep: impl FnMut(usize) -> bool,
    ) -> Vec<Violation> {
        let dirty = std::mem::take(&mut self.dirty);
        self.rechecked = 0;
        for i in dirty {
            self.dirty_flags[i] = false;
            if keep(i) {
                self.rechecked += 1;
                self.cache[i] = self.violation_of(i, tree);
            } else {
                self.cache[i] = None;
            }
        }
        instruments().2.add(self.rechecked as u64);
        self.cache.iter().flatten().cloned().collect()
    }

    /// `T ⊨ Σ` as a boolean.
    pub fn satisfies_all(&mut self, tree: &XmlTree) -> bool {
        self.check_all(tree).is_empty()
    }

    fn violation_of(&self, idx: usize, tree: &XmlTree) -> Option<Violation> {
        let (check, rendered) = &self.layout.checks[idx];
        match *check {
            Check::Key { slot } => self.key_violation(slot, rendered, tree),
            Check::NotKey { slot } => match self.key_clash(slot) {
                Some(_) => None,
                None => Some(Violation::NegationUnsatisfied {
                    constraint: rendered.clone(),
                }),
            },
            Check::Inclusion { source } => self.inclusion_violation(source, rendered, tree),
            Check::NotInclusion { source } => {
                if self.first_bad_source(source).is_none() {
                    Some(Violation::NegationUnsatisfied {
                        constraint: rendered.clone(),
                    })
                } else {
                    None
                }
            }
            Check::ForeignKey { slot, source } => self
                .key_violation(slot, rendered, tree)
                .or_else(|| self.inclusion_violation(source, rendered, tree)),
        }
    }

    /// The first clash of a key slot: `(first carrier, second occurrence,
    /// shared tuple)`, exactly as a full [`crate::DocIndex`] scan reports it.
    fn key_clash(&self, si: usize) -> Option<(NodeId, NodeId, &[ValueId])> {
        let slot = &self.slots[si];
        debug_assert!(
            self.layout.slots[si].track_clash,
            "clash read on a non-key slot"
        );
        let (&second, tuple) = slot.clashes.first_key_value()?;
        let first = *slot
            .carriers
            .get(tuple.as_ref())
            .and_then(|set| set.first())
            .expect("clash entries always name live tuples");
        Some((first, second, tuple))
    }

    fn key_violation(&self, si: usize, rendered: &str, tree: &XmlTree) -> Option<Violation> {
        self.key_clash(si)
            .map(|(first, second, tuple)| Violation::KeyViolation {
                constraint: rendered.to_string(),
                witnesses: (first, second),
                values: resolve_tuple(tree, tuple),
            })
    }

    /// The traversal-order first violating source: missing attributes or
    /// dangling tuple, whichever node comes first.
    fn first_bad_source(&self, qi: usize) -> Option<(NodeId, bool)> {
        let src = &self.sources[qi];
        let missing = src.missing.first().copied();
        let dangling = src.dangling.first().copied();
        match (missing, dangling) {
            (None, None) => None,
            (Some(m), None) => Some((m, true)),
            (None, Some(d)) => Some((d, false)),
            (Some(m), Some(d)) => {
                if m < d {
                    Some((m, true))
                } else {
                    Some((d, false))
                }
            }
        }
    }

    fn inclusion_violation(&self, qi: usize, rendered: &str, tree: &XmlTree) -> Option<Violation> {
        let (witness, is_missing) = self.first_bad_source(qi)?;
        if is_missing {
            return Some(Violation::MissingAttributes {
                constraint: rendered.to_string(),
                witness,
            });
        }
        let tuple = tuple_of(tree, witness, &self.layout.sources[qi].from_attrs)
            .expect("dangling sources carry a full tuple");
        Some(Violation::InclusionViolation {
            constraint: rendered.to_string(),
            witness,
            values: resolve_tuple(tree, &tuple),
        })
    }
}

/// Registers (or reuses) the slot for `(τ, X̄)`; `clash` upgrades it to a
/// key slot (clash bookkeeping on top of the carrier map).
fn slot_index(slots: &mut Vec<SlotSpec>, ty: ElemId, attrs: &[AttrId], clash: bool) -> usize {
    if let Some(i) = slots.iter().position(|s| s.ty == ty && s.attrs == attrs) {
        slots[i].track_clash |= clash;
        return i;
    }
    slots.push(SlotSpec {
        ty,
        attrs: attrs.to_vec(),
        track_clash: clash,
        watchers: Vec::new(),
    });
    slots.len() - 1
}

/// Registers (or reuses) the source descriptor of an inclusion constraint;
/// the target slot is a key slot for foreign keys (its carrier map doubles
/// as the target multiset) and a plain slot otherwise.
fn source_index(
    sources: &mut Vec<SourceSpec>,
    slots: &mut Vec<SlotSpec>,
    i: &InclusionSpec,
) -> usize {
    let target = slot_index(slots, i.to_ty, &i.to_attrs, false);
    if let Some(q) = sources
        .iter()
        .position(|s| s.from_ty == i.from_ty && s.from_attrs == i.from_attrs && s.target == target)
    {
        return q;
    }
    sources.push(SourceSpec {
        from_ty: i.from_ty,
        from_attrs: i.from_attrs.clone(),
        target,
    });
    sources.len() - 1
}

/// The interned tuple `x[X̄]`, or `None` if any attribute is missing.
fn tuple_of(tree: &XmlTree, node: NodeId, attrs: &[AttrId]) -> Option<Vec<ValueId>> {
    attrs.iter().map(|&a| tree.attr_value_id(node, a)).collect()
}

/// The tuple the element carried *before* a `SetAttr` on `changed`: the
/// current values everywhere except `changed`, which reads the displaced
/// value (`None` if the attribute did not exist).
fn tuple_with_displaced(
    tree: &XmlTree,
    node: NodeId,
    attrs: &[AttrId],
    changed: AttrId,
    displaced: Option<ValueId>,
) -> Option<Vec<ValueId>> {
    attrs
        .iter()
        .map(|&a| {
            if a == changed {
                displaced
            } else {
                tree.attr_value_id(node, a)
            }
        })
        .collect()
}

fn resolve_tuple(tree: &XmlTree, tuple: &[ValueId]) -> Vec<String> {
    tuple
        .iter()
        .map(|&id| tree.resolve(id).to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::example_sigma1;
    use crate::index::DocIndex;
    use crate::satisfy::IndexPlan;
    use xic_dtd::example_d1;
    use xic_xml::EditOp;

    fn rebuild(dtd: &Dtd, sigma: &ConstraintSet, tree: &XmlTree) -> Vec<Violation> {
        let plan = IndexPlan::for_set(sigma);
        DocIndex::build(dtd, tree, &plan).check_all(sigma)
    }

    /// Drives one op through tree + index and asserts verdict identity with
    /// a from-scratch rebuild.
    fn step(
        dtd: &Dtd,
        sigma: &ConstraintSet,
        tree: &mut XmlTree,
        index: &mut IncrementalIndex,
        op: &EditOp,
    ) -> Vec<Violation> {
        let effect = tree.apply_edit(op).expect("valid op");
        index.apply(tree, &effect);
        let fast = index.check_all(tree);
        assert_eq!(fast, rebuild(dtd, sigma, tree), "after {op:?}");
        fast
    }

    /// Like [`step`], but returns the node the op created.
    fn step_add(
        dtd: &Dtd,
        sigma: &ConstraintSet,
        tree: &mut XmlTree,
        index: &mut IncrementalIndex,
        parent: NodeId,
        ty: ElemId,
    ) -> NodeId {
        let effect = tree
            .apply_edit(&EditOp::AddElement { parent, ty })
            .expect("valid op");
        let EditEffect::ElementAdded { element, .. } = effect else {
            unreachable!()
        };
        index.apply(tree, &effect);
        assert_eq!(index.check_all(tree), rebuild(dtd, sigma, tree));
        element
    }

    #[test]
    fn shard_plan_splits_touch_graph_components() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        use crate::constraint::Constraint;

        // The foreign key bridges both key slots: one component.
        let sigma1 = example_sigma1(&d1);
        let layout = IncrementalLayout::new(&d1, &sigma1);
        let plan = ShardPlan::of_layout(&layout);
        assert_eq!(plan.num_shards(), 1);
        assert_eq!(plan.num_checks(), 3);
        assert_eq!(plan.checks_of_shard(0), &[0, 1, 2]);

        // Without the bridge the two keys touch disjoint slots: two
        // components, numbered in Σ order.
        let split = ConstraintSet::from_vec(vec![
            Constraint::unary_key(teacher, name),
            Constraint::unary_key(subject, taught_by),
        ]);
        let layout = IncrementalLayout::new(&d1, &split);
        let plan = ShardPlan::of_layout(&layout);
        assert_eq!(plan.num_shards(), 2);
        assert_eq!(plan.shard_of_check(0), 0);
        assert_eq!(plan.shard_of_check(1), 1);
        let rendered = split.as_slice()[1].render(&d1);
        assert_eq!(plan.shard_of_rendered(&rendered), Some(1));
        assert_eq!(plan.shard_of_rendered("no such constraint"), None);
        assert_eq!(plan.all_shards().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn scoped_check_drops_out_of_scope_verdicts_and_counts_kept_only() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        use crate::constraint::Constraint;
        let sigma = ConstraintSet::from_vec(vec![
            Constraint::unary_key(teacher, name),
            Constraint::unary_key(subject, taught_by),
        ]);

        // Two teachers with the same name and two subjects taught by the
        // same teacher: both keys are violated.
        let teachers = d1.type_by_name("teachers").unwrap();
        let mut tree = XmlTree::new(teachers);
        let root = tree.root();
        for _ in 0..2 {
            let t = tree
                .apply_edit(&EditOp::AddElement {
                    parent: root,
                    ty: teacher,
                })
                .map(|e| match e {
                    EditEffect::ElementAdded { element, .. } => element,
                    _ => unreachable!(),
                })
                .unwrap();
            tree.apply_edit(&EditOp::SetAttr {
                element: t,
                attr: name,
                value: "dupe".into(),
            })
            .unwrap();
            let s = tree
                .apply_edit(&EditOp::AddElement {
                    parent: t,
                    ty: subject,
                })
                .map(|e| match e {
                    EditEffect::ElementAdded { element, .. } => element,
                    _ => unreachable!(),
                })
                .unwrap();
            tree.apply_edit(&EditOp::SetAttr {
                element: s,
                attr: taught_by,
                value: "dupe".into(),
            })
            .unwrap();
        }

        let mut full = IncrementalIndex::build(&d1, &sigma, &tree);
        let all = full.check_all(&tree);
        assert_eq!(all.len(), 2);
        assert_eq!(full.rechecked(), 2);

        // Scoped to constraint 0 only: one recheck, and the out-of-scope
        // subject-key violation never surfaces.
        let mut scoped = IncrementalIndex::build(&d1, &sigma, &tree);
        let kept = scoped.check_all_where(&tree, |i| i == 0);
        assert_eq!(scoped.rechecked(), 1);
        assert_eq!(kept, vec![all[0].clone()]);
    }

    #[test]
    fn edits_track_the_paper_example() {
        let d1 = example_d1();
        let sigma1 = example_sigma1(&d1);
        let teachers = d1.type_by_name("teachers").unwrap();
        let teacher = d1.type_by_name("teacher").unwrap();
        let teach = d1.type_by_name("teach").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();

        let mut tree = XmlTree::new(teachers);
        let mut index = IncrementalIndex::build(&d1, &sigma1, &tree);
        assert_eq!(index.check_all(&tree), rebuild(&d1, &sigma1, &tree));

        // Grow two teachers that clash on name, watching every prefix.
        let mut last = Vec::new();
        let mut teacher_nodes = Vec::new();
        for n in ["Joe", "Joe"] {
            let root = tree.root();
            let element = step_add(&d1, &sigma1, &mut tree, &mut index, root, teacher);
            teacher_nodes.push(element);
            last = step(
                &d1,
                &sigma1,
                &mut tree,
                &mut index,
                &EditOp::SetAttr {
                    element,
                    attr: name,
                    value: n.into(),
                },
            );
        }
        assert!(last
            .iter()
            .any(|v| matches!(v, Violation::KeyViolation { .. })));

        // Renaming the second teacher clears the key clash.
        let last = step(
            &d1,
            &sigma1,
            &mut tree,
            &mut index,
            &EditOp::SetAttr {
                element: teacher_nodes[1],
                attr: name,
                value: "Ann".into(),
            },
        );
        assert!(!last.iter().any(
            |v| matches!(v, Violation::KeyViolation { constraint, .. } if constraint.contains("teacher.name"))
        ));

        // A subject taught by nobody dangles; pointing it at Ann heals it;
        // removing Ann's subtree re-breaks it.
        let th = step_add(&d1, &sigma1, &mut tree, &mut index, teacher_nodes[0], teach);
        step(
            &d1,
            &sigma1,
            &mut tree,
            &mut index,
            &EditOp::AddText {
                parent: th,
                value: "x".into(),
            },
        );
        let sub = step_add(&d1, &sigma1, &mut tree, &mut index, th, subject);
        let last = step(
            &d1,
            &sigma1,
            &mut tree,
            &mut index,
            &EditOp::SetAttr {
                element: sub,
                attr: taught_by,
                value: "Bob".into(),
            },
        );
        assert!(last
            .iter()
            .any(|v| matches!(v, Violation::InclusionViolation { .. })));
        step(
            &d1,
            &sigma1,
            &mut tree,
            &mut index,
            &EditOp::SetAttr {
                element: sub,
                attr: taught_by,
                value: "Ann".into(),
            },
        );
        let last = step(
            &d1,
            &sigma1,
            &mut tree,
            &mut index,
            &EditOp::RemoveSubtree {
                element: teacher_nodes[1],
            },
        );
        assert!(last
            .iter()
            .any(|v| matches!(v, Violation::InclusionViolation { values, .. } if values == &vec!["Ann".to_string()])));
    }

    /// Multi-attribute slots: rewriting ONE attribute of a composite tuple
    /// goes through `tuple_with_displaced` (old tuple = displaced value +
    /// unchanged neighbours) — every step is checked against a rebuild.
    #[test]
    fn multiattribute_edits_agree_with_rebuild() {
        let d3 = xic_dtd::example_d3();
        let sigma3 = crate::classes::example_sigma3(&d3);
        let school = d3.type_by_name("school").unwrap();
        let course = d3.type_by_name("course").unwrap();
        let enroll = d3.type_by_name("enroll").unwrap();
        let dept = d3.attr_by_name("dept").unwrap();
        let course_no = d3.attr_by_name("course_no").unwrap();
        let student_id = d3.attr_by_name("student_id").unwrap();

        let mut tree = XmlTree::new(school);
        let mut index = IncrementalIndex::build(&d3, &sigma3, &tree);
        assert_eq!(index.check_all(&tree), rebuild(&d3, &sigma3, &tree));

        // Two courses sharing a course number in different departments: the
        // composite key (dept, course_no) holds.
        let mut courses = Vec::new();
        for (d, n) in [("cs", "101"), ("math", "101")] {
            let root = tree.root();
            let c = step_add(&d3, &sigma3, &mut tree, &mut index, root, course);
            courses.push(c);
            for (attr, value) in [(dept, d), (course_no, n)] {
                step(
                    &d3,
                    &sigma3,
                    &mut tree,
                    &mut index,
                    &EditOp::SetAttr {
                        element: c,
                        attr,
                        value: value.into(),
                    },
                );
            }
        }
        // Rewriting ONE component (math → cs) collides the whole tuple.
        let last = step(
            &d3,
            &sigma3,
            &mut tree,
            &mut index,
            &EditOp::SetAttr {
                element: courses[1],
                attr: dept,
                value: "cs".into(),
            },
        );
        assert!(last
            .iter()
            .any(|v| matches!(v, Violation::KeyViolation { values, .. }
                if values == &vec!["cs".to_string(), "101".to_string()])));

        // An enrolment referencing (cs, 101) through the composite foreign
        // key: healthy, until the referenced component is renamed away.
        let root = tree.root();
        let en = step_add(&d3, &sigma3, &mut tree, &mut index, root, enroll);
        for (attr, value) in [(student_id, "s1"), (dept, "cs"), (course_no, "101")] {
            step(
                &d3,
                &sigma3,
                &mut tree,
                &mut index,
                &EditOp::SetAttr {
                    element: en,
                    attr,
                    value: value.into(),
                },
            );
        }
        for (i, c) in courses.iter().enumerate() {
            let last = step(
                &d3,
                &sigma3,
                &mut tree,
                &mut index,
                &EditOp::SetAttr {
                    element: *c,
                    attr: course_no,
                    value: format!("90{i}"),
                },
            );
            if i == courses.len() - 1 {
                assert!(last
                    .iter()
                    .any(|v| matches!(v, Violation::InclusionViolation { .. })));
            }
        }
    }

    #[test]
    fn dirty_set_is_proportional_to_the_edit() {
        let d1 = example_d1();
        let sigma1 = example_sigma1(&d1);
        let teachers = d1.type_by_name("teachers").unwrap();
        let teacher = d1.type_by_name("teacher").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let mut tree = XmlTree::new(teachers);
        let te = tree.add_element(tree.root(), teacher);
        tree.set_attr(te, name, "Joe");
        let mut index = IncrementalIndex::build(&d1, &sigma1, &tree);
        index.check_all(&tree);
        assert_eq!(index.rechecked(), sigma1.len());

        // teacher.name touches the teacher key and the foreign key's target
        // side, but not the subject key.
        let effect = tree
            .apply_edit(&EditOp::SetAttr {
                element: te,
                attr: name,
                value: "Ann".into(),
            })
            .unwrap();
        index.apply(&tree, &effect);
        assert!(index.pending() < sigma1.len());
        index.check_all(&tree);
        assert!(index.rechecked() < sigma1.len());

        // A clean verdict re-read recomputes nothing.
        index.check_all(&tree);
        assert_eq!(index.rechecked(), 0);
    }

    /// One layout, many documents: indexes populated through a shared
    /// [`IncrementalLayout`] are verdict-identical to standalone builds, and
    /// the layout is derived exactly once (same `Arc` across documents).
    #[test]
    fn one_layout_serves_many_documents() {
        let d1 = example_d1();
        let sigma1 = example_sigma1(&d1);
        let teachers = d1.type_by_name("teachers").unwrap();
        let teacher = d1.type_by_name("teacher").unwrap();
        let name = d1.attr_by_name("name").unwrap();

        let layout = Arc::new(IncrementalLayout::new(&d1, &sigma1));
        assert_eq!(layout.num_checks(), sigma1.len());
        assert!(layout.num_slots() > 0);

        for names in [&["Joe", "Ann"][..], &["Joe", "Joe"][..], &[][..]] {
            let mut tree = XmlTree::new(teachers);
            for n in names {
                let te = tree.add_element(tree.root(), teacher);
                tree.set_attr(te, name, n);
            }
            let mut shared = IncrementalIndex::with_layout(Arc::clone(&layout), &tree);
            let mut standalone = IncrementalIndex::build(&d1, &sigma1, &tree);
            assert_eq!(shared.check_all(&tree), standalone.check_all(&tree));
            assert_eq!(shared.check_all(&tree), rebuild(&d1, &sigma1, &tree));
            assert!(Arc::ptr_eq(shared.layout(), &layout));
        }
        // Two docs open at once still share the one layout allocation.
        assert_eq!(Arc::strong_count(&layout), 1);
    }
}
