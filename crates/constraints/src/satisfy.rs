//! Constraint satisfaction over XML trees (the `T ⊨ φ` relation of
//! Section 2.2).
//!
//! Two notions of equality are used, exactly as in the paper: string-value
//! equality when comparing attribute values, node identity when comparing
//! elements.  Satisfaction is checked with hash indexes over the attribute
//! tuples of each element type, so checking Σ over a document is linear in
//! the document for unary constraints.

use std::collections::{HashMap, HashSet};

use xic_dtd::{AttrId, Dtd, ElemId};
use xic_xml::{NodeId, XmlTree};

use crate::classes::ConstraintSet;
use crate::constraint::{Constraint, InclusionSpec, KeySpec};

/// The reason a constraint is violated by a document, with witness nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two distinct elements agree on the key attributes.
    KeyViolation {
        /// Rendered constraint.
        constraint: String,
        /// The two offending element nodes.
        witnesses: (NodeId, NodeId),
        /// The shared attribute-value tuple.
        values: Vec<String>,
    },
    /// An element's attribute tuple matches no target element.
    InclusionViolation {
        /// Rendered constraint.
        constraint: String,
        /// The dangling referencing element.
        witness: NodeId,
        /// Its attribute-value tuple.
        values: Vec<String>,
    },
    /// An element is missing one of the attributes the constraint mentions
    /// (can only happen on documents that do not conform to the DTD).
    MissingAttributes {
        /// Rendered constraint.
        constraint: String,
        /// The offending element.
        witness: NodeId,
    },
    /// A negated constraint holds nowhere in the document (i.e. the positive
    /// constraint is satisfied, contradicting the negation).
    NegationUnsatisfied {
        /// Rendered constraint.
        constraint: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::KeyViolation { constraint, witnesses, values } => write!(
                f,
                "key violation of `{constraint}`: nodes #{} and #{} share [{}]",
                witnesses.0.index(),
                witnesses.1.index(),
                values.join(", ")
            ),
            Violation::InclusionViolation { constraint, witness, values } => write!(
                f,
                "inclusion violation of `{constraint}`: node #{} references [{}] which no target provides",
                witness.index(),
                values.join(", ")
            ),
            Violation::MissingAttributes { constraint, witness } => write!(
                f,
                "node #{} is missing attributes mentioned by `{constraint}`",
                witness.index()
            ),
            Violation::NegationUnsatisfied { constraint } => {
                write!(f, "negated constraint `{constraint}` holds nowhere in the document")
            }
        }
    }
}

impl Violation {
    /// Rendered constraint the violation refers to.
    pub fn constraint(&self) -> &str {
        match self {
            Violation::KeyViolation { constraint, .. }
            | Violation::InclusionViolation { constraint, .. }
            | Violation::MissingAttributes { constraint, .. }
            | Violation::NegationUnsatisfied { constraint } => constraint,
        }
    }
}

/// The retained **reference** satisfaction checker: string-valued tuples,
/// lazily built per-(type, attribute-list) indexes.
///
/// The production path is [`crate::DocIndex`], which interns values and
/// builds every index in one pass; this checker keeps the seed algorithm
/// alive as the differential-testing baseline (`tests/docindex_agreement`)
/// and as the ad-hoc single-constraint checker used by the witness search.
/// Its caches hand out borrows — not clones — of their entries.
pub struct SatisfactionChecker<'a> {
    dtd: &'a Dtd,
    tree: &'a XmlTree,
    ext_cache: HashMap<ElemId, Vec<NodeId>>,
    tuple_cache: HashMap<(ElemId, Vec<AttrId>), HashSet<Vec<String>>>,
}

/// The extension lists, key slots and tuple indexes that checking a fixed
/// constraint set will consult, computed once per specification so that
/// per-document indexes ([`crate::DocIndex`], or the reference checker's
/// [`SatisfactionChecker::prewarm`]) can be built in a single pass over the
/// tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexPlan {
    ext_types: Vec<ElemId>,
    key_slots: Vec<(ElemId, Vec<AttrId>)>,
    tuple_slots: Vec<(ElemId, Vec<AttrId>)>,
}

impl IndexPlan {
    /// Derives the plan for a constraint set: which `ext(τ)` lists, which
    /// key slots `(τ, X̄)` and which `(τ, X̄)` tuple sets its satisfaction
    /// check touches.
    pub fn for_set(sigma: &ConstraintSet) -> IndexPlan {
        let mut ext_types = Vec::new();
        let mut key_slots: Vec<(ElemId, Vec<AttrId>)> = Vec::new();
        let mut tuple_slots: Vec<(ElemId, Vec<AttrId>)> = Vec::new();
        let push_ext = |v: &mut Vec<ElemId>, ty: ElemId| {
            if !v.contains(&ty) {
                v.push(ty);
            }
        };
        let push_slot = |v: &mut Vec<(ElemId, Vec<AttrId>)>, ty: ElemId, attrs: &[AttrId]| {
            if !v.iter().any(|(t, a)| *t == ty && a == attrs) {
                v.push((ty, attrs.to_vec()));
            }
        };
        for c in sigma.iter() {
            match c {
                Constraint::Key(k) | Constraint::NotKey(k) => {
                    push_ext(&mut ext_types, k.ty);
                    push_slot(&mut key_slots, k.ty, &k.attrs);
                }
                Constraint::Inclusion(i) | Constraint::NotInclusion(i) => {
                    push_ext(&mut ext_types, i.from_ty);
                    push_ext(&mut ext_types, i.to_ty);
                    push_slot(&mut tuple_slots, i.to_ty, &i.to_attrs);
                }
                Constraint::ForeignKey(i) => {
                    push_ext(&mut ext_types, i.from_ty);
                    push_ext(&mut ext_types, i.to_ty);
                    // The key slot's tuple → first-carrier map already holds
                    // exactly the target tuple set, so a separate tuple slot
                    // would double the build work; inclusion checks probe
                    // the key slot instead (see `DocIndex`).
                    push_slot(&mut key_slots, i.to_ty, &i.to_attrs);
                }
            }
        }
        IndexPlan {
            ext_types,
            key_slots,
            tuple_slots,
        }
    }

    /// The element types whose extensions the check reads.
    pub fn ext_types(&self) -> &[ElemId] {
        &self.ext_types
    }

    /// The key slots `(τ, X̄)` the check probes for clashes.
    pub fn key_slots(&self) -> &[(ElemId, Vec<AttrId>)] {
        &self.key_slots
    }

    /// The `(τ, X̄)` tuple indexes the check reads.
    pub fn tuple_slots(&self) -> &[(ElemId, Vec<AttrId>)] {
        &self.tuple_slots
    }
}

impl<'a> SatisfactionChecker<'a> {
    /// Creates a checker for one document.
    pub fn new(dtd: &'a Dtd, tree: &'a XmlTree) -> SatisfactionChecker<'a> {
        SatisfactionChecker {
            dtd,
            tree,
            ext_cache: HashMap::new(),
            tuple_cache: HashMap::new(),
        }
    }

    /// Builds every index named by `plan` in one document-order pass over the
    /// tree, instead of one full traversal per `ext(τ)` the lazy path pays.
    pub fn prewarm(&mut self, plan: &IndexPlan) {
        let tree = self.tree;
        let mut lists: HashMap<ElemId, Vec<NodeId>> =
            plan.ext_types.iter().map(|&ty| (ty, Vec::new())).collect();
        for node in tree.elements() {
            if let Some(ty) = tree.element_type(node) {
                if let Some(list) = lists.get_mut(&ty) {
                    list.push(node);
                }
            }
        }
        self.ext_cache.extend(lists);
        for (ty, attrs) in &plan.tuple_slots {
            tuples_entry(&mut self.tuple_cache, &mut self.ext_cache, tree, *ty, attrs);
        }
    }

    /// Checks a single constraint, returning its violation if any.
    pub fn check(&mut self, constraint: &Constraint) -> Option<Violation> {
        match constraint {
            Constraint::Key(k) => self.check_key(k, constraint),
            Constraint::Inclusion(i) => self.check_inclusion(i, constraint),
            Constraint::ForeignKey(i) => {
                let key = KeySpec::new(i.to_ty, i.to_attrs.clone());
                self.check_key(&key, constraint)
                    .or_else(|| self.check_inclusion(i, constraint))
            }
            Constraint::NotKey(k) => {
                if self.key_holds(k).is_some() {
                    // The key is violated somewhere, so its negation holds.
                    None
                } else {
                    Some(Violation::NegationUnsatisfied {
                        constraint: constraint.render(self.dtd),
                    })
                }
            }
            Constraint::NotInclusion(i) => {
                if self.inclusion_holds(i) {
                    Some(Violation::NegationUnsatisfied {
                        constraint: constraint.render(self.dtd),
                    })
                } else {
                    None
                }
            }
        }
    }

    /// `T ⊨ φ`.
    pub fn satisfies(&mut self, constraint: &Constraint) -> bool {
        self.check(constraint).is_none()
    }

    /// `T ⊨ Σ`: returns every violation.
    pub fn check_all(&mut self, sigma: &ConstraintSet) -> Vec<Violation> {
        sigma.iter().filter_map(|c| self.check(c)).collect()
    }

    /// `T ⊨ Σ` as a boolean.
    pub fn satisfies_all(&mut self, sigma: &ConstraintSet) -> bool {
        sigma.iter().all(|c| self.check(c).is_none())
    }

    /// Returns `None` if the key holds, or a violation describing the first
    /// pair of clashing elements.
    fn key_holds(&mut self, k: &KeySpec) -> Option<Violation> {
        let tree = self.tree;
        let nodes = ext_entry(&mut self.ext_cache, tree, k.ty);
        let mut seen: HashMap<Vec<String>, NodeId> = HashMap::new();
        for &n in nodes {
            let Some(values) = tree.attr_values(n, &k.attrs) else {
                // Elements missing an attribute cannot clash (the conjunction
                // of equalities in the key definition is vacuously false), so
                // they are skipped; validity against the DTD is checked
                // separately.
                continue;
            };
            if let Some(&prev) = seen.get(&values) {
                return Some(Violation::KeyViolation {
                    constraint: Constraint::Key(k.clone()).render(self.dtd),
                    witnesses: (prev, n),
                    values,
                });
            }
            seen.insert(values, n);
        }
        None
    }

    fn check_key(&mut self, k: &KeySpec, original: &Constraint) -> Option<Violation> {
        match self.key_holds(k) {
            Some(Violation::KeyViolation {
                witnesses, values, ..
            }) => Some(Violation::KeyViolation {
                constraint: original.render(self.dtd),
                witnesses,
                values,
            }),
            other => other,
        }
    }

    fn inclusion_holds(&mut self, i: &InclusionSpec) -> bool {
        self.first_inclusion_violation(i).is_none()
    }

    fn first_inclusion_violation(
        &mut self,
        i: &InclusionSpec,
    ) -> Option<(NodeId, Option<Vec<String>>)> {
        let tree = self.tree;
        // Split borrows: the target set borrows `tuple_cache`, the source
        // list borrows `ext_cache` — disjoint fields, no cloning.
        let targets = tuples_entry(
            &mut self.tuple_cache,
            &mut self.ext_cache,
            tree,
            i.to_ty,
            &i.to_attrs,
        );
        let sources = ext_entry(&mut self.ext_cache, tree, i.from_ty);
        for &n in sources {
            match tree.attr_values(n, &i.from_attrs) {
                None => return Some((n, None)),
                Some(values) => {
                    if !targets.contains(&values) {
                        return Some((n, Some(values)));
                    }
                }
            }
        }
        None
    }

    fn check_inclusion(&mut self, i: &InclusionSpec, original: &Constraint) -> Option<Violation> {
        match self.first_inclusion_violation(i) {
            None => None,
            Some((witness, None)) => Some(Violation::MissingAttributes {
                constraint: original.render(self.dtd),
                witness,
            }),
            Some((witness, Some(values))) => Some(Violation::InclusionViolation {
                constraint: original.render(self.dtd),
                witness,
                values,
            }),
        }
    }
}

/// The `ext(τ)` cache entry, computed on first use.  A free function over
/// the cache field so callers can keep borrowing the tree alongside it.
fn ext_entry<'c>(
    ext_cache: &'c mut HashMap<ElemId, Vec<NodeId>>,
    tree: &XmlTree,
    ty: ElemId,
) -> &'c [NodeId] {
    ext_cache
        .entry(ty)
        .or_insert_with(|| tree.ext(ty).collect())
}

/// The `(τ, X̄)` tuple-set cache entry, computed on first use.  The returned
/// borrow is tied to `tuple_cache` only, so the caller may re-borrow
/// `ext_cache` while holding it.
fn tuples_entry<'c>(
    tuple_cache: &'c mut HashMap<(ElemId, Vec<AttrId>), HashSet<Vec<String>>>,
    ext_cache: &mut HashMap<ElemId, Vec<NodeId>>,
    tree: &XmlTree,
    ty: ElemId,
    attrs: &[AttrId],
) -> &'c HashSet<Vec<String>> {
    match tuple_cache.entry((ty, attrs.to_vec())) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(e) => {
            let nodes = ext_entry(ext_cache, tree, ty);
            let set: HashSet<Vec<String>> = nodes
                .iter()
                .filter_map(|&n| tree.attr_values(n, attrs))
                .collect();
            e.insert(set)
        }
    }
}

/// One-shot check of a full constraint set against a document, through the
/// interned-value [`crate::DocIndex`] fast path.
pub fn check_document(dtd: &Dtd, tree: &XmlTree, sigma: &ConstraintSet) -> Vec<Violation> {
    let plan = IndexPlan::for_set(sigma);
    crate::index::DocIndex::build(dtd, tree, &plan).check_all(sigma)
}

/// One-shot `T ⊨ Σ`.
pub fn document_satisfies(dtd: &Dtd, tree: &XmlTree, sigma: &ConstraintSet) -> bool {
    let plan = IndexPlan::for_set(sigma);
    crate::index::DocIndex::build(dtd, tree, &plan).satisfies_all(sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{example_sigma1, example_sigma3};
    use xic_dtd::{example_d1, example_d3};

    /// The Figure 1 tree: both teachers named "Joe", every subject taught_by
    /// "Joe".  It conforms to D1 but violates subject.taught_by → subject.
    fn figure1(dtd: &Dtd) -> XmlTree {
        let teachers = dtd.type_by_name("teachers").unwrap();
        let teacher = dtd.type_by_name("teacher").unwrap();
        let teach = dtd.type_by_name("teach").unwrap();
        let research = dtd.type_by_name("research").unwrap();
        let subject = dtd.type_by_name("subject").unwrap();
        let name = dtd.attr_by_name("name").unwrap();
        let taught_by = dtd.attr_by_name("taught_by").unwrap();
        let mut t = XmlTree::new(teachers);
        for teacher_name in ["Joe", "Joe"] {
            let te = t.add_element(t.root(), teacher);
            t.set_attr(te, name, teacher_name);
            let th = t.add_element(te, teach);
            for s in ["XML", "DB"] {
                let sn = t.add_element(th, subject);
                t.set_attr(sn, taught_by, teacher_name);
                t.add_text(sn, s);
            }
            let r = t.add_element(te, research);
            t.add_text(r, "Web DB");
        }
        t
    }

    #[test]
    fn figure1_violates_sigma1() {
        let d1 = example_d1();
        let t = figure1(&d1);
        let sigma1 = example_sigma1(&d1);
        let violations = check_document(&d1, &t, &sigma1);
        assert!(!violations.is_empty());
        // Both keys are violated (duplicate "Joe" teachers, duplicate
        // taught_by values among subjects).
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::KeyViolation { .. })));
        assert!(!document_satisfies(&d1, &t, &sigma1));
    }

    #[test]
    fn distinct_names_satisfy_keys_but_not_card() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        // One teacher "Ann" teaching two subjects, each taught_by a distinct
        // value: the subject key holds, but the foreign key forces taught_by
        // values to be teacher names — only "Ann" exists, so one dangles.
        let teachers = d1.type_by_name("teachers").unwrap();
        let teach = d1.type_by_name("teach").unwrap();
        let research = d1.type_by_name("research").unwrap();
        let mut t = XmlTree::new(teachers);
        let te = t.add_element(t.root(), teacher);
        t.set_attr(te, name, "Ann");
        let th = t.add_element(te, teach);
        for (s, by) in [("XML", "Ann"), ("DB", "Bob")] {
            let sn = t.add_element(th, subject);
            t.set_attr(sn, taught_by, by);
            t.add_text(sn, s);
        }
        let r = t.add_element(te, research);
        t.add_text(r, "Web DB");

        let mut checker = SatisfactionChecker::new(&d1, &t);
        assert!(checker.satisfies(&Constraint::unary_key(teacher, name)));
        assert!(checker.satisfies(&Constraint::unary_key(subject, taught_by)));
        let fk = Constraint::unary_foreign_key(subject, taught_by, teacher, name);
        let v = checker.check(&fk).expect("dangling reference");
        assert!(
            matches!(v, Violation::InclusionViolation { values, .. } if values == vec!["Bob".to_string()])
        );
    }

    #[test]
    fn multiattribute_keys_on_d3() {
        let d3 = example_d3();
        let school = d3.type_by_name("school").unwrap();
        let course = d3.type_by_name("course").unwrap();
        let student = d3.type_by_name("student").unwrap();
        let enroll = d3.type_by_name("enroll").unwrap();
        let subject = d3.type_by_name("subject").unwrap();
        let name_ty = d3.type_by_name("name").unwrap();
        let dept = d3.attr_by_name("dept").unwrap();
        let course_no = d3.attr_by_name("course_no").unwrap();
        let student_id = d3.attr_by_name("student_id").unwrap();

        let mut t = XmlTree::new(school);
        // Two courses in different departments with the same course number:
        // fine for the multi-attribute key.
        for (d, n) in [("cs", "101"), ("math", "101")] {
            let c = t.add_element(t.root(), course);
            t.set_attr(c, dept, d);
            t.set_attr(c, course_no, n);
            let s = t.add_element(c, subject);
            t.add_text(s, "intro");
        }
        let st = t.add_element(t.root(), student);
        t.set_attr(st, student_id, "s1");
        let nm = t.add_element(st, name_ty);
        t.add_text(nm, "Ada");
        let en = t.add_element(t.root(), enroll);
        t.set_attr(en, student_id, "s1");
        t.set_attr(en, dept, "cs");
        t.set_attr(en, course_no, "101");
        t.add_text(en, "enrolled");

        let sigma3 = example_sigma3(&d3);
        let violations = check_document(&d3, &t, &sigma3);
        assert!(violations.is_empty(), "{violations:?}");

        // Now break the enroll foreign key by referencing a missing course.
        let mut t2 = t.clone();
        let en2 = t2.add_element(t2.root(), enroll);
        t2.set_attr(en2, student_id, "s1");
        t2.set_attr(en2, dept, "physics");
        t2.set_attr(en2, course_no, "999");
        t2.add_text(en2, "enrolled");
        let violations = check_document(&d3, &t2, &sigma3);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::InclusionViolation { .. })));
    }

    #[test]
    fn negated_constraints() {
        let d1 = example_d1();
        let t = figure1(&d1);
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        let mut checker = SatisfactionChecker::new(&d1, &t);
        // Both "Joe" teachers clash, so the negated key holds.
        assert!(checker.satisfies(&Constraint::not_unary_key(teacher, name)));
        // Every taught_by value equals some teacher name, so the negated
        // inclusion does NOT hold.
        assert!(!checker.satisfies(&Constraint::not_unary_inclusion(
            subject, taught_by, teacher, name
        )));
        // And the positive inclusion does hold.
        assert!(checker.satisfies(&Constraint::unary_inclusion(
            subject, taught_by, teacher, name
        )));
    }

    #[test]
    fn empty_ext_satisfies_keys_and_inclusions() {
        let d3 = example_d3();
        let school = d3.type_by_name("school").unwrap();
        let t = XmlTree::new(school);
        let sigma3 = example_sigma3(&d3);
        // With no courses/students/enrolls, every key and inclusion holds
        // vacuously.
        assert!(document_satisfies(&d3, &t, &sigma3));
    }

    #[test]
    fn violation_reports_carry_witnesses() {
        let d1 = example_d1();
        let t = figure1(&d1);
        let sigma1 = example_sigma1(&d1);
        let violations = check_document(&d1, &t, &sigma1);
        for v in &violations {
            assert!(!v.constraint().is_empty());
            if let Violation::KeyViolation {
                witnesses, values, ..
            } = v
            {
                assert_ne!(witnesses.0, witnesses.1);
                assert!(!values.is_empty());
            }
        }
    }
}
