//! # xic-constraints — XML integrity constraint languages and satisfaction
//!
//! Implements Section 2.2 of Fan & Libkin: keys `τ[X] → τ`, inclusion
//! constraints `τ1[X] ⊆ τ2[Y]`, foreign keys, their unary restrictions and
//! the negations used by the extended classes, together with the
//! satisfaction relation `T ⊨ φ` over `xic-xml` trees.
//!
//! * [`constraint`] — the constraint AST, validation against a DTD and
//!   rendering in the paper's notation;
//! * [`classes`] — the constraint classes (`C_{K,FK}`, `C^Unary_{K,FK}`,
//!   `C^Unary_{K¬,IC}`, `C^Unary_{K¬,IC¬}`, keys-only `C_K`), the
//!   primary-key restriction, and the paper's example sets Σ1 / Σ3;
//! * [`satisfy`] — the satisfaction relation, index planning and the
//!   retained string-valued reference checker;
//! * [`index`] — [`index::DocIndex`], the production one-shot `T ⊨ Σ` path:
//!   interned values, single-pass index construction, zero-alloc probing;
//! * [`incremental`] — [`incremental::IncrementalIndex`], the session path:
//!   the same answers maintained in O(edit) under typed tree edits
//!   (refcounted slot carrier maps, clash-witness ordering, inclusion
//!   target multisets, constraint dirty-sets), over a spec-level
//!   [`incremental::IncrementalLayout`] shared across every document opened
//!   against one `(D, Σ)`;
//! * [`parser`] — a plain-text surface syntax (`teacher.name -> teacher`,
//!   `subject.taught_by ⊆ teacher.name`, …) so constraint sets can live in
//!   files next to their DTDs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod classes;
pub mod constraint;
pub mod incremental;
pub mod index;
pub mod parser;
pub mod satisfy;

pub use classes::{example_sigma1, example_sigma3, ConstraintClass, ConstraintSet};
pub use constraint::{Constraint, ConstraintError, InclusionSpec, KeySpec};
pub use incremental::{IncrementalIndex, IncrementalLayout, ShardPlan};
pub use index::DocIndex;
pub use parser::{parse_constraint, parse_constraint_set, ParseError};
pub use satisfy::{check_document, document_satisfies, IndexPlan, SatisfactionChecker, Violation};
