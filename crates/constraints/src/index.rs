//! `DocIndex` — single-pass, interned-value indexes for `T ⊨ Σ`.
//!
//! The satisfaction relation of Section 2.2 only ever asks two questions of
//! a document: which elements have type `τ` (`ext(τ)`), and which attribute
//! tuples `x[X̄]` occur over them.  A [`DocIndex`] answers both from flat
//! structures built in **one pass** over the tree, driven by the
//! [`IndexPlan`] of the constraint set being checked:
//!
//! * one `Vec<NodeId>` per planned `ext(τ)`, filled in document order;
//! * one `HashMap<Box<[ValueId]>, NodeId>` per planned key slot `(τ, X̄)`,
//!   mapping each interned tuple to its first carrier — with the first
//!   clashing pair recorded on the way, so checking a key afterwards is O(1);
//! * one `HashSet<Box<[ValueId]>>` per planned inclusion target slot.
//!
//! Because values are interned ([`xic_xml::ValuePool`]), tuples are small
//! integer slices: probing allocates nothing (a caller-owned scratch buffer
//! is reused across nodes) and hashing touches no string bytes.  Violations
//! resolve their witness tuples back to strings only at construction, so
//! reporting stays string-based at the edges.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, OnceLock};

use xic_dtd::{AttrId, Dtd, ElemId};
use xic_telemetry::{Counter, Histogram};
use xic_xml::{NodeId, ValueId, XmlTree};

use crate::classes::ConstraintSet;
use crate::constraint::{Constraint, InclusionSpec, KeySpec};
use crate::satisfy::{IndexPlan, Violation};

/// A multiply-rotate hasher (FxHash-style) for the interned-tuple maps.
///
/// Tuple keys are short slices of `u32` symbols drawn from a dense pool, so
/// the DoS-resistant SipHash default is pure overhead on this hot path; a
/// two-instruction mix per word is both faster and well distributed here.
#[derive(Debug, Default, Clone)]
pub struct TupleHasher {
    hash: u64,
}

impl TupleHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for TupleHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type TupleMap<K, V> = HashMap<K, V, BuildHasherDefault<TupleHasher>>;
type TupleSet<K> = HashSet<K, BuildHasherDefault<TupleHasher>>;

/// A key slot `(τ, X̄)`: the tuple → first-carrier map and the first clash.
#[derive(Debug)]
struct KeySlot {
    ty: ElemId,
    attrs: Vec<AttrId>,
    /// Each distinct interned tuple, mapped to the first element carrying it.
    index: TupleMap<Box<[ValueId]>, NodeId>,
    /// The first (in document order) pair of distinct elements agreeing on
    /// the tuple, with the shared tuple.
    clash: Option<(NodeId, NodeId, Box<[ValueId]>)>,
}

/// An inclusion target slot `(τ, X̄)`: the set of interned tuples provided.
#[derive(Debug)]
struct TupleSlot {
    ty: ElemId,
    attrs: Vec<AttrId>,
    set: TupleSet<Box<[ValueId]>>,
}

/// Precomputed per-document indexes for checking a fixed constraint set.
///
/// Built once per `(document, plan)` pair; checking every constraint of the
/// planned set afterwards performs only hash probes over integer tuples —
/// zero per-constraint allocation or cloning.
#[derive(Debug)]
pub struct DocIndex<'a> {
    dtd: &'a Dtd,
    tree: &'a XmlTree,
    ext: HashMap<ElemId, Vec<NodeId>>,
    keys: Vec<KeySlot>,
    tuples: Vec<TupleSlot>,
}

/// Process-wide build instruments, resolved once (registry name lookups
/// take a read lock; the per-document build path should not).
fn instruments() -> &'static (Arc<Counter>, Arc<Histogram>) {
    static INSTRUMENTS: OnceLock<(Arc<Counter>, Arc<Histogram>)> = OnceLock::new();
    INSTRUMENTS.get_or_init(|| {
        let telemetry = xic_telemetry::global();
        (
            telemetry.counter("index.builds"),
            telemetry.histogram("index.build_ns"),
        )
    })
}

impl<'a> DocIndex<'a> {
    /// Builds every index the plan names in a single document-order pass
    /// over the tree.
    pub fn build(dtd: &'a Dtd, tree: &'a XmlTree, plan: &IndexPlan) -> DocIndex<'a> {
        let (builds, build_ns) = instruments();
        let timer = xic_telemetry::global().start_timer();
        let index = DocIndex::build_uninstrumented(dtd, tree, plan);
        builds.inc();
        if let Some(t) = timer {
            build_ns.record_elapsed(t);
        }
        index
    }

    fn build_uninstrumented(dtd: &'a Dtd, tree: &'a XmlTree, plan: &IndexPlan) -> DocIndex<'a> {
        let mut ext: HashMap<ElemId, Vec<NodeId>> = plan
            .ext_types()
            .iter()
            .map(|&ty| (ty, Vec::new()))
            .collect();
        let mut keys: Vec<KeySlot> = plan
            .key_slots()
            .iter()
            .map(|(ty, attrs)| KeySlot {
                ty: *ty,
                attrs: attrs.clone(),
                index: TupleMap::default(),
                clash: None,
            })
            .collect();
        let mut tuples: Vec<TupleSlot> = plan
            .tuple_slots()
            .iter()
            .map(|(ty, attrs)| TupleSlot {
                ty: *ty,
                attrs: attrs.clone(),
                set: TupleSet::default(),
            })
            .collect();

        // Group the slots by element type so the pass dispatches each node
        // in O(slots of its type).
        let mut key_slots_of: HashMap<ElemId, Vec<usize>> = HashMap::new();
        for (i, slot) in keys.iter().enumerate() {
            key_slots_of.entry(slot.ty).or_default().push(i);
        }
        let mut tuple_slots_of: HashMap<ElemId, Vec<usize>> = HashMap::new();
        for (i, slot) in tuples.iter().enumerate() {
            tuple_slots_of.entry(slot.ty).or_default().push(i);
        }

        let mut scratch: Vec<ValueId> = Vec::new();
        for node in tree.elements() {
            let Some(ty) = tree.element_type(node) else {
                continue;
            };
            if let Some(list) = ext.get_mut(&ty) {
                list.push(node);
            }
            for &i in key_slots_of.get(&ty).into_iter().flatten() {
                let slot = &mut keys[i];
                if !tree.attr_value_ids(node, &slot.attrs, &mut scratch) {
                    // Elements missing an attribute cannot clash (the key's
                    // conjunction of equalities is vacuously false).
                    continue;
                }
                match slot.index.get(scratch.as_slice()) {
                    Some(&prev) => {
                        if slot.clash.is_none() {
                            slot.clash = Some((prev, node, scratch.as_slice().into()));
                        }
                    }
                    None => {
                        slot.index.insert(scratch.as_slice().into(), node);
                    }
                }
            }
            for &i in tuple_slots_of.get(&ty).into_iter().flatten() {
                let slot = &mut tuples[i];
                if tree.attr_value_ids(node, &slot.attrs, &mut scratch)
                    && !slot.set.contains(scratch.as_slice())
                {
                    slot.set.insert(scratch.as_slice().into());
                }
            }
        }
        DocIndex {
            dtd,
            tree,
            ext,
            keys,
            tuples,
        }
    }

    /// The tree the index was built over.
    pub fn tree(&self) -> &XmlTree {
        self.tree
    }

    /// `ext(τ)` in document order (empty slice for types outside the plan
    /// that have no elements — see [`DocIndex::check`] for the fallback).
    fn ext_of(&self, ty: ElemId) -> Option<&[NodeId]> {
        self.ext.get(&ty).map(Vec::as_slice)
    }

    fn key_slot(&self, ty: ElemId, attrs: &[AttrId]) -> Option<&KeySlot> {
        self.keys.iter().find(|s| s.ty == ty && s.attrs == attrs)
    }

    fn tuple_slot(&self, ty: ElemId, attrs: &[AttrId]) -> Option<&TupleSlot> {
        self.tuples.iter().find(|s| s.ty == ty && s.attrs == attrs)
    }

    fn resolve_tuple(&self, tuple: &[ValueId]) -> Vec<String> {
        tuple
            .iter()
            .map(|&id| self.tree.resolve(id).to_string())
            .collect()
    }

    /// The first key clash for `(τ, X̄)`, from the prebuilt slot or — for
    /// keys outside the plan — recomputed on the fly.
    fn key_clash(&self, k: &KeySpec) -> Option<(NodeId, NodeId, Vec<String>)> {
        if let Some(slot) = self.key_slot(k.ty, &k.attrs) {
            return slot
                .clash
                .as_ref()
                .map(|(a, b, t)| (*a, *b, self.resolve_tuple(t)));
        }
        // Cold path: the constraint is not covered by the plan the index was
        // built with.  Scan once without caching.
        let nodes = self.nodes_of(k.ty);
        let mut seen: TupleMap<Box<[ValueId]>, NodeId> = TupleMap::default();
        let mut scratch = Vec::new();
        for &n in nodes.iter() {
            if !self.tree.attr_value_ids(n, &k.attrs, &mut scratch) {
                continue;
            }
            if let Some(&prev) = seen.get(scratch.as_slice()) {
                return Some((prev, n, self.resolve_tuple(&scratch)));
            }
            seen.insert(scratch.as_slice().into(), n);
        }
        None
    }

    /// `ext(τ)` as an owned-or-borrowed list (borrowed when planned).
    fn nodes_of(&self, ty: ElemId) -> std::borrow::Cow<'_, [NodeId]> {
        match self.ext_of(ty) {
            Some(nodes) => std::borrow::Cow::Borrowed(nodes),
            None => std::borrow::Cow::Owned(self.tree.ext(ty).collect()),
        }
    }

    /// The first inclusion violation: a source node whose tuple is missing
    /// from the target slot (`Some(values)`), or missing attributes (`None`).
    fn first_inclusion_violation(
        &self,
        i: &InclusionSpec,
    ) -> Option<(NodeId, Option<Vec<String>>)> {
        let mut scratch = Vec::new();
        // Foreign keys register only a key slot for their target; its
        // tuple → first-carrier map holds exactly the target tuple set, so
        // either prebuilt structure answers the membership probe.
        if let Some(slot) = self.tuple_slot(i.to_ty, &i.to_attrs) {
            return self.scan_sources(i, &mut scratch, |t| slot.set.contains(t));
        }
        if let Some(slot) = self.key_slot(i.to_ty, &i.to_attrs) {
            return self.scan_sources(i, &mut scratch, |t| slot.index.contains_key(t));
        }
        // Cold path: build the target tuple set once without caching.
        let targets = self.nodes_of(i.to_ty);
        let mut set: TupleSet<Box<[ValueId]>> = TupleSet::default();
        for &n in targets.iter() {
            if self.tree.attr_value_ids(n, &i.to_attrs, &mut scratch)
                && !set.contains(scratch.as_slice())
            {
                set.insert(scratch.as_slice().into());
            }
        }
        self.scan_sources(i, &mut scratch, |t| set.contains(t))
    }

    /// Scans `ext(from_ty)` in document order, returning the first source
    /// whose tuple fails the membership probe.
    fn scan_sources(
        &self,
        i: &InclusionSpec,
        scratch: &mut Vec<ValueId>,
        contains: impl Fn(&[ValueId]) -> bool,
    ) -> Option<(NodeId, Option<Vec<String>>)> {
        let sources = self.nodes_of(i.from_ty);
        for &n in sources.iter() {
            if !self.tree.attr_value_ids(n, &i.from_attrs, scratch) {
                return Some((n, None));
            }
            if !contains(scratch.as_slice()) {
                return Some((n, Some(self.resolve_tuple(scratch))));
            }
        }
        None
    }

    fn check_key(&self, k: &KeySpec, original: &Constraint) -> Option<Violation> {
        self.key_clash(k)
            .map(|(a, b, values)| Violation::KeyViolation {
                constraint: original.render(self.dtd),
                witnesses: (a, b),
                values,
            })
    }

    fn check_inclusion(&self, i: &InclusionSpec, original: &Constraint) -> Option<Violation> {
        match self.first_inclusion_violation(i) {
            None => None,
            Some((witness, None)) => Some(Violation::MissingAttributes {
                constraint: original.render(self.dtd),
                witness,
            }),
            Some((witness, Some(values))) => Some(Violation::InclusionViolation {
                constraint: original.render(self.dtd),
                witness,
                values,
            }),
        }
    }

    /// Checks a single constraint, returning its violation if any.  Verdicts
    /// and witnesses are identical to [`crate::SatisfactionChecker`]'s.
    pub fn check(&self, constraint: &Constraint) -> Option<Violation> {
        match constraint {
            Constraint::Key(k) => self.check_key(k, constraint),
            Constraint::Inclusion(i) => self.check_inclusion(i, constraint),
            Constraint::ForeignKey(i) => {
                let key = KeySpec::new(i.to_ty, i.to_attrs.clone());
                self.check_key(&key, constraint)
                    .or_else(|| self.check_inclusion(i, constraint))
            }
            Constraint::NotKey(k) => {
                if self.key_clash(k).is_some() {
                    None
                } else {
                    Some(Violation::NegationUnsatisfied {
                        constraint: constraint.render(self.dtd),
                    })
                }
            }
            Constraint::NotInclusion(i) => {
                if self.first_inclusion_violation(i).is_none() {
                    Some(Violation::NegationUnsatisfied {
                        constraint: constraint.render(self.dtd),
                    })
                } else {
                    None
                }
            }
        }
    }

    /// `T ⊨ φ`.
    pub fn satisfies(&self, constraint: &Constraint) -> bool {
        self.check(constraint).is_none()
    }

    /// `T ⊨ Σ`: returns every violation, in Σ order.
    pub fn check_all(&self, sigma: &ConstraintSet) -> Vec<Violation> {
        sigma.iter().filter_map(|c| self.check(c)).collect()
    }

    /// `T ⊨ Σ` as a boolean.
    pub fn satisfies_all(&self, sigma: &ConstraintSet) -> bool {
        sigma.iter().all(|c| self.check(c).is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{example_sigma1, example_sigma3};
    use crate::satisfy::SatisfactionChecker;
    use xic_dtd::{example_d1, example_d3};

    fn figure1(dtd: &Dtd) -> XmlTree {
        let teachers = dtd.type_by_name("teachers").unwrap();
        let teacher = dtd.type_by_name("teacher").unwrap();
        let teach = dtd.type_by_name("teach").unwrap();
        let research = dtd.type_by_name("research").unwrap();
        let subject = dtd.type_by_name("subject").unwrap();
        let name = dtd.attr_by_name("name").unwrap();
        let taught_by = dtd.attr_by_name("taught_by").unwrap();
        let mut t = XmlTree::new(teachers);
        for teacher_name in ["Joe", "Joe"] {
            let te = t.add_element(t.root(), teacher);
            t.set_attr(te, name, teacher_name);
            let th = t.add_element(te, teach);
            for s in ["XML", "DB"] {
                let sn = t.add_element(th, subject);
                t.set_attr(sn, taught_by, teacher_name);
                t.add_text(sn, s);
            }
            let r = t.add_element(te, research);
            t.add_text(r, "Web DB");
        }
        t
    }

    #[test]
    fn agrees_with_the_reference_checker_on_the_paper_examples() {
        let d1 = example_d1();
        let t = figure1(&d1);
        let sigma1 = example_sigma1(&d1);
        let plan = IndexPlan::for_set(&sigma1);
        let index = DocIndex::build(&d1, &t, &plan);
        let fast = index.check_all(&sigma1);
        let reference = SatisfactionChecker::new(&d1, &t).check_all(&sigma1);
        assert_eq!(fast, reference);
        assert!(!fast.is_empty());
    }

    #[test]
    fn multiattribute_slots_agree_on_d3() {
        let d3 = example_d3();
        let school = d3.type_by_name("school").unwrap();
        let enroll = d3.type_by_name("enroll").unwrap();
        let dept = d3.attr_by_name("dept").unwrap();
        let course_no = d3.attr_by_name("course_no").unwrap();
        let student_id = d3.attr_by_name("student_id").unwrap();
        let mut t = XmlTree::new(school);
        let en = t.add_element(t.root(), enroll);
        t.set_attr(en, student_id, "s1");
        t.set_attr(en, dept, "physics");
        t.set_attr(en, course_no, "999");
        t.add_text(en, "enrolled");
        let sigma3 = example_sigma3(&d3);
        let plan = IndexPlan::for_set(&sigma3);
        let index = DocIndex::build(&d3, &t, &plan);
        let fast = index.check_all(&sigma3);
        let reference = SatisfactionChecker::new(&d3, &t).check_all(&sigma3);
        assert_eq!(fast, reference);
        assert!(fast
            .iter()
            .any(|v| matches!(v, Violation::InclusionViolation { .. })));
    }

    #[test]
    fn constraints_outside_the_plan_fall_back_without_an_index() {
        let d1 = example_d1();
        let t = figure1(&d1);
        let teacher = d1.type_by_name("teacher").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        // Empty plan: every check takes the cold path.
        let plan = IndexPlan::default();
        let index = DocIndex::build(&d1, &t, &plan);
        let key = Constraint::unary_key(teacher, name);
        let fast = index.check(&key);
        let reference = SatisfactionChecker::new(&d1, &t).check(&key);
        assert_eq!(fast, reference);
        assert!(fast.is_some());
        assert!(index.satisfies(&Constraint::not_unary_key(teacher, name)));
    }

    #[test]
    fn empty_document_satisfies_everything() {
        let d3 = example_d3();
        let school = d3.type_by_name("school").unwrap();
        let t = XmlTree::new(school);
        let sigma3 = example_sigma3(&d3);
        let plan = IndexPlan::for_set(&sigma3);
        let index = DocIndex::build(&d3, &t, &plan);
        assert!(index.satisfies_all(&sigma3));
        assert!(index.check_all(&sigma3).is_empty());
    }
}
