//! The constraint languages of Section 2.2.
//!
//! Over a DTD `D`, a constraint is a key `τ[X] → τ`, an inclusion constraint
//! `τ1[X] ⊆ τ2[Y]`, a foreign key (an inclusion constraint paired with a key
//! on its target), or — for the extended classes C^Unary_{K¬,IC} and
//! C^Unary_{K¬,IC¬} — the negation of a key or of an inclusion constraint.

use xic_dtd::{AttrId, Dtd, ElemId};

/// A key `τ[X] → τ`: the attribute list `X` uniquely identifies `τ` elements.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KeySpec {
    /// The constrained element type `τ`.
    pub ty: ElemId,
    /// The key attributes `X` (non-empty).
    pub attrs: Vec<AttrId>,
}

impl KeySpec {
    /// Creates a key specification.
    pub fn new(ty: ElemId, attrs: Vec<AttrId>) -> KeySpec {
        KeySpec { ty, attrs }
    }

    /// Whether the key is unary (single attribute).
    pub fn is_unary(&self) -> bool {
        self.attrs.len() == 1
    }

    /// Renders the key as `τ[X] → τ` with DTD names.
    pub fn render(&self, dtd: &Dtd) -> String {
        format!(
            "{}[{}] → {}",
            dtd.type_name(self.ty),
            render_attrs(dtd, &self.attrs),
            dtd.type_name(self.ty)
        )
    }
}

/// An inclusion constraint `τ1[X] ⊆ τ2[Y]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InclusionSpec {
    /// The referencing element type `τ1`.
    pub from_ty: ElemId,
    /// The referencing attribute list `X`.
    pub from_attrs: Vec<AttrId>,
    /// The referenced element type `τ2`.
    pub to_ty: ElemId,
    /// The referenced attribute list `Y` (same length as `X`).
    pub to_attrs: Vec<AttrId>,
}

impl InclusionSpec {
    /// Creates an inclusion specification.
    pub fn new(
        from_ty: ElemId,
        from_attrs: Vec<AttrId>,
        to_ty: ElemId,
        to_attrs: Vec<AttrId>,
    ) -> InclusionSpec {
        InclusionSpec {
            from_ty,
            from_attrs,
            to_ty,
            to_attrs,
        }
    }

    /// Whether the inclusion is unary.
    pub fn is_unary(&self) -> bool {
        self.from_attrs.len() == 1 && self.to_attrs.len() == 1
    }

    /// Renders the inclusion as `τ1[X] ⊆ τ2[Y]` with DTD names.
    pub fn render(&self, dtd: &Dtd) -> String {
        format!(
            "{}[{}] ⊆ {}[{}]",
            dtd.type_name(self.from_ty),
            render_attrs(dtd, &self.from_attrs),
            dtd.type_name(self.to_ty),
            render_attrs(dtd, &self.to_attrs)
        )
    }
}

/// A single integrity constraint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// A key `τ[X] → τ`.
    Key(KeySpec),
    /// An inclusion constraint `τ1[X] ⊆ τ2[Y]` (no key requirement).
    Inclusion(InclusionSpec),
    /// A foreign key: the inclusion constraint together with the key
    /// `τ2[Y] → τ2` on its target.
    ForeignKey(InclusionSpec),
    /// The negation of a key: `τ[X] ↛ τ` — two distinct `τ` elements agree
    /// on `X`.
    NotKey(KeySpec),
    /// The negation of an inclusion constraint: `τ1[X] ⊄ τ2[Y]` — some `τ1`
    /// element's `X`-values match no `τ2` element's `Y`-values.
    NotInclusion(InclusionSpec),
}

impl Constraint {
    /// Unary key `τ.l → τ`.
    pub fn unary_key(ty: ElemId, attr: AttrId) -> Constraint {
        Constraint::Key(KeySpec::new(ty, vec![attr]))
    }

    /// Unary inclusion constraint `τ1.l1 ⊆ τ2.l2`.
    pub fn unary_inclusion(t1: ElemId, l1: AttrId, t2: ElemId, l2: AttrId) -> Constraint {
        Constraint::Inclusion(InclusionSpec::new(t1, vec![l1], t2, vec![l2]))
    }

    /// Unary foreign key `τ1.l1 ⊆ τ2.l2, τ2.l2 → τ2`.
    pub fn unary_foreign_key(t1: ElemId, l1: AttrId, t2: ElemId, l2: AttrId) -> Constraint {
        Constraint::ForeignKey(InclusionSpec::new(t1, vec![l1], t2, vec![l2]))
    }

    /// Negated unary key `τ.l ↛ τ`.
    pub fn not_unary_key(ty: ElemId, attr: AttrId) -> Constraint {
        Constraint::NotKey(KeySpec::new(ty, vec![attr]))
    }

    /// Negated unary inclusion `τ1.l1 ⊄ τ2.l2`.
    pub fn not_unary_inclusion(t1: ElemId, l1: AttrId, t2: ElemId, l2: AttrId) -> Constraint {
        Constraint::NotInclusion(InclusionSpec::new(t1, vec![l1], t2, vec![l2]))
    }

    /// Multi-attribute key.
    pub fn key(ty: ElemId, attrs: Vec<AttrId>) -> Constraint {
        Constraint::Key(KeySpec::new(ty, attrs))
    }

    /// Multi-attribute foreign key.
    pub fn foreign_key(t1: ElemId, from: Vec<AttrId>, t2: ElemId, to: Vec<AttrId>) -> Constraint {
        Constraint::ForeignKey(InclusionSpec::new(t1, from, t2, to))
    }

    /// Whether the constraint involves only single attributes.
    pub fn is_unary(&self) -> bool {
        match self {
            Constraint::Key(k) | Constraint::NotKey(k) => k.is_unary(),
            Constraint::Inclusion(i) | Constraint::ForeignKey(i) | Constraint::NotInclusion(i) => {
                i.is_unary()
            }
        }
    }

    /// Whether the constraint is a negation.
    pub fn is_negation(&self) -> bool {
        matches!(self, Constraint::NotKey(_) | Constraint::NotInclusion(_))
    }

    /// The logical negation of this constraint, used by the implication
    /// procedures ((D,Σ) ⊢ φ iff Σ ∪ {¬φ} is inconsistent over D).
    /// Foreign keys negate into a *disjunction* (either the inclusion or the
    /// key fails), which is why implication of a foreign key is checked as
    /// the conjunction of the two implications; this method therefore
    /// only accepts the four non-composite forms.
    pub fn negated(&self) -> Option<Constraint> {
        match self {
            Constraint::Key(k) => Some(Constraint::NotKey(k.clone())),
            Constraint::NotKey(k) => Some(Constraint::Key(k.clone())),
            Constraint::Inclusion(i) => Some(Constraint::NotInclusion(i.clone())),
            Constraint::NotInclusion(i) => Some(Constraint::Inclusion(i.clone())),
            Constraint::ForeignKey(_) => None,
        }
    }

    /// The key component of the constraint, if any (for foreign keys this is
    /// the key on the referenced type).
    pub fn key_part(&self) -> Option<KeySpec> {
        match self {
            Constraint::Key(k) => Some(k.clone()),
            Constraint::ForeignKey(i) => Some(KeySpec::new(i.to_ty, i.to_attrs.clone())),
            _ => None,
        }
    }

    /// The inclusion component of the constraint, if any.
    pub fn inclusion_part(&self) -> Option<InclusionSpec> {
        match self {
            Constraint::Inclusion(i) | Constraint::ForeignKey(i) | Constraint::NotInclusion(i) => {
                Some(i.clone())
            }
            _ => None,
        }
    }

    /// Checks that the constraint is well-formed over a DTD: non-empty
    /// attribute lists of matching length, and every attribute defined for
    /// its element type.
    pub fn validate(&self, dtd: &Dtd) -> Result<(), ConstraintError> {
        // Range-check every id before anything renders names: a constraint
        // built against a different DTD must come back as an error, not an
        // out-of-bounds panic inside `render`/`has_attr`.
        let check_ids = |ty: ElemId, attrs: &[AttrId]| -> Result<(), ConstraintError> {
            if ty.index() >= dtd.num_types() {
                return Err(ConstraintError::ForeignIds {
                    id: format!("element type #{}", ty.index()),
                });
            }
            for &a in attrs {
                if a.index() >= dtd.num_attrs() {
                    return Err(ConstraintError::ForeignIds {
                        id: format!("attribute #{}", a.index()),
                    });
                }
            }
            Ok(())
        };
        match self {
            Constraint::Key(k) | Constraint::NotKey(k) => check_ids(k.ty, &k.attrs)?,
            Constraint::Inclusion(i) | Constraint::NotInclusion(i) | Constraint::ForeignKey(i) => {
                check_ids(i.from_ty, &i.from_attrs)?;
                check_ids(i.to_ty, &i.to_attrs)?;
            }
        }
        let check_key = |k: &KeySpec| {
            if k.attrs.is_empty() {
                return Err(ConstraintError::EmptyAttributeList(self.render(dtd)));
            }
            for &a in &k.attrs {
                if !dtd.has_attr(k.ty, a) {
                    return Err(ConstraintError::UndefinedAttribute {
                        constraint: self.render(dtd),
                        element_type: dtd.type_name(k.ty).to_string(),
                        attribute: dtd.attr_name(a).to_string(),
                    });
                }
            }
            Ok(())
        };
        let check_inclusion = |i: &InclusionSpec| {
            if i.from_attrs.is_empty() || i.to_attrs.is_empty() {
                return Err(ConstraintError::EmptyAttributeList(self.render(dtd)));
            }
            if i.from_attrs.len() != i.to_attrs.len() {
                return Err(ConstraintError::ArityMismatch(self.render(dtd)));
            }
            for &a in &i.from_attrs {
                if !dtd.has_attr(i.from_ty, a) {
                    return Err(ConstraintError::UndefinedAttribute {
                        constraint: self.render(dtd),
                        element_type: dtd.type_name(i.from_ty).to_string(),
                        attribute: dtd.attr_name(a).to_string(),
                    });
                }
            }
            for &a in &i.to_attrs {
                if !dtd.has_attr(i.to_ty, a) {
                    return Err(ConstraintError::UndefinedAttribute {
                        constraint: self.render(dtd),
                        element_type: dtd.type_name(i.to_ty).to_string(),
                        attribute: dtd.attr_name(a).to_string(),
                    });
                }
            }
            Ok(())
        };
        match self {
            Constraint::Key(k) | Constraint::NotKey(k) => check_key(k),
            Constraint::Inclusion(i) | Constraint::NotInclusion(i) => check_inclusion(i),
            Constraint::ForeignKey(i) => check_inclusion(i),
        }
    }

    /// Renders the constraint with DTD names (unary constraints use the
    /// paper's dot notation).
    pub fn render(&self, dtd: &Dtd) -> String {
        let dotted = |ty: ElemId, attrs: &[AttrId]| {
            if attrs.len() == 1 {
                format!("{}.{}", dtd.type_name(ty), dtd.attr_name(attrs[0]))
            } else {
                format!("{}[{}]", dtd.type_name(ty), render_attrs(dtd, attrs))
            }
        };
        match self {
            Constraint::Key(k) => {
                format!("{} → {}", dotted(k.ty, &k.attrs), dtd.type_name(k.ty))
            }
            Constraint::NotKey(k) => {
                format!("{} ↛ {}", dotted(k.ty, &k.attrs), dtd.type_name(k.ty))
            }
            Constraint::Inclusion(i) => {
                format!(
                    "{} ⊆ {}",
                    dotted(i.from_ty, &i.from_attrs),
                    dotted(i.to_ty, &i.to_attrs)
                )
            }
            Constraint::NotInclusion(i) => {
                format!(
                    "{} ⊄ {}",
                    dotted(i.from_ty, &i.from_attrs),
                    dotted(i.to_ty, &i.to_attrs)
                )
            }
            Constraint::ForeignKey(i) => format!(
                "{} ⊆ {}, {} → {}",
                dotted(i.from_ty, &i.from_attrs),
                dotted(i.to_ty, &i.to_attrs),
                dotted(i.to_ty, &i.to_attrs),
                dtd.type_name(i.to_ty)
            ),
        }
    }
}

fn render_attrs(dtd: &Dtd, attrs: &[AttrId]) -> String {
    attrs
        .iter()
        .map(|&a| dtd.attr_name(a))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Errors raised by constraint validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintError {
    /// A constraint referenced an attribute not defined for its element type.
    UndefinedAttribute {
        /// Rendered constraint.
        constraint: String,
        /// Element type name.
        element_type: String,
        /// Attribute name.
        attribute: String,
    },
    /// A key or inclusion constraint with an empty attribute list.
    EmptyAttributeList(String),
    /// An inclusion constraint whose attribute lists differ in length.
    ArityMismatch(String),
    /// A constraint carrying element/attribute ids that do not belong to the
    /// DTD it is validated against (e.g. built for a different DTD).
    ForeignIds {
        /// The out-of-range element or attribute id, rendered.
        id: String,
    },
}

impl std::fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstraintError::UndefinedAttribute { constraint, element_type, attribute } => write!(
                f,
                "in `{constraint}`: attribute `{attribute}` is not defined for element type `{element_type}`"
            ),
            ConstraintError::EmptyAttributeList(c) => {
                write!(f, "constraint `{c}` has an empty attribute list")
            }
            ConstraintError::ArityMismatch(c) => {
                write!(f, "inclusion constraint `{c}` relates attribute lists of different lengths")
            }
            ConstraintError::ForeignIds { id } => {
                write!(f, "constraint references {id}, which does not exist in this DTD — was it built for a different DTD?")
            }
        }
    }
}

impl std::error::Error for ConstraintError {}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_dtd::example_d1;

    #[test]
    fn sigma1_constraints_render() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        let k1 = Constraint::unary_key(teacher, name);
        let k2 = Constraint::unary_key(subject, taught_by);
        let fk = Constraint::unary_foreign_key(subject, taught_by, teacher, name);
        assert_eq!(k1.render(&d1), "teacher.name → teacher");
        assert_eq!(k2.render(&d1), "subject.taught_by → subject");
        assert!(fk.render(&d1).contains("subject.taught_by ⊆ teacher.name"));
        assert!(k1.validate(&d1).is_ok());
        assert!(fk.validate(&d1).is_ok());
        assert!(k1.is_unary() && fk.is_unary());
    }

    #[test]
    fn validation_catches_undefined_attributes() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        // taught_by is not an attribute of teacher.
        let bad = Constraint::unary_key(teacher, taught_by);
        assert!(matches!(
            bad.validate(&d1),
            Err(ConstraintError::UndefinedAttribute { .. })
        ));
    }

    #[test]
    fn validation_catches_arity_mismatch_and_empty_lists() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        let bad = Constraint::Inclusion(InclusionSpec::new(
            subject,
            vec![taught_by],
            teacher,
            vec![name, name],
        ));
        assert!(matches!(
            bad.validate(&d1),
            Err(ConstraintError::ArityMismatch(_))
        ));
        let empty = Constraint::Key(KeySpec::new(teacher, vec![]));
        assert!(matches!(
            empty.validate(&d1),
            Err(ConstraintError::EmptyAttributeList(_))
        ));
    }

    #[test]
    fn negation_round_trips() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let key = Constraint::unary_key(teacher, name);
        let neg = key.negated().unwrap();
        assert!(neg.is_negation());
        assert_eq!(neg.negated().unwrap(), key);
        let fk = Constraint::unary_foreign_key(teacher, name, teacher, name);
        assert!(fk.negated().is_none());
    }

    #[test]
    fn parts_extraction() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        let fk = Constraint::unary_foreign_key(subject, taught_by, teacher, name);
        let key_part = fk.key_part().unwrap();
        assert_eq!(key_part.ty, teacher);
        assert_eq!(key_part.attrs, vec![name]);
        let inc = fk.inclusion_part().unwrap();
        assert_eq!(inc.from_ty, subject);
        assert!(Constraint::unary_key(teacher, name)
            .inclusion_part()
            .is_none());
    }
}
