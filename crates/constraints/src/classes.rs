//! The constraint classes of the paper and constraint-set utilities.
//!
//! The paper studies four classes:
//!
//! * `C_{K,FK}` — multi-attribute keys and foreign keys;
//! * `C^Unary_{K,FK}` — unary keys and foreign keys;
//! * `C^Unary_{K¬,IC}` — unary keys, unary inclusion constraints and
//!   negations of unary keys;
//! * `C^Unary_{K¬,IC¬}` — additionally negations of unary inclusion
//!   constraints;
//!
//! plus the keys-only fragment `C_K` used in Theorem 3.5.  [`ConstraintSet`]
//! bundles a Σ with validation, class membership tests and the primary-key
//! restriction.

use std::collections::HashMap;

use xic_dtd::{Dtd, ElemId};

use crate::constraint::{Constraint, ConstraintError, KeySpec};

/// The constraint classes studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintClass {
    /// `C_K`: multi-attribute keys only (Theorem 3.5).
    KeysOnly,
    /// `C_{K,FK}`: multi-attribute keys and foreign keys (Section 3).
    MultiKeyForeignKey,
    /// `C^Unary_{K,FK}`: unary keys and foreign keys (Section 4).
    UnaryKeyForeignKey,
    /// `C^Unary_{K,IC}`: unary keys and unary inclusion constraints
    /// (the slight generalisation used in Theorem 4.1).
    UnaryKeyInclusion,
    /// `C^Unary_{K¬,IC}`: unary keys, inclusion constraints and negated keys.
    UnaryKeyNegInclusion,
    /// `C^Unary_{K¬,IC¬}`: additionally negated inclusion constraints
    /// (Section 5).
    UnaryKeyNegInclusionNeg,
}

impl ConstraintClass {
    /// Human-readable name matching the paper's notation.
    pub fn paper_name(self) -> &'static str {
        match self {
            ConstraintClass::KeysOnly => "C_K",
            ConstraintClass::MultiKeyForeignKey => "C_{K,FK}",
            ConstraintClass::UnaryKeyForeignKey => "C^unary_{K,FK}",
            ConstraintClass::UnaryKeyInclusion => "C^unary_{K,IC}",
            ConstraintClass::UnaryKeyNegInclusion => "C^unary_{K¬,IC}",
            ConstraintClass::UnaryKeyNegInclusionNeg => "C^unary_{K¬,IC¬}",
        }
    }

    /// Whether a single constraint belongs to the class.
    pub fn admits(self, c: &Constraint) -> bool {
        match self {
            ConstraintClass::KeysOnly => matches!(c, Constraint::Key(_)),
            ConstraintClass::MultiKeyForeignKey => {
                matches!(c, Constraint::Key(_) | Constraint::ForeignKey(_))
            }
            ConstraintClass::UnaryKeyForeignKey => {
                c.is_unary() && matches!(c, Constraint::Key(_) | Constraint::ForeignKey(_))
            }
            ConstraintClass::UnaryKeyInclusion => {
                c.is_unary()
                    && matches!(
                        c,
                        Constraint::Key(_) | Constraint::ForeignKey(_) | Constraint::Inclusion(_)
                    )
            }
            ConstraintClass::UnaryKeyNegInclusion => {
                c.is_unary()
                    && matches!(
                        c,
                        Constraint::Key(_)
                            | Constraint::ForeignKey(_)
                            | Constraint::Inclusion(_)
                            | Constraint::NotKey(_)
                    )
            }
            ConstraintClass::UnaryKeyNegInclusionNeg => c.is_unary(),
        }
    }
}

/// A set Σ of constraints over a DTD.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// The empty constraint set.
    pub fn new() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// Builds a set from a vector of constraints.
    pub fn from_vec(constraints: Vec<Constraint>) -> ConstraintSet {
        ConstraintSet { constraints }
    }

    /// Adds a constraint.
    pub fn push(&mut self, c: Constraint) -> &mut Self {
        self.constraints.push(c);
        self
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Iterates over the constraints.
    pub fn iter(&self) -> impl Iterator<Item = &Constraint> {
        self.constraints.iter()
    }

    /// The underlying slice.
    pub fn as_slice(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Returns a new set with `extra` appended (used for Σ ∪ {¬φ}).
    pub fn with(&self, extra: Constraint) -> ConstraintSet {
        let mut c = self.clone();
        c.push(extra);
        c
    }

    /// Validates every constraint against the DTD.
    pub fn validate(&self, dtd: &Dtd) -> Result<(), ConstraintError> {
        for c in &self.constraints {
            c.validate(dtd)?;
        }
        Ok(())
    }

    /// All key components present in the set: explicit keys plus the keys
    /// required by foreign keys.
    pub fn all_keys(&self) -> Vec<KeySpec> {
        let mut keys = Vec::new();
        for c in &self.constraints {
            if let Some(k) = c.key_part() {
                if !keys.contains(&k) {
                    keys.push(k);
                }
            }
        }
        keys
    }

    /// The explicit and foreign-key-implied inclusion constraints.
    pub fn all_inclusions(&self) -> Vec<crate::constraint::InclusionSpec> {
        self.constraints
            .iter()
            .filter_map(|c| c.inclusion_part())
            .collect()
    }

    /// Whether every constraint is a member of the given class.
    pub fn in_class(&self, class: ConstraintClass) -> bool {
        self.constraints.iter().all(|c| class.admits(c))
    }

    /// The smallest class (in the paper's hierarchy) containing the set, or
    /// `None` if it contains a multi-attribute negation, which no class of
    /// the paper admits.
    pub fn smallest_class(&self) -> Option<ConstraintClass> {
        const ORDER: [ConstraintClass; 6] = [
            ConstraintClass::KeysOnly,
            ConstraintClass::UnaryKeyForeignKey,
            ConstraintClass::UnaryKeyInclusion,
            ConstraintClass::UnaryKeyNegInclusion,
            ConstraintClass::UnaryKeyNegInclusionNeg,
            ConstraintClass::MultiKeyForeignKey,
        ];
        ORDER.into_iter().find(|&class| self.in_class(class))
    }

    /// Checks the primary-key restriction: at most one key per element type,
    /// counting both explicit keys and keys required by foreign keys.
    pub fn satisfies_primary_key_restriction(&self) -> bool {
        let mut per_type: HashMap<ElemId, Vec<Vec<_>>> = HashMap::new();
        for key in self.all_keys() {
            let entry = per_type.entry(key.ty).or_default();
            let mut sorted = key.attrs.clone();
            sorted.sort();
            if !entry.contains(&sorted) {
                entry.push(sorted);
            }
        }
        per_type.values().all(|keys| keys.len() <= 1)
    }

    /// Renders the whole set, one constraint per line.
    pub fn render(&self, dtd: &Dtd) -> String {
        self.constraints
            .iter()
            .map(|c| c.render(dtd))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl FromIterator<Constraint> for ConstraintSet {
    fn from_iter<T: IntoIterator<Item = Constraint>>(iter: T) -> Self {
        ConstraintSet {
            constraints: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a ConstraintSet {
    type Item = &'a Constraint;
    type IntoIter = std::slice::Iter<'a, Constraint>;
    fn into_iter(self) -> Self::IntoIter {
        self.constraints.iter()
    }
}

/// Builds the paper's Σ1 over the teachers DTD D1:
/// `teacher.name → teacher`, `subject.taught_by → subject`,
/// `subject.taught_by ⊆ teacher.name` (a foreign key).
pub fn example_sigma1(d1: &Dtd) -> ConstraintSet {
    let teacher = d1.type_by_name("teacher").expect("teacher in D1");
    let subject = d1.type_by_name("subject").expect("subject in D1");
    let name = d1.attr_by_name("name").expect("name in D1");
    let taught_by = d1.attr_by_name("taught_by").expect("taught_by in D1");
    ConstraintSet::from_vec(vec![
        Constraint::unary_key(teacher, name),
        Constraint::unary_key(subject, taught_by),
        Constraint::unary_foreign_key(subject, taught_by, teacher, name),
    ])
}

/// Builds the school constraints (1)–(5) of Section 2.2 over D3.
pub fn example_sigma3(d3: &Dtd) -> ConstraintSet {
    let student = d3.type_by_name("student").expect("student in D3");
    let course = d3.type_by_name("course").expect("course in D3");
    let enroll = d3.type_by_name("enroll").expect("enroll in D3");
    let student_id = d3.attr_by_name("student_id").expect("student_id");
    let dept = d3.attr_by_name("dept").expect("dept");
    let course_no = d3.attr_by_name("course_no").expect("course_no");
    ConstraintSet::from_vec(vec![
        Constraint::key(student, vec![student_id]),
        Constraint::key(course, vec![dept, course_no]),
        Constraint::key(enroll, vec![student_id, dept, course_no]),
        Constraint::foreign_key(enroll, vec![student_id], student, vec![student_id]),
        Constraint::foreign_key(enroll, vec![dept, course_no], course, vec![dept, course_no]),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_dtd::{example_d1, example_d3};

    #[test]
    fn sigma1_is_unary_kfk() {
        let d1 = example_d1();
        let sigma1 = example_sigma1(&d1);
        assert_eq!(sigma1.len(), 3);
        assert!(sigma1.validate(&d1).is_ok());
        assert!(sigma1.in_class(ConstraintClass::UnaryKeyForeignKey));
        assert!(sigma1.in_class(ConstraintClass::UnaryKeyNegInclusionNeg));
        assert!(!sigma1.in_class(ConstraintClass::KeysOnly));
        assert_eq!(
            sigma1.smallest_class(),
            Some(ConstraintClass::UnaryKeyForeignKey)
        );
    }

    #[test]
    fn sigma3_is_multiattribute() {
        let d3 = example_d3();
        let sigma3 = example_sigma3(&d3);
        assert!(sigma3.validate(&d3).is_ok());
        assert!(sigma3.in_class(ConstraintClass::MultiKeyForeignKey));
        assert!(!sigma3.in_class(ConstraintClass::UnaryKeyForeignKey));
        assert_eq!(
            sigma3.smallest_class(),
            Some(ConstraintClass::MultiKeyForeignKey)
        );
    }

    #[test]
    fn primary_key_restriction_holds_for_sigma1() {
        let d1 = example_d1();
        let sigma1 = example_sigma1(&d1);
        // Σ1 has exactly one key per element type (teacher.name and
        // subject.taught_by), so the restriction holds; and re-stating the
        // same key does not break it.
        assert!(sigma1.satisfies_primary_key_restriction());
        let teacher = d1.type_by_name("teacher").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let restated = sigma1.with(Constraint::unary_key(teacher, name));
        assert!(restated.satisfies_primary_key_restriction());
    }

    #[test]
    fn two_distinct_keys_violate_primary_restriction() {
        let d3 = example_d3();
        let enroll = d3.type_by_name("enroll").unwrap();
        let student_id = d3.attr_by_name("student_id").unwrap();
        let dept = d3.attr_by_name("dept").unwrap();
        let mut sigma = ConstraintSet::new();
        sigma.push(Constraint::unary_key(enroll, student_id));
        sigma.push(Constraint::unary_key(enroll, dept));
        assert!(!sigma.satisfies_primary_key_restriction());
    }

    #[test]
    fn with_and_negation() {
        let d1 = example_d1();
        let sigma1 = example_sigma1(&d1);
        let teacher = d1.type_by_name("teacher").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let neg = Constraint::not_unary_key(teacher, name);
        let extended = sigma1.with(neg.clone());
        assert_eq!(extended.len(), 4);
        assert!(extended.in_class(ConstraintClass::UnaryKeyNegInclusion));
        assert!(!extended.in_class(ConstraintClass::UnaryKeyForeignKey));
        assert_eq!(
            extended.smallest_class(),
            Some(ConstraintClass::UnaryKeyNegInclusion)
        );
    }

    #[test]
    fn all_keys_includes_foreign_key_targets() {
        let d1 = example_d1();
        let sigma1 = example_sigma1(&d1);
        let keys = sigma1.all_keys();
        // teacher.name and subject.taught_by.
        assert_eq!(keys.len(), 2);
        let inclusions = sigma1.all_inclusions();
        assert_eq!(inclusions.len(), 1);
    }

    #[test]
    fn render_lists_constraints() {
        let d1 = example_d1();
        let sigma1 = example_sigma1(&d1);
        let s = sigma1.render(&d1);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("teacher.name → teacher"));
    }
}
