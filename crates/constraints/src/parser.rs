//! A plain-text surface syntax for constraint sets.
//!
//! The paper writes constraints as `teacher.name → teacher` and
//! `subject.taught_by ⊆ teacher.name`; this module parses exactly that
//! notation (plus ASCII spellings) so that specifications can be kept in
//! ordinary text files next to their DTDs and fed to the command-line tools.
//!
//! ## Syntax
//!
//! One constraint per line; blank lines and `#` comments are ignored.  An
//! element/attribute *term* is either `type.attr` (unary) or
//! `type[attr1, attr2, …]` (multi-attribute).
//!
//! | form | meaning |
//! |---|---|
//! | `term -> type` (or `→`) | key — `term`'s type must equal `type` |
//! | `term subset term` (or `⊆`, `<=`) | inclusion constraint |
//! | `term ref term` | foreign key (inclusion plus key on the target) |
//! | `term !-> type` (or `↛`, or a leading `not`) | negated key |
//! | `term !subset term` (or `⊄`, or a leading `not`) | negated inclusion |
//!
//! A foreign key may also be written the way [`Constraint::render`] prints
//! it — `τ1.l1 ⊆ τ2.l2, τ2.l2 → τ2` — so rendering and parsing round-trip.
//!
//! ```
//! use xic_constraints::{parse_constraint_set, Constraint};
//! use xic_dtd::example_d1;
//!
//! let d1 = example_d1();
//! let sigma = parse_constraint_set(
//!     "
//!     ## the paper's Σ1
//!     teacher.name -> teacher
//!     subject.taught_by -> subject
//!     subject.taught_by ref teacher.name
//!     ",
//!     &d1,
//! )
//! .unwrap();
//! assert_eq!(sigma.len(), 3);
//! ```

use xic_dtd::{AttrId, Dtd, ElemId};

use crate::classes::ConstraintSet;
use crate::constraint::{Constraint, InclusionSpec, KeySpec};

/// An error raised while parsing the constraint surface syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number within the parsed text (0 for single-line parses).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    fn new(message: impl Into<String>) -> ParseError {
        ParseError {
            line: 0,
            message: message.into(),
        }
    }

    fn at_line(mut self, line: usize) -> ParseError {
        self.line = line;
        self
    }
}

/// Parses a whole constraint file: one constraint per line, `#` comments and
/// blank lines ignored, optional trailing `;` per line.
pub fn parse_constraint_set(input: &str, dtd: &Dtd) -> Result<ConstraintSet, ParseError> {
    let mut set = ConstraintSet::new();
    for (idx, raw) in input.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let line = line.strip_suffix(';').unwrap_or(line).trim();
        if line.is_empty() {
            continue;
        }
        let c = parse_constraint(line, dtd).map_err(|e| e.at_line(idx + 1))?;
        set.push(c);
    }
    Ok(set)
}

/// Parses a single constraint.
pub fn parse_constraint(line: &str, dtd: &Dtd) -> Result<Constraint, ParseError> {
    let line = strip_comment(line).trim();
    if line.is_empty() {
        return Err(ParseError::new("empty constraint"));
    }

    // Leading `not` negates the constraint that follows.
    if let Some(rest) = strip_keyword(line, "not") {
        let inner = parse_constraint(rest, dtd)?;
        return inner.negated().ok_or_else(|| {
            ParseError::new(
                "`not` cannot be applied to a foreign key (negate its inclusion or its key \
                 component instead)",
            )
        });
    }

    // The rendered foreign-key form `incl, key` — split on a top-level comma.
    if let Some((first, second)) = split_top_level_comma(line) {
        return parse_rendered_foreign_key(first.trim(), second.trim(), dtd);
    }

    // Binary operators, longest spellings first so prefixes don't shadow them.
    const NEG_KEY_OPS: &[&str] = &["!->", "↛"];
    const KEY_OPS: &[&str] = &["->", "→"];
    const NEG_INC_OPS: &[&str] = &["!subset", "⊄", "!<="];
    const INC_OPS: &[&str] = &["subset", "⊆", "<="];
    const FK_OPS: &[&str] = &["ref"];

    if let Some((lhs, rhs)) = split_on_ops(line, NEG_KEY_OPS) {
        let key = parse_key(lhs, rhs, dtd)?;
        return Ok(Constraint::NotKey(key));
    }
    if let Some((lhs, rhs)) = split_on_ops(line, FK_OPS) {
        let inc = parse_inclusion(lhs, rhs, dtd)?;
        return Ok(Constraint::ForeignKey(inc));
    }
    if let Some((lhs, rhs)) = split_on_ops(line, NEG_INC_OPS) {
        let inc = parse_inclusion(lhs, rhs, dtd)?;
        return Ok(Constraint::NotInclusion(inc));
    }
    if let Some((lhs, rhs)) = split_on_ops(line, INC_OPS) {
        let inc = parse_inclusion(lhs, rhs, dtd)?;
        return Ok(Constraint::Inclusion(inc));
    }
    if let Some((lhs, rhs)) = split_on_ops(line, KEY_OPS) {
        let key = parse_key(lhs, rhs, dtd)?;
        return Ok(Constraint::Key(key));
    }

    Err(ParseError::new(format!(
        "`{line}` is not a constraint: expected one of `->`, `!->`, `subset`, `!subset`, `ref` \
         (or their symbolic forms `→`, `↛`, `⊆`, `⊄`)"
    )))
}

/// Strips a `#` comment (outside of any bracket context — the syntax has no
/// string literals, so a bare `#` always starts a comment).
fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// If `line` starts with the word `kw` followed by whitespace, returns the
/// remainder.
fn strip_keyword<'a>(line: &'a str, kw: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(kw)?;
    if rest.starts_with(char::is_whitespace) {
        Some(rest.trim_start())
    } else {
        None
    }
}

/// Splits on the first occurrence of any of the operators at the top level
/// (outside `[…]`).  Word-like operators (`subset`, `ref`) must be
/// whitespace-delimited.
fn split_on_ops<'a>(line: &'a str, ops: &[&str]) -> Option<(&'a str, &'a str)> {
    let bytes = line.as_bytes();
    let mut depth = 0usize;
    let mut i = 0;
    while i < line.len() {
        // Only examine character boundaries.
        if !line.is_char_boundary(i) {
            i += 1;
            continue;
        }
        match bytes[i] {
            b'[' => depth += 1,
            b']' => depth = depth.saturating_sub(1),
            _ => {}
        }
        if depth == 0 {
            for op in ops {
                if line[i..].starts_with(op) {
                    let wordy = op.chars().all(|c| c.is_ascii_alphabetic());
                    if wordy {
                        let before_ok = i == 0
                            || line[..i]
                                .chars()
                                .next_back()
                                .is_some_and(char::is_whitespace);
                        let after = &line[i + op.len()..];
                        let after_ok = after.is_empty() || after.starts_with(char::is_whitespace);
                        if !(before_ok && after_ok) {
                            continue;
                        }
                    }
                    return Some((&line[..i], &line[i + op.len()..]));
                }
            }
        }
        i += 1;
    }
    None
}

/// Splits on a top-level comma (outside `[…]`), if any.
fn split_top_level_comma(line: &str) -> Option<(&str, &str)> {
    let bytes = line.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'[' => depth += 1,
            b']' => depth = depth.saturating_sub(1),
            b',' if depth == 0 => return Some((&line[..i], &line[i + 1..])),
            _ => {}
        }
    }
    None
}

/// Parses the rendered foreign-key form `τ1[X] ⊆ τ2[Y], τ2[Y] → τ2`.
fn parse_rendered_foreign_key(
    first: &str,
    second: &str,
    dtd: &Dtd,
) -> Result<Constraint, ParseError> {
    let inc = match parse_constraint(first, dtd)? {
        Constraint::Inclusion(i) => i,
        other => {
            return Err(ParseError::new(format!(
                "expected the inclusion component of a foreign key before the comma, found a \
                 {}",
                kind_name(&other)
            )))
        }
    };
    let key = match parse_constraint(second, dtd)? {
        Constraint::Key(k) => k,
        other => {
            return Err(ParseError::new(format!(
                "expected the key component of a foreign key after the comma, found a {}",
                kind_name(&other)
            )))
        }
    };
    if key.ty != inc.to_ty || key.attrs != inc.to_attrs {
        return Err(ParseError::new(
            "the key after the comma must be on the referenced type over the referenced \
             attributes",
        ));
    }
    Ok(Constraint::ForeignKey(inc))
}

fn kind_name(c: &Constraint) -> &'static str {
    match c {
        Constraint::Key(_) => "key",
        Constraint::Inclusion(_) => "inclusion constraint",
        Constraint::ForeignKey(_) => "foreign key",
        Constraint::NotKey(_) => "negated key",
        Constraint::NotInclusion(_) => "negated inclusion constraint",
    }
}

/// Parses a key: the left side is a term, the right side must name the same
/// element type.
fn parse_key(lhs: &str, rhs: &str, dtd: &Dtd) -> Result<KeySpec, ParseError> {
    let (ty, attrs) = parse_term(lhs.trim(), dtd)?;
    let rhs = rhs.trim();
    let rhs_ty = dtd
        .type_by_name(rhs)
        .ok_or_else(|| ParseError::new(format!("unknown element type `{rhs}`")))?;
    if rhs_ty != ty {
        return Err(ParseError::new(format!(
            "a key must target its own element type: left side is `{}`, right side is `{}`",
            dtd.type_name(ty),
            rhs
        )));
    }
    Ok(KeySpec::new(ty, attrs))
}

/// Parses an inclusion constraint from its two term sides.
fn parse_inclusion(lhs: &str, rhs: &str, dtd: &Dtd) -> Result<InclusionSpec, ParseError> {
    let (from_ty, from_attrs) = parse_term(lhs.trim(), dtd)?;
    let (to_ty, to_attrs) = parse_term(rhs.trim(), dtd)?;
    if from_attrs.len() != to_attrs.len() {
        return Err(ParseError::new(format!(
            "inclusion sides have different arities ({} vs {})",
            from_attrs.len(),
            to_attrs.len()
        )));
    }
    Ok(InclusionSpec::new(from_ty, from_attrs, to_ty, to_attrs))
}

/// Parses a term: `type.attr` or `type[attr1, attr2, …]`.
fn parse_term(term: &str, dtd: &Dtd) -> Result<(ElemId, Vec<AttrId>), ParseError> {
    if let Some(open) = term.find('[') {
        let close = term
            .rfind(']')
            .ok_or_else(|| ParseError::new(format!("unterminated `[` in `{term}`")))?;
        if close < open {
            return Err(ParseError::new(format!("mismatched brackets in `{term}`")));
        }
        let ty_name = term[..open].trim();
        let ty = resolve_type(ty_name, dtd)?;
        let inner = &term[open + 1..close];
        let mut attrs = Vec::new();
        for part in inner.split(',') {
            let name = part.trim();
            if name.is_empty() {
                return Err(ParseError::new(format!("empty attribute name in `{term}`")));
            }
            attrs.push(resolve_attr(ty, name, dtd)?);
        }
        if attrs.is_empty() {
            return Err(ParseError::new(format!(
                "`{term}` has an empty attribute list"
            )));
        }
        if !term[close + 1..].trim().is_empty() {
            return Err(ParseError::new(format!(
                "trailing input after `]` in `{term}`"
            )));
        }
        Ok((ty, attrs))
    } else if let Some(dot) = term.find('.') {
        let ty_name = term[..dot].trim();
        let attr_name = term[dot + 1..].trim();
        let ty = resolve_type(ty_name, dtd)?;
        let attr = resolve_attr(ty, attr_name, dtd)?;
        Ok((ty, vec![attr]))
    } else {
        Err(ParseError::new(format!(
            "`{term}` is not a term: expected `type.attr` or `type[attr, …]`"
        )))
    }
}

fn resolve_type(name: &str, dtd: &Dtd) -> Result<ElemId, ParseError> {
    if name.is_empty() {
        return Err(ParseError::new("missing element type name"));
    }
    dtd.type_by_name(name)
        .ok_or_else(|| ParseError::new(format!("unknown element type `{name}`")))
}

fn resolve_attr(ty: ElemId, name: &str, dtd: &Dtd) -> Result<AttrId, ParseError> {
    if name.is_empty() {
        return Err(ParseError::new("missing attribute name"));
    }
    dtd.attrs_of(ty)
        .iter()
        .copied()
        .find(|&a| dtd.attr_name(a) == name)
        .ok_or_else(|| {
            ParseError::new(format!(
                "element type `{}` has no attribute `{}` (defined attributes: {})",
                dtd.type_name(ty),
                name,
                if dtd.attrs_of(ty).is_empty() {
                    "none".to_string()
                } else {
                    dtd.attrs_of(ty)
                        .iter()
                        .map(|&a| dtd.attr_name(a).to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                }
            ))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classes::{example_sigma1, example_sigma3};
    use xic_dtd::{example_d1, example_d3};

    #[test]
    fn parses_unary_key_in_both_spellings() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        for text in ["teacher.name -> teacher", "teacher.name → teacher"] {
            let c = parse_constraint(text, &d1).unwrap();
            assert_eq!(c, Constraint::unary_key(teacher, name), "{text}");
        }
    }

    #[test]
    fn parses_multi_attribute_key() {
        let d3 = example_d3();
        let course = d3.type_by_name("course").unwrap();
        let dept = d3.attr_by_name("dept").unwrap();
        let course_no = d3.attr_by_name("course_no").unwrap();
        let c = parse_constraint("course[dept, course_no] -> course", &d3).unwrap();
        assert_eq!(c, Constraint::key(course, vec![dept, course_no]));
    }

    #[test]
    fn parses_inclusion_and_foreign_key() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        let inc = parse_constraint("subject.taught_by subset teacher.name", &d1).unwrap();
        assert_eq!(
            inc,
            Constraint::unary_inclusion(subject, taught_by, teacher, name)
        );
        let inc2 = parse_constraint("subject.taught_by ⊆ teacher.name", &d1).unwrap();
        assert_eq!(inc, inc2);
        let fk = parse_constraint("subject.taught_by ref teacher.name", &d1).unwrap();
        assert_eq!(
            fk,
            Constraint::unary_foreign_key(subject, taught_by, teacher, name)
        );
    }

    #[test]
    fn parses_negations() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        for text in [
            "not teacher.name -> teacher",
            "teacher.name !-> teacher",
            "teacher.name ↛ teacher",
        ] {
            let c = parse_constraint(text, &d1).unwrap();
            assert_eq!(c, Constraint::not_unary_key(teacher, name), "{text}");
        }
        for text in [
            "not subject.taught_by subset teacher.name",
            "subject.taught_by !subset teacher.name",
            "subject.taught_by ⊄ teacher.name",
        ] {
            let c = parse_constraint(text, &d1).unwrap();
            assert_eq!(
                c,
                Constraint::not_unary_inclusion(subject, taught_by, teacher, name),
                "{text}"
            );
        }
    }

    #[test]
    fn not_of_a_foreign_key_is_rejected() {
        let d1 = example_d1();
        let err = parse_constraint("not subject.taught_by ref teacher.name", &d1).unwrap_err();
        assert!(err.message.contains("foreign key"), "{err}");
    }

    #[test]
    fn parses_whole_file_with_comments() {
        let d1 = example_d1();
        let sigma = parse_constraint_set(
            "
            # Σ1 from the introduction
            teacher.name -> teacher      # name identifies a teacher
            subject.taught_by -> subject;
            subject.taught_by ref teacher.name
            ",
            &d1,
        )
        .unwrap();
        assert_eq!(sigma.len(), 3);
        assert_eq!(sigma, example_sigma1(&d1));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let d1 = example_d1();
        let err = parse_constraint_set("teacher.name -> teacher\nsubject.wrong -> subject\n", &d1)
            .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("no attribute `wrong`"), "{err}");
    }

    #[test]
    fn unknown_type_and_malformed_lines_are_rejected() {
        let d1 = example_d1();
        assert!(parse_constraint("nosuch.name -> nosuch", &d1).is_err());
        assert!(parse_constraint("teacher.name", &d1).is_err());
        assert!(parse_constraint("teacher.name -> subject", &d1).is_err());
        assert!(parse_constraint("teacher[name -> teacher", &d1).is_err());
        assert!(parse_constraint("teacher[] -> teacher", &d1).is_err());
        assert!(parse_constraint("", &d1).is_err());
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let d3 = example_d3();
        let err = parse_constraint("enroll[student_id, dept] subset student[student_id]", &d3)
            .unwrap_err();
        assert!(err.message.contains("different arities"), "{err}");
    }

    #[test]
    fn render_parse_round_trip_for_paper_examples() {
        let d1 = example_d1();
        for c in example_sigma1(&d1).iter() {
            let text = c.render(&d1);
            let back = parse_constraint(&text, &d1).unwrap();
            assert_eq!(&back, c, "round-trip of `{text}`");
        }
        let d3 = example_d3();
        for c in example_sigma3(&d3).iter() {
            let text = c.render(&d3);
            let back = parse_constraint(&text, &d3).unwrap();
            assert_eq!(&back, c, "round-trip of `{text}`");
        }
    }

    #[test]
    fn rendered_negations_round_trip() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        for c in [
            Constraint::not_unary_key(teacher, name),
            Constraint::not_unary_inclusion(subject, taught_by, teacher, name),
            Constraint::unary_foreign_key(subject, taught_by, teacher, name),
        ] {
            let text = c.render(&d1);
            let back = parse_constraint(&text, &d1).unwrap();
            assert_eq!(back, c, "round-trip of `{text}`");
        }
    }
}
