//! Corpus sessions — single-document edit re-verdicts vs. full batch
//! revalidation.
//!
//! The workload cross-document sessions exist for: a corpus of documents
//! open against one spec, a stream of point edits each touching **one**
//! document, and a corpus-wide verdict wanted after every edit.  Two
//! strategies are timed end to end:
//!
//! 1. **corpus session (incremental)** — route the edit through
//!    `CorpusSession::apply` and take `commit()`: only the edited document
//!    is re-checked (structural validation + incrementally maintained
//!    `T ⊨ Σ`), every other document's report is served from cache, and the
//!    commit emits the `BatchDelta` a subscriber would consume;
//! 2. **full batch revalidation** — what a session-less pipeline does on a
//!    change notification: re-run `BatchEngine::validate_batch` over the
//!    corpus sources (parse + validate + index every document).
//!
//! Verdict identity between the two paths is asserted before timing (the
//! corpus report must equal the cold batch report on the same sources).
//! The headline number (asserted ≥ 20×, the ISSUE 4 floor) is the per-edit
//! speedup; everything is recorded in `BENCH_corpus.json` at the workspace
//! root.  Like `session_edit`, this is not a statistical benchmark: the
//! incremental side runs well under a scheduler timeslice on this shared
//! single-core container, so the *minimum* over runs is the honest cost.

use std::time::Duration;

use xic_bench::{fmt_us, min_time};
use xic_engine::{BatchDoc, BatchEngine, CompiledSpec, CorpusSession};
use xic_gen::{
    catalogue_dtd, random_document, random_unary_constraints, ConstraintGenConfig, DocGenConfig,
};
use xic_xml::{write_document, EditOp, NodeId};

const KINDS: usize = 10;
const NUM_DOCS: usize = 32;
/// Edits per timed run (each touches one document, round-robin).
const EDITS_PER_RUN: usize = 32;
/// Runs of the incremental loop per measurement attempt.
const RUNS: usize = 7;
/// Re-measure attempts for the preemption-exposed incremental side.
const ATTEMPTS: usize = 5;

fn main() {
    let dtd = catalogue_dtd(KINDS);
    let sigma = random_unary_constraints(
        &dtd,
        &ConstraintGenConfig {
            keys: 10,
            foreign_keys: 10,
            inclusions: 4,
            seed: 7,
            ..Default::default()
        },
    );
    let spec = CompiledSpec::compile(dtd, sigma).expect("generated spec compiles");

    // The corpus: NUM_DOCS mid-size documents serialized once (the batch
    // path re-reads sources per revalidation, which is exactly its cost).
    let sources: Vec<BatchDoc> = (0..NUM_DOCS)
        .map(|i| {
            let tree = random_document(
                spec.dtd(),
                &DocGenConfig {
                    seed: 100 + i as u64,
                    max_elements: 1_500,
                    star_fanout: 120,
                    value_pool: 1_000_000,
                    ..Default::default()
                },
            )
            .expect("catalogue DTD is satisfiable");
            BatchDoc::new(format!("doc-{i}.xml"), write_document(&tree, spec.dtd()))
        })
        .collect();

    // The deterministic edit stream: edit i rewrites one attribute of one
    // element of document (i mod NUM_DOCS), cycling fresh values.
    let open_corpus = || {
        let mut corpus = CorpusSession::new(&spec);
        let handles: Vec<_> = sources
            .iter()
            .map(|d| corpus.open_source(&d.label, &d.content).expect("parses"))
            .collect();
        corpus.commit();
        (corpus, handles)
    };
    let (probe, probe_handles) = open_corpus();
    let ops: Vec<(usize, EditOp)> = (0..EDITS_PER_RUN)
        .map(|i| {
            let victim = i % NUM_DOCS;
            let tree = probe.tree(probe_handles[victim]).unwrap();
            let editable: Vec<NodeId> = tree
                .elements()
                .filter(|&n| !tree.attributes(n).is_empty())
                .collect();
            let element = editable[(i * 997) % editable.len()];
            let (attr, _) = tree.attributes(element)[0];
            (
                victim,
                EditOp::SetAttr {
                    element,
                    attr,
                    value: format!("edited-{i}"),
                },
            )
        })
        .collect();
    let total_nodes: usize = probe_handles
        .iter()
        .map(|&h| probe.tree(h).unwrap().num_nodes())
        .sum();

    println!();
    println!("corpus_edit — single-doc edit re-verdict vs. full batch revalidation");
    println!("--------------------------------------------------------------------");
    println!(
        "{:<44} {} docs, {} nodes, {} constraints, {} edits/run",
        "workload",
        NUM_DOCS,
        total_nodes,
        spec.sigma().len(),
        EDITS_PER_RUN,
    );

    // Verdict identity along the whole edit stream before any timing: after
    // every commit the corpus report equals a cold batch over the serialized
    // current state.
    {
        let (mut corpus, handles) = open_corpus();
        let engine = BatchEngine::new(1);
        for (victim, op) in &ops {
            corpus
                .apply(handles[*victim], std::slice::from_ref(op))
                .unwrap();
            let delta = corpus.commit();
            assert_eq!(delta.rechecked_docs, 1, "one dirty doc per edit");
        }
        let current: Vec<BatchDoc> = handles
            .iter()
            .map(|&h| {
                BatchDoc::new(
                    corpus.label(h).unwrap(),
                    write_document(corpus.tree(h).unwrap(), spec.dtd()),
                )
            })
            .collect();
        let cold = engine.validate_batch(&spec, &current);
        let warm = corpus.report();
        assert_eq!(
            warm.total() - warm.clean_count(),
            cold.total() - cold.clean_count(),
            "paths disagree — timings are meaningless"
        );
        for (w, c) in warm.reports().iter().zip(cold.reports()) {
            assert_eq!(w.is_clean(), c.is_clean(), "{}", w.label);
        }
    }

    // Opening cost (parse + index the whole corpus) is paid once.
    let open_cost = min_time(3, || {
        let (corpus, _) = open_corpus();
        std::hint::black_box(corpus.num_docs());
    });

    // Incremental side: pre-opened sessions, one per run; each timed
    // closure applies the edit stream with a commit (delta extraction
    // included) after every edit.
    let measure_edit_loop = || {
        let mut prepared: Vec<_> = (0..RUNS).map(|_| open_corpus()).collect();
        let mut edited = Vec::new();
        let best = min_time(RUNS, || {
            let (mut corpus, handles) = prepared.pop().expect("one prepared corpus per run");
            for (victim, op) in &ops {
                corpus
                    .apply(handles[*victim], std::slice::from_ref(op))
                    .unwrap();
                std::hint::black_box(corpus.commit());
            }
            edited.push(corpus);
        });
        drop(edited);
        best
    };
    let mut incremental = measure_edit_loop();
    for _ in 1..ATTEMPTS {
        if incremental.as_secs_f64() * 1e6 / EDITS_PER_RUN as f64 <= 150.0 {
            break; // a clean window (per-edit cost is dominated by one doc's
                   // structural re-validation, ~tens of µs unloaded)
        }
        incremental = incremental.min(measure_edit_loop());
    }

    // Batch side: one full revalidation per edit.  A single revalidation is
    // far longer than a timeslice, so 2 edits × min-of-3 is noise-immune
    // without taking minutes.
    let batch_engine = BatchEngine::new(1);
    let batch_edits = 2usize;
    let rebuild = min_time(3, || {
        for _ in 0..batch_edits {
            std::hint::black_box(batch_engine.validate_batch(&spec, &sources));
        }
    });

    let per_edit_incremental = incremental.as_secs_f64() / EDITS_PER_RUN as f64;
    let per_edit_rebuild = rebuild.as_secs_f64() / batch_edits as f64;
    let speedup = per_edit_rebuild / per_edit_incremental.max(1e-12);

    println!(
        "{:<44} {:>12}",
        "open corpus (parse + index all docs)",
        fmt_us(open_cost)
    );
    println!(
        "{:<44} {:>12}",
        format!("corpus session, {EDITS_PER_RUN} edits (incremental)"),
        fmt_us(incremental)
    );
    println!(
        "{:<44} {:>12}",
        format!("full batch revalidation x{batch_edits}"),
        fmt_us(rebuild)
    );
    println!(
        "{:<44} {:>9.2} µs",
        "per edit, incremental commit",
        per_edit_incremental * 1e6
    );
    println!(
        "{:<44} {:>9.2} µs",
        "per edit, full batch",
        per_edit_rebuild * 1e6
    );
    println!("{:<44} {:>11.1}x", "per-edit speedup", speedup);

    let json = render_json(&[
        ("docs", NUM_DOCS as f64),
        ("nodes_total", total_nodes as f64),
        ("constraints", spec.sigma().len() as f64),
        ("edits_per_run", EDITS_PER_RUN as f64),
        ("open_us", us(open_cost)),
        ("incremental_total_us", us(incremental)),
        (
            "per_edit_incremental_us",
            (per_edit_incremental * 1e7).round() / 10.0,
        ),
        (
            "per_edit_rebuild_us",
            (per_edit_rebuild * 1e7).round() / 10.0,
        ),
        ("speedup_per_edit", (speedup * 10.0).round() / 10.0),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_corpus.json");
    std::fs::write(out, &json).expect("write BENCH_corpus.json");
    println!("{:<44} {:>12}", "recorded", "BENCH_corpus.json");
    println!("--------------------------------------------------------------------");

    assert!(
        speedup >= 20.0,
        "a single-doc edit re-verdict must be ≥ 20× faster than a full \
         BatchEngine revalidation of the {NUM_DOCS}-doc corpus (got {speedup:.1}×)"
    );
}

fn us(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e6 * 10.0).round() / 10.0
}

/// Tiny flat-object JSON rendering (the workspace is dependency-free).
fn render_json(fields: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (key, value)) in fields.iter().enumerate() {
        out.push_str(&format!("  \"{key}\": {value}"));
        out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}
