//! E5 — fixed DTD, growing constraint set (Corollary 4.11 / Corollary 5.5):
//! with the DTD fixed the number of ILP variables is bounded, so consistency
//! and implication scale polynomially in |Σ|.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xic_core::{CheckerConfig, ConsistencyChecker};
use xic_gen::fixed_dtd_growing_sigma;

fn bench_fixed_dtd(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_fixed_dtd_growing_sigma");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));
    let checker = ConsistencyChecker::with_config(CheckerConfig {
        synthesize_witness: false,
        ..Default::default()
    });
    for spec in fixed_dtd_growing_sigma(6, &[2, 8, 32, 64], 5) {
        group.bench_with_input(
            BenchmarkId::from_parameter(&spec.label),
            &spec,
            |b, spec| {
                b.iter(|| checker.check(&spec.dtd, &spec.sigma).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fixed_dtd);
criterion_main!(benches);
