//! Figure 5 — the paper's results table, regenerated empirically.
//!
//! For every cell of the table this harness runs the corresponding procedure
//! on a representative instance and prints the verdict and the measured time,
//! so `cargo bench` output contains a direct analogue of the figure.  This is
//! not a Criterion bench: it prints a table.

use xic_bench::{fmt_us, median_time, time_once};
use xic_constraints::{example_sigma1, example_sigma3, Constraint, ConstraintSet};
use xic_core::{CheckerConfig, ConsistencyChecker, ImplicationChecker};
use xic_dtd::{example_d1, example_d3};
use xic_gen::{catalogue_dtd, fixed_dtd_growing_sigma, negation_family, unary_consistency_family};

fn main() {
    println!();
    println!("Figure 5 (Fan & Libkin 2002) — measured counterpart");
    println!("----------------------------------------------------------------------------");
    println!(
        "{:<44} {:>12} {:>14}",
        "problem / class / instance", "verdict", "time"
    );
    println!("----------------------------------------------------------------------------");

    let no_witness = CheckerConfig {
        synthesize_witness: false,
        ..Default::default()
    };
    let consistency = ConsistencyChecker::with_config(no_witness.clone());
    let implication = ImplicationChecker::with_config(no_witness);

    // Column 5: multi-attribute keys only — linear time.
    let d3 = example_d3();
    let course = d3.type_by_name("course").unwrap();
    let dept = d3.attr_by_name("dept").unwrap();
    let course_no = d3.attr_by_name("course_no").unwrap();
    let keys_only = ConstraintSet::from_vec(vec![Constraint::key(course, vec![dept, course_no])]);
    let t = median_time(5, || {
        let _ = consistency.check_keys_only(&d3, &keys_only);
    });
    println!(
        "{:<44} {:>12} {:>14}",
        "consistency, keys only (D3)",
        "consistent",
        fmt_us(t)
    );
    let phi = Constraint::key(course, vec![dept]);
    let t = median_time(5, || {
        let _ = implication.implies(&d3, &keys_only, &phi).unwrap();
    });
    println!(
        "{:<44} {:>12} {:>14}",
        "implication, keys only (D3)",
        "not implied",
        fmt_us(t)
    );

    // Column 2: unary keys + foreign keys — NP-complete.
    let d1 = example_d1();
    let sigma1 = example_sigma1(&d1);
    let (t, outcome) = time_once(|| consistency.check(&d1, &sigma1).unwrap());
    println!(
        "{:<44} {:>12} {:>14}",
        "consistency, unary K+FK (D1, Σ1)",
        verdict(&outcome),
        fmt_us(t)
    );
    for spec in unary_consistency_family(&[8]) {
        let (t, outcome) = time_once(|| consistency.check(&spec.dtd, &spec.sigma).unwrap());
        println!(
            "{:<44} {:>12} {:>14}",
            format!("consistency, unary K+FK ({})", spec.label),
            verdict(&outcome),
            fmt_us(t)
        );
    }

    // Column 3: primary keys — still NP-complete; representative instance.
    let catalogue = catalogue_dtd(6);
    let kind0 = catalogue.type_by_name("kind0").unwrap();
    let id0 = catalogue.attr_by_name("id0").unwrap();
    let primary = ConstraintSet::from_vec(vec![Constraint::unary_key(kind0, id0)]);
    let (t, outcome) = time_once(|| consistency.check(&catalogue, &primary).unwrap());
    println!(
        "{:<44} {:>12} {:>14}",
        "consistency, primary unary keys (catalogue)",
        verdict(&outcome),
        fmt_us(t)
    );

    // Column 4: fixed DTD — PTIME; growing Σ over one DTD.
    for spec in fixed_dtd_growing_sigma(6, &[32], 5) {
        let (t, outcome) = time_once(|| consistency.check(&spec.dtd, &spec.sigma).unwrap());
        println!(
            "{:<44} {:>12} {:>14}",
            format!("consistency, fixed DTD ({})", spec.label),
            verdict(&outcome),
            fmt_us(t)
        );
    }

    // Implication for unary keys (coNP-complete).
    let teacher = d1.type_by_name("teacher").unwrap();
    let subject = d1.type_by_name("subject").unwrap();
    let name = d1.attr_by_name("name").unwrap();
    let taught_by = d1.attr_by_name("taught_by").unwrap();
    let sigma = ConstraintSet::from_vec(vec![
        Constraint::unary_key(teacher, name),
        Constraint::unary_foreign_key(subject, taught_by, teacher, name),
    ]);
    let phi = Constraint::unary_key(subject, taught_by);
    let (t, outcome) = time_once(|| implication.implies(&d1, &sigma, &phi).unwrap());
    println!(
        "{:<44} {:>12} {:>14}",
        "implication, unary K+FK (D1)",
        if outcome.is_implied() {
            "implied"
        } else {
            "not implied"
        },
        fmt_us(t)
    );

    // Section 5: negations (C^unary_{K¬,IC¬}) — NP.
    for spec in negation_family(&[3], 29) {
        let (t, outcome) = time_once(|| consistency.check(&spec.dtd, &spec.sigma).unwrap());
        println!(
            "{:<44} {:>12} {:>14}",
            format!("consistency, unary K¬+IC¬ ({})", spec.label),
            verdict(&outcome),
            fmt_us(t)
        );
    }

    // Column 1: multi-attribute keys + foreign keys — undecidable; the
    // checker is allowed to say Unknown.
    let sigma3 = example_sigma3(&d3);
    let (t, outcome) = time_once(|| consistency.check(&d3, &sigma3).unwrap());
    println!(
        "{:<44} {:>12} {:>14}",
        "consistency, multi-attr K+FK (D3, Σ3)",
        verdict(&outcome),
        fmt_us(t)
    );
    println!("----------------------------------------------------------------------------");
    println!("(verdicts: paper's Figure 5 gives the complexity class per column; see");
    println!(" EXPERIMENTS.md for the full paper-vs-measured discussion)");
    println!();
}

fn verdict(outcome: &xic_core::ConsistencyOutcome) -> &'static str {
    if outcome.is_consistent() {
        "consistent"
    } else if outcome.is_inconsistent() {
        "inconsistent"
    } else {
        "unknown"
    }
}
