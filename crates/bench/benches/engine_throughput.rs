//! Engine throughput — the compile-once / check-many benchmark.
//!
//! Three measurements back the `xic-engine` design:
//!
//! 1. **cold vs. warm verdicts** — a consistency check through a cold path
//!    (re-compile the spec, re-run the decision procedure) vs. a warm
//!    [`xic_engine::VerdictCache`] hit on the same spec;
//! 2. **batch validation scaling** — docs/sec for 1 vs. N worker threads on
//!    a generated corpus of ≥ 100 documents;
//! 3. **determinism** — the parallel batch report must render byte-identically
//!    to the sequential one (asserted, not just printed).
//!
//! Not a Criterion bench: it prints a table, like `figure5_table`.

use std::time::{Duration, Instant};

use xic_bench::{fmt_us, median_time};
use xic_constraints::{Constraint, ConstraintSet};
use xic_engine::{BatchDoc, BatchEngine, CompiledSpec, Engine};
use xic_gen::{random_document, random_dtd, DocGenConfig, DtdGenConfig};
use xic_xml::write_document;

const CORPUS: usize = 160;

fn main() {
    let dtd = random_dtd(&DtdGenConfig {
        seed: 23,
        num_types: 8,
        ..Default::default()
    });
    let mut sigma = ConstraintSet::new();
    // A unary key on the first attribute slot the DTD offers.
    if let Some((ty, attr)) = dtd
        .types()
        .find_map(|ty| dtd.attrs_of(ty).first().map(|&a| (ty, a)))
    {
        sigma.push(Constraint::unary_key(ty, attr));
    }
    let dtd_src = dtd.render();
    let sigma_src = sigma.render(&dtd);

    println!();
    println!("engine throughput — compile-once / check-many");
    println!("--------------------------------------------------------------------");

    // 1. Cold vs. warm consistency verdicts.
    let cold = median_time(5, || {
        let spec = CompiledSpec::compile(dtd.clone(), sigma.clone()).unwrap();
        std::hint::black_box(spec.check_consistency());
    });
    let spec = CompiledSpec::compile(dtd.clone(), sigma.clone()).unwrap();
    let engine = Engine::new();
    engine.consistency(&spec); // populate the cache
    let warm = median_time(5, || {
        std::hint::black_box(engine.consistency(&spec));
    });
    let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
    println!(
        "{:<44} {:>12}",
        "consistency, cold (compile + decide)",
        fmt_us(cold)
    );
    println!(
        "{:<44} {:>12}",
        "consistency, warm (verdict cache hit)",
        fmt_us(warm)
    );
    println!("{:<44} {:>11.0}x", "warm speedup", speedup);
    assert!(
        speedup >= 10.0,
        "warm-cache repeat checks must be ≥ 10× faster than cold (got {speedup:.1}×)"
    );
    let stats = engine.cache().stats();
    println!(
        "{:<44} {:>7} hits / {} misses",
        "cache statistics", stats.hits, stats.misses
    );

    // Spec ids are content hashes: recompiling the same sources is the same
    // spec, so a service restart keeps its cache keys.
    let reparsed =
        CompiledSpec::from_sources(&dtd_src, Some(dtd.type_name(dtd.root())), &sigma_src)
            .expect("rendered sources must re-parse");
    assert_eq!(
        reparsed.id(),
        spec.id(),
        "content hash must be stable across re-parses"
    );

    // 2. Batch validation, 1 vs. N threads.
    let mut docs = Vec::new();
    let mut seed = 0u64;
    while docs.len() < CORPUS {
        if let Some(tree) = random_document(
            &dtd,
            &DocGenConfig {
                seed,
                value_pool: 4,
                ..Default::default()
            },
        ) {
            docs.push(BatchDoc::new(
                format!("doc-{seed}"),
                write_document(&tree, &dtd),
            ));
        }
        seed += 1;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = cores.max(2);

    let sequential_engine = BatchEngine::new(1);
    let parallel_engine = BatchEngine::new(threads);
    let t1 = time_batch(|| {
        std::hint::black_box(sequential_engine.validate_batch(&spec, &docs));
    });
    let tn = time_batch(|| {
        std::hint::black_box(parallel_engine.validate_batch(&spec, &docs));
    });
    let rate = |d: Duration| docs.len() as f64 / d.as_secs_f64().max(1e-9);
    println!(
        "{:<44} {:>9.0} docs/s",
        "batch validation, 1 thread",
        rate(t1)
    );
    println!(
        "{:<44} {:>9.0} docs/s",
        format!("batch validation, {threads} threads"),
        rate(tn)
    );
    println!(
        "{:<44} {:>11.2}x",
        "parallel speedup",
        t1.as_secs_f64() / tn.as_secs_f64()
    );
    if cores > 1 {
        assert!(
            tn < t1,
            "multi-threaded batch validation must beat single-threaded on {} docs \
             (1 thread: {t1:?}, {threads} threads: {tn:?})",
            docs.len()
        );
    } else {
        // On a single hardware thread parallel validation cannot win and
        // timeslicing noise makes any timing bound flaky, so the speedup
        // assertion is informative only.
        println!(
            "{:<44} {:>12}",
            "parallel speedup check", "skipped (1 hardware thread)"
        );
    }

    // 3. Determinism across thread counts.
    let sequential = sequential_engine.validate_batch(&spec, &docs);
    let parallel = parallel_engine.validate_batch(&spec, &docs);
    assert_eq!(
        sequential.render(),
        parallel.render(),
        "parallel batch reports must be byte-identical to sequential"
    );
    println!(
        "{:<44} {:>12}",
        "report determinism (1 vs. N threads)", "byte-identical"
    );
    println!(
        "{:<44} {:>7}/{} clean",
        "corpus",
        sequential.clean_count(),
        sequential.total()
    );
    println!("--------------------------------------------------------------------");
}

/// Median of three timed runs.
fn time_batch(mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..3)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort();
    times[1]
}
