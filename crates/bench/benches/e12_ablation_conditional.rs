//! E12 — ablation of a design choice: the paper's big-constant rewriting of
//! the conditional constraints `|ext(τ)| > 0 → |ext(τ.l)| > 0` (Theorem 4.1)
//! versus the solver's native disjunctive branching.  Both are complete; the
//! bench shows the cost difference on the same workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xic_core::{CardinalitySystem, SystemOptions};
use xic_gen::unary_consistency_family;
use xic_ilp::{ConditionalMode, IlpSolver, SolverConfig};

fn bench_conditional_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_conditional_mode");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));
    for spec in unary_consistency_family(&[2, 4, 8]) {
        let system =
            CardinalitySystem::build(&spec.dtd, &spec.sigma, &SystemOptions::default()).unwrap();
        for (name, mode) in [
            ("branch", ConditionalMode::Branch),
            ("big_constant", ConditionalMode::BigConstant),
        ] {
            let solver = IlpSolver::with_config(SolverConfig {
                conditional_mode: mode,
                ..Default::default()
            });
            group.bench_with_input(BenchmarkId::new(name, &spec.label), &system, |b, system| {
                b.iter(|| solver.solve(system.program()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_conditional_modes);
criterion_main!(benches);
