//! E2 — the undecidable general class C_{K,FK} (Theorem 3.1 / Figure 5,
//! "multi-attribute keys, foreign keys" column).
//!
//! There is no decision procedure to measure, so the bench measures the two
//! semi-procedures the library offers: (a) the bounded model search on the
//! (consistent) school specification as its search budget grows, and (b) the
//! Theorem 3.1 reduction pipeline on growing relational schemas.  The paper's
//! claim shows up as non-convergence: enlarging the budget enlarges the time
//! without ever turning "Unknown" into a decision on the hard instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xic_core::{bounded_search, relational_to_spec, BoundedSearchConfig, ConsistencyChecker};
use xic_relational::{RelConstraint, RelSchema};

fn bench_bounded_search(c: &mut Criterion) {
    let d3 = xic_dtd::example_d3();
    let sigma3 = xic_constraints::example_sigma3(&d3);
    let mut group = c.benchmark_group("e2_bounded_search_budget");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));
    for attempts in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(attempts), &attempts, |b, &n| {
            let config = BoundedSearchConfig {
                attempts: n,
                ..Default::default()
            };
            b.iter(|| bounded_search(&d3, &sigma3, &config));
        });
    }
    group.finish();
}

fn bench_theorem31_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_theorem31_pipeline");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));
    for relations in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(relations),
            &relations,
            |b, &n| {
                let mut schema = RelSchema::new();
                let rels: Vec<_> = (0..n)
                    .map(|i| schema.add_relation(&format!("R{i}"), &["a", "b", "c"]))
                    .collect();
                let sigma: Vec<RelConstraint> = rels
                    .iter()
                    .map(|&r| RelConstraint::key(r, &["a"]))
                    .collect();
                let checker = ConsistencyChecker::new();
                b.iter(|| {
                    let spec = relational_to_spec(&schema, &sigma, rels[0], &["b".to_string()]);
                    checker.check(&spec.dtd, &spec.sigma).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bounded_search, bench_theorem31_reduction);
criterion_main!(benches);
