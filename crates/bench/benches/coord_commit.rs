//! Coordinated commits — a multi-process `xic-coord` fan-out vs. one
//! monolithic session.
//!
//! The same 12-singleton-shard workload as `shard_commit` (one unary key
//! per catalogue kind), spread over four `xic serve` worker processes by a
//! [`Coordinator`].  Both arms run the identical open + edit + commit
//! script; before timing, the coordinator's merged report is asserted
//! equal to the monolithic session's.  Two numbers matter:
//!
//! 1. **per-process constraints rechecked** — each worker's
//!    `incremental.constraints_rechecked` counter (read over the wire via
//!    worker stats) against the monolithic session's: every worker must
//!    recheck strictly fewer constraints, since it evaluates only its
//!    shard group;
//! 2. **cross-process commit ack latency** — wall time per routed
//!    apply+commit round (coordinator: route, fan out, merge, ack) against
//!    the in-process monolithic commit.
//!
//! Everything is recorded in `BENCH_coord.json` at the workspace root.

use std::path::PathBuf;
use std::time::Duration;

use xic_bench::{fmt_us, min_time};
use xic_constraints::{Constraint, ConstraintSet};
use xic_coord::{CoordConfig, Coordinator};
use xic_engine::{CompiledSpec, CorpusSession};
use xic_gen::{catalogue_dtd, random_document, DocGenConfig};
use xic_xml::{write_document, EditOp, NodeId, XmlTree};

const KINDS: usize = 12;
const WORKERS: usize = 4;
const NUM_DOCS: usize = 8;
/// Edits per run; edit `i` touches the key attribute of kind `i mod KINDS`,
/// so the stream cycles through every shard (and so every worker).
const EDITS_PER_RUN: usize = 36;
/// Timed repetitions (minimum taken; the counter deltas come from a single
/// untimed attribution pass of each arm).
const RUNS: usize = 3;

fn main() {
    let dtd = catalogue_dtd(KINDS);
    let mut sigma = ConstraintSet::new();
    for ty in dtd.types() {
        if let Some(&attr) = dtd.attrs_of(ty).first() {
            sigma.push(Constraint::unary_key(ty, attr));
        }
    }
    // The coordinator and its workers compile the spec from files; the
    // monolithic arm compiles the same bytes, so every party agrees on the
    // `SpecId` (it is the content hash).
    let dtd_src = dtd.render();
    let root = dtd.type_name(dtd.root()).to_string();
    let sigma_src = sigma.render(&dtd);
    let spec = CompiledSpec::from_sources(&dtd_src, Some(&root), &sigma_src)
        .expect("keys-only spec compiles");
    let plan = spec.shard_plan();
    assert_eq!(
        plan.num_shards(),
        KINDS,
        "disjoint unary keys must shard one-per-kind"
    );

    let scratch = std::env::temp_dir().join(format!("xic-coord-bench-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let dtd_path = scratch.join("spec.dtd");
    let sigma_path = scratch.join("spec.sigma");
    std::fs::write(&dtd_path, &dtd_src).expect("write dtd");
    std::fs::write(&sigma_path, &sigma_src).expect("write sigma");

    // Documents as wire bytes, plus the re-parsed trees every party's
    // arena will hold (node ids picked below are valid everywhere).
    let docs: Vec<(String, String, XmlTree)> = (0..NUM_DOCS)
        .map(|i| {
            let tree = random_document(
                spec.dtd(),
                &DocGenConfig {
                    seed: 300 + i as u64,
                    max_elements: 200,
                    star_fanout: 20,
                    value_pool: 50,
                    ..Default::default()
                },
            )
            .expect("catalogue DTD is satisfiable");
            let source = write_document(&tree, spec.dtd());
            let reparsed = spec.parse_document(&source).expect("round-trips");
            (format!("doc-{i}"), source, reparsed)
        })
        .collect();
    let total_nodes: usize = docs.iter().map(|(_, _, t)| t.num_nodes()).sum();

    // The deterministic edit stream: edit i rewrites the key attribute of
    // one element of kind (i mod KINDS) in document (i mod NUM_DOCS),
    // cycling values small enough to flip verdicts.  Idempotent per run.
    let kinds: Vec<_> = spec.dtd().types().collect();
    let ops: Vec<(usize, EditOp)> = (0..EDITS_PER_RUN)
        .filter_map(|i| {
            let victim = i % NUM_DOCS;
            let ty = kinds[1 + i % KINDS];
            let attr = *spec.dtd().attrs_of(ty).first()?;
            let element: NodeId = docs[victim].2.ext(ty).nth((i / KINDS) % 3)?;
            Some((
                victim,
                EditOp::SetAttr {
                    element,
                    attr,
                    value: format!("k{}", i % 5),
                },
            ))
        })
        .collect();
    assert!(ops.len() >= EDITS_PER_RUN / 2, "edit stream too sparse");

    // --- Coordinator arm. -------------------------------------------------
    let mut coordinator = Coordinator::launch(CoordConfig {
        xic_bin: xic_bin(),
        dtd: dtd_path,
        root: Some(root),
        constraints: Some(sigma_path),
        workers: WORKERS,
        scratch: scratch.clone(),
        session: "bench".to_string(),
        max_restarts: 1,
    })
    .expect("coordinator launches");
    assert_eq!(coordinator.num_groups(), WORKERS);

    let rechecked_of = |coordinator: &mut Coordinator, group: usize| -> u64 {
        coordinator
            .worker_stats(group)
            .expect("worker stats")
            .counter("incremental.constraints_rechecked")
            .unwrap_or(0)
    };

    // Attribution pass: per-worker counters around the full script.
    let before: Vec<u64> = (0..WORKERS)
        .map(|g| rechecked_of(&mut coordinator, g))
        .collect();
    let handles: Vec<u64> = docs
        .iter()
        .map(|(label, source, _)| coordinator.open_doc(label, source).expect("opens"))
        .collect();
    coordinator.commit().expect("base commit");
    for (victim, op) in &ops {
        coordinator
            .apply(handles[*victim], std::slice::from_ref(op))
            .expect("routed apply");
        std::hint::black_box(coordinator.commit().expect("fanned-out commit"));
    }
    let per_worker: Vec<u64> = (0..WORKERS)
        .map(|g| rechecked_of(&mut coordinator, g) - before[g])
        .collect();

    // --- Monolithic arm, same script. -------------------------------------
    let mono_before = rechecked_now();
    let mut mono = CorpusSession::new(&spec);
    let mono_handles: Vec<_> = docs
        .iter()
        .map(|(label, source, _)| mono.open_source(label, source).expect("opens"))
        .collect();
    mono.commit();
    for (victim, op) in &ops {
        mono.apply(mono_handles[*victim], std::slice::from_ref(op))
            .unwrap();
        std::hint::black_box(mono.commit());
    }
    let mono_rechecked = rechecked_now() - mono_before;

    // Verdict identity before timing: the merged multi-process report is
    // the monolithic report, or the numbers compare different computations.
    assert_eq!(
        coordinator.report(),
        mono.report(),
        "coordinator diverged from the monolithic session"
    );

    // Timed passes (state is idempotent per run, so re-running the stream
    // leaves both corpora unchanged).
    let coord_time = min_time(RUNS, || {
        for (victim, op) in &ops {
            coordinator
                .apply(handles[*victim], std::slice::from_ref(op))
                .expect("routed apply");
            std::hint::black_box(coordinator.commit().expect("fanned-out commit"));
        }
    });
    let mono_time = min_time(RUNS, || {
        for (victim, op) in &ops {
            mono.apply(mono_handles[*victim], std::slice::from_ref(op))
                .unwrap();
            std::hint::black_box(mono.commit());
        }
    });
    coordinator.shutdown();
    let _ = std::fs::remove_dir_all(&scratch);

    let max_worker = *per_worker.iter().max().unwrap();
    let sum_workers: u64 = per_worker.iter().sum();
    let reduction = mono_rechecked as f64 / max_worker.max(1) as f64;
    let coord_ack_us = us(coord_time) / ops.len() as f64;
    let mono_ack_us = us(mono_time) / ops.len() as f64;

    println!();
    println!("coord_commit — multi-process fan-out vs. one monolithic session");
    println!("----------------------------------------------------------------");
    println!(
        "{:<44} {} shards, {} workers, {} docs, {} nodes, {} edits",
        "workload",
        plan.num_shards(),
        WORKERS,
        NUM_DOCS,
        total_nodes,
        ops.len(),
    );
    println!(
        "{:<44} {:>12}",
        "constraints rechecked, monolithic", mono_rechecked
    );
    for (g, rechecked) in per_worker.iter().enumerate() {
        println!(
            "{:<44} {:>12}",
            format!("constraints rechecked, worker {g}"),
            rechecked
        );
    }
    println!(
        "{:<44} {:>12}",
        "constraints rechecked, busiest worker", max_worker
    );
    println!(
        "{:<44} {:>11.1}x",
        "per-process recheck reduction", reduction
    );
    println!(
        "{:<44} {:>12}",
        "commit ack latency, coordinator",
        format!("{coord_ack_us:.1}us")
    );
    println!(
        "{:<44} {:>12}",
        "commit ack latency, monolithic",
        format!("{mono_ack_us:.1}us")
    );
    println!(
        "{:<44} {:>12}",
        "wall time, coordinator",
        fmt_us(coord_time)
    );
    println!("{:<44} {:>12}", "wall time, monolithic", fmt_us(mono_time));

    let mut fields: Vec<(String, f64)> = vec![
        ("shards".into(), plan.num_shards() as f64),
        ("workers".into(), WORKERS as f64),
        ("docs".into(), NUM_DOCS as f64),
        ("nodes_total".into(), total_nodes as f64),
        ("edits".into(), ops.len() as f64),
        ("monolithic_rechecked".into(), mono_rechecked as f64),
        ("workers_rechecked_sum".into(), sum_workers as f64),
        ("workers_rechecked_max".into(), max_worker as f64),
        (
            "per_process_reduction".into(),
            (reduction * 10.0).round() / 10.0,
        ),
        ("coord_ack_us".into(), (coord_ack_us * 10.0).round() / 10.0),
        ("mono_ack_us".into(), (mono_ack_us * 10.0).round() / 10.0),
        ("coord_run_us".into(), us(coord_time)),
        ("mono_run_us".into(), us(mono_time)),
    ];
    for (g, rechecked) in per_worker.iter().enumerate() {
        fields.push((format!("worker{g}_rechecked"), *rechecked as f64));
    }
    let json = render_json(&fields);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_coord.json");
    std::fs::write(out, &json).expect("write BENCH_coord.json");
    println!("{:<44} {:>12}", "recorded", "BENCH_coord.json");
    println!("----------------------------------------------------------------");

    for (g, &rechecked) in per_worker.iter().enumerate() {
        assert!(
            rechecked < mono_rechecked,
            "worker {g} rechecked {rechecked} constraints, not fewer than \
             the monolithic arm's {mono_rechecked}"
        );
    }
    assert!(
        reduction >= 2.0,
        "with {KINDS} shards over {WORKERS} processes the busiest worker \
         should recheck several times fewer constraints (got {reduction:.1}x)"
    );
}

/// Current value of the process-wide `incremental.constraints_rechecked`
/// counter (the monolithic arm runs in this process).
fn rechecked_now() -> u64 {
    xic_telemetry::global()
        .snapshot()
        .counter("incremental.constraints_rechecked")
        .unwrap_or(0)
}

/// The `xic` binary the coordinator spawns shard workers from: `XIC_BIN`
/// when set, otherwise the sibling of this bench executable's
/// `target/{debug,release}` directory.
fn xic_bin() -> PathBuf {
    if let Ok(path) = std::env::var("XIC_BIN") {
        return PathBuf::from(path);
    }
    let exe = std::env::current_exe().expect("bench executable path");
    for dir in exe.ancestors().skip(1) {
        let candidate = dir.join(format!("xic{}", std::env::consts::EXE_SUFFIX));
        if candidate.is_file() {
            return candidate;
        }
    }
    panic!("cannot locate the `xic` binary; build `xic-cli` or set XIC_BIN");
}

fn us(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e6 * 10.0).round() / 10.0
}

/// Tiny flat-object JSON rendering (the workspace is dependency-free).
fn render_json(fields: &[(String, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (key, value)) in fields.iter().enumerate() {
        out.push_str(&format!("  \"{key}\": {value}"));
        out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}
