//! E10 — cost of constructing the cardinality system Ψ(D,Σ) (Theorem 4.1
//! promises an O(s² log s) construction; the implementation is close to
//! linear in |D| + |Σ| because the big-constant rewriting is deferred to the
//! solver).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xic_core::{CardinalitySystem, SystemOptions};
use xic_gen::{fixed_dtd_growing_sigma, unary_consistency_family};

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_encoding_construction");
    group.sample_size(20);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));
    for spec in unary_consistency_family(&[4, 16, 64]) {
        group.bench_with_input(
            BenchmarkId::from_parameter(&spec.label),
            &spec,
            |b, spec| {
                b.iter(|| {
                    CardinalitySystem::build(&spec.dtd, &spec.sigma, &SystemOptions::default())
                });
            },
        );
    }
    for spec in fixed_dtd_growing_sigma(8, &[64], 31) {
        group.bench_with_input(
            BenchmarkId::from_parameter(&spec.label),
            &spec,
            |b, spec| {
                b.iter(|| {
                    CardinalitySystem::build(&spec.dtd, &spec.sigma, &SystemOptions::default())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
