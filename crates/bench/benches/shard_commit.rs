//! Shard-fanned commits — shard-scoped sessions vs. one monolithic session.
//!
//! The workload shard plans exist for: a specification whose touch-graph
//! splits into many independent components (here one unary key per
//! catalogue kind, so every constraint is its own shard), a corpus of
//! documents open against it, and a commit stream a coordinator wants to
//! fan out one-shard-per-worker.  Two strategies run the same script:
//!
//! 1. **monolithic** — one `CorpusSession` re-evaluates every constraint:
//!    all of Σ per document at open, and every dirtied constraint per edit;
//! 2. **shard-scoped** — a session narrowed with
//!    `CorpusSession::scope_to_shards(&[0])`, the per-worker half of a
//!    fanned-out commit: in-scope constraints are re-evaluated, the rest
//!    are skipped (counted in `shard.skipped`) and never surface in its
//!    reports.
//!
//! Verdict identity is asserted before timing: the scoped session's report
//! must equal `project_report(monolithic_report, plan, 0)` exactly.  The
//! headline number is the reduction in the global
//! `incremental.constraints_rechecked` counter — the scoped arm must
//! recheck strictly fewer constraints (≈ 1/shards of the monolithic arm on
//! this plan).  Everything is recorded in `BENCH_shard.json` at the
//! workspace root.

use std::time::Duration;

use xic_bench::{fmt_us, min_time};
use xic_constraints::{Constraint, ConstraintSet};
use xic_engine::{project_report, BatchReport, CompiledSpec, CorpusSession};
use xic_gen::{catalogue_dtd, random_document, DocGenConfig};
use xic_xml::{EditOp, NodeId, XmlTree};

const KINDS: usize = 12;
const NUM_DOCS: usize = 16;
/// Edits per run; edit `i` touches the key attribute of kind `i mod KINDS`,
/// so exactly one edit in `KINDS` lands in shard 0's scope.
const EDITS_PER_RUN: usize = 48;
/// Timed repetitions (minimum taken; the counter deltas come from a single
/// extra untimed run of each arm).
const RUNS: usize = 3;

fn main() {
    let dtd = catalogue_dtd(KINDS);
    let mut sigma = ConstraintSet::new();
    for ty in dtd.types() {
        if let Some(&attr) = dtd.attrs_of(ty).first() {
            sigma.push(Constraint::unary_key(ty, attr));
        }
    }
    let spec = CompiledSpec::compile(dtd, sigma).expect("keys-only spec compiles");
    let plan = spec.shard_plan();
    assert_eq!(
        plan.num_shards(),
        KINDS,
        "disjoint unary keys must shard one-per-kind"
    );

    let trees: Vec<XmlTree> = (0..NUM_DOCS)
        .map(|i| {
            random_document(
                spec.dtd(),
                &DocGenConfig {
                    seed: 300 + i as u64,
                    max_elements: 400,
                    star_fanout: 40,
                    value_pool: 50,
                    ..Default::default()
                },
            )
            .expect("catalogue DTD is satisfiable")
        })
        .collect();
    let total_nodes: usize = trees.iter().map(XmlTree::num_nodes).sum();

    // The deterministic edit stream, computed once against the pristine
    // trees (attribute rewrites never renumber nodes): edit i rewrites the
    // key attribute of one element of kind (i mod KINDS) in document
    // (i mod NUM_DOCS), cycling values small enough to flip verdicts.
    let kinds: Vec<_> = spec.dtd().types().collect();
    let ops: Vec<(usize, EditOp)> = (0..EDITS_PER_RUN)
        .filter_map(|i| {
            let victim = i % NUM_DOCS;
            let ty = kinds[1 + i % KINDS];
            let attr = *spec.dtd().attrs_of(ty).first()?;
            let element: NodeId = trees[victim].ext(ty).nth((i / KINDS) % 3)?;
            Some((
                victim,
                EditOp::SetAttr {
                    element,
                    attr,
                    value: format!("k{}", i % 5),
                },
            ))
        })
        .collect();
    assert!(ops.len() >= EDITS_PER_RUN / 2, "edit stream too sparse");

    let run_arm = |scoped: bool| -> (CorpusSession<'_>, u64) {
        let before = rechecked_now();
        let mut session = CorpusSession::new(&spec);
        if scoped {
            session.scope_to_shards(&[0]);
        }
        let handles: Vec<_> = trees
            .iter()
            .enumerate()
            .map(|(i, t)| session.open(format!("doc-{i}"), t.clone()).expect("opens"))
            .collect();
        session.commit();
        for (victim, op) in &ops {
            session
                .apply(handles[*victim], std::slice::from_ref(op))
                .unwrap();
            std::hint::black_box(session.commit());
        }
        (session, rechecked_now() - before)
    };

    // Verdict identity before timing: the scoped session reports exactly
    // the shard-0 projection of the monolithic report.
    let (monolithic_session, monolithic_rechecked) = run_arm(false);
    let (scoped_session, scoped_rechecked) = run_arm(true);
    let monolithic_report: BatchReport = monolithic_session.report();
    assert_eq!(
        scoped_session.report(),
        project_report(&monolithic_report, plan, 0),
        "scoped session diverged from the projection — numbers are meaningless"
    );
    drop((monolithic_session, scoped_session));

    let monolithic_time = min_time(RUNS, || {
        std::hint::black_box(run_arm(false).0.num_docs());
    });
    let scoped_time = min_time(RUNS, || {
        std::hint::black_box(run_arm(true).0.num_docs());
    });

    let reduction = monolithic_rechecked as f64 / scoped_rechecked.max(1) as f64;

    println!();
    println!("shard_commit — shard-scoped sessions vs. one monolithic session");
    println!("----------------------------------------------------------------");
    println!(
        "{:<44} {} shards, {} docs, {} nodes, {} edits",
        "workload",
        plan.num_shards(),
        NUM_DOCS,
        total_nodes,
        ops.len(),
    );
    println!(
        "{:<44} {:>12}",
        "constraints rechecked, monolithic", monolithic_rechecked
    );
    println!(
        "{:<44} {:>12}",
        "constraints rechecked, shard-0 scoped", scoped_rechecked
    );
    println!("{:<44} {:>11.1}x", "recheck reduction", reduction);
    println!(
        "{:<44} {:>12}",
        "wall time, monolithic",
        fmt_us(monolithic_time)
    );
    println!(
        "{:<44} {:>12}",
        "wall time, shard-0 scoped",
        fmt_us(scoped_time)
    );

    let json = render_json(&[
        ("shards", plan.num_shards() as f64),
        ("docs", NUM_DOCS as f64),
        ("nodes_total", total_nodes as f64),
        ("edits", ops.len() as f64),
        ("monolithic_rechecked", monolithic_rechecked as f64),
        ("scoped_rechecked", scoped_rechecked as f64),
        ("recheck_reduction", (reduction * 10.0).round() / 10.0),
        ("monolithic_us", us(monolithic_time)),
        ("scoped_us", us(scoped_time)),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    std::fs::write(out, &json).expect("write BENCH_shard.json");
    println!("{:<44} {:>12}", "recorded", "BENCH_shard.json");
    println!("----------------------------------------------------------------");

    assert!(
        scoped_rechecked < monolithic_rechecked,
        "a shard-scoped session must recheck strictly fewer constraints \
         (monolithic {monolithic_rechecked}, scoped {scoped_rechecked})"
    );
    assert!(
        reduction >= 2.0,
        "on a {KINDS}-singleton-shard plan the scoped arm should recheck \
         several times fewer constraints (got {reduction:.1}x)"
    );
}

/// Current value of the process-wide `incremental.constraints_rechecked`
/// counter (the arms run sequentially, so deltas are attributable).
fn rechecked_now() -> u64 {
    xic_telemetry::global()
        .snapshot()
        .counter("incremental.constraints_rechecked")
        .unwrap_or(0)
}

fn us(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e6 * 10.0).round() / 10.0
}

/// Tiny flat-object JSON rendering (the workspace is dependency-free).
fn render_json(fields: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (key, value)) in fields.iter().enumerate() {
        out.push_str(&format!("  \"{key}\": {value}"));
        out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}
