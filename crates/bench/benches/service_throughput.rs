//! Validation service — framed loopback edit/commit throughput vs. the
//! in-process corpus session it wraps.
//!
//! The workload the service exists for: a corpus of documents open in one
//! named server session, a stream of point edits arriving over the wire,
//! and an acknowledged `BatchDelta` wanted per commit.  Two arms drive the
//! *same* deterministic edit stream:
//!
//! 1. **wire (framed loopback)** — `Client::apply` + `Client::commit`
//!    against an `xic-server` on 127.0.0.1: every edit pays request
//!    framing, a TCP round trip, the session actor's channel hop, and the
//!    delta response encode/decode;
//! 2. **in-process** — `CorpusSession::apply` + `commit()` on a local
//!    session, the floor the service is built on.
//!
//! Verdict identity is asserted before the numbers are trusted: after both
//! arms run, a replica synced over the wire must reproduce the local
//! session's report exactly.  Like the other session benches this is not a
//! statistical benchmark — the minimum over runs is the honest cost on
//! this shared container.  Results land in `BENCH_service.json`.

use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::sync::Arc;
use std::time::Duration;

use xic_bench::{fmt_us, min_time};
use xic_engine::{BatchDoc, CompiledSpec, CorpusReplica, CorpusSession};
use xic_gen::{
    catalogue_dtd, random_document, random_unary_constraints, ConstraintGenConfig, DocGenConfig,
};
use xic_server::{Client, Server, ServerConfig};
use xic_xml::{write_document, EditOp, NodeId};

const KINDS: usize = 8;
const NUM_DOCS: usize = 16;
/// Edits per timed run (each `apply` is followed by a `commit`).
const EDITS_PER_RUN: usize = 48;
/// Runs per arm; the minimum is reported.
const RUNS: usize = 5;

fn main() {
    let dtd = catalogue_dtd(KINDS);
    let sigma = random_unary_constraints(
        &dtd,
        &ConstraintGenConfig {
            keys: 8,
            foreign_keys: 8,
            inclusions: 2,
            seed: 11,
            ..Default::default()
        },
    );
    let spec = Arc::new(CompiledSpec::compile(dtd, sigma).expect("generated spec compiles"));

    let sources: Vec<BatchDoc> = (0..NUM_DOCS)
        .map(|i| {
            let tree = random_document(
                spec.dtd(),
                &DocGenConfig {
                    seed: 300 + i as u64,
                    max_elements: 600,
                    star_fanout: 60,
                    value_pool: 1_000_000,
                    ..Default::default()
                },
            )
            .expect("catalogue DTD is satisfiable");
            BatchDoc::new(format!("doc-{i}.xml"), write_document(&tree, spec.dtd()))
        })
        .collect();

    // The deterministic edit stream, derived from a probe session.  Node
    // ids are deterministic per source, so the same ops are valid against
    // the server session that opened identical sources in the same order.
    let mut probe = CorpusSession::new(&spec);
    let probe_handles: Vec<_> = sources
        .iter()
        .map(|d| probe.open_source(&d.label, &d.content).expect("parses"))
        .collect();
    let ops: Vec<(usize, EditOp)> = (0..EDITS_PER_RUN)
        .map(|i| {
            let victim = i % NUM_DOCS;
            let tree = probe.tree(probe_handles[victim]).unwrap();
            let editable: Vec<NodeId> = tree
                .elements()
                .filter(|&n| !tree.attributes(n).is_empty())
                .collect();
            let element = editable[(i * 997) % editable.len()];
            let (attr, _) = tree.attributes(element)[0];
            (
                victim,
                EditOp::SetAttr {
                    element,
                    attr,
                    value: format!("edited-{i}"),
                },
            )
        })
        .collect();
    let total_nodes: usize = probe_handles
        .iter()
        .map(|&h| probe.tree(h).unwrap().num_nodes())
        .sum();
    drop(probe);

    println!();
    println!("service_throughput — framed loopback edit/commit vs. in-process session");
    println!("------------------------------------------------------------------------");
    println!(
        "{:<44} {} docs, {} nodes, {} constraints, {} edits/run",
        "workload",
        NUM_DOCS,
        total_nodes,
        spec.sigma().len(),
        EDITS_PER_RUN,
    );

    // --- Wire arm. --------------------------------------------------------
    let server = Server::start(
        Arc::clone(&spec),
        ServerConfig {
            tcp: Some(SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0)),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.tcp_addr().unwrap();
    let mut client = Client::connect_tcp(addr, spec.id(), "bench").expect("client connects");
    let handles: Vec<u64> = sources
        .iter()
        .map(|d| client.open_doc(&d.label, &d.content).expect("opens"))
        .collect();
    client.commit().expect("base commit");

    // The SetAttr stream is idempotent per run, so re-running it leaves
    // the corpus in the same final state every time.
    let wire = min_time(RUNS, || {
        for (victim, op) in &ops {
            client
                .apply(handles[*victim], std::slice::from_ref(op))
                .expect("apply over the wire");
            std::hint::black_box(client.commit().expect("commit over the wire"));
        }
    });

    // --- In-process arm, same stream. --------------------------------------
    let mut local = CorpusSession::new(&spec);
    let local_handles: Vec<_> = sources
        .iter()
        .map(|d| local.open_source(&d.label, &d.content).expect("parses"))
        .collect();
    local.commit();
    let in_process = min_time(RUNS, || {
        for (victim, op) in &ops {
            local
                .apply(local_handles[*victim], std::slice::from_ref(op))
                .unwrap();
            std::hint::black_box(local.commit());
        }
    });

    // Verdict identity: a replica synced over the wire reproduces the
    // local session's report exactly — otherwise the timings compare
    // different computations.
    let mut replica = CorpusReplica::new(spec.id());
    client.sync_replica(&mut replica).expect("replica syncs");
    assert_eq!(
        replica.report(),
        local.report(),
        "wire and in-process arms disagree — timings are meaningless"
    );

    client.shutdown().expect("graceful shutdown");
    server.wait();

    let per_commit_wire = wire.as_secs_f64() / EDITS_PER_RUN as f64;
    let per_commit_local = in_process.as_secs_f64() / EDITS_PER_RUN as f64;
    let overhead = per_commit_wire / per_commit_local.max(1e-12);
    let wire_eps = EDITS_PER_RUN as f64 / wire.as_secs_f64();

    println!(
        "{:<44} {:>12}",
        format!("wire loopback, {EDITS_PER_RUN} edit+commit"),
        fmt_us(wire)
    );
    println!(
        "{:<44} {:>12}",
        format!("in-process session, {EDITS_PER_RUN} edit+commit"),
        fmt_us(in_process)
    );
    println!(
        "{:<44} {:>9.2} µs",
        "per acknowledged commit, wire",
        per_commit_wire * 1e6
    );
    println!(
        "{:<44} {:>9.2} µs",
        "per commit, in-process",
        per_commit_local * 1e6
    );
    println!("{:<44} {:>11.2}x", "wire overhead per commit", overhead);
    println!(
        "{:<44} {:>9.0} commits/s",
        "framed loopback throughput", wire_eps
    );

    let json = render_json(&[
        ("docs", NUM_DOCS as f64),
        ("nodes_total", total_nodes as f64),
        ("constraints", spec.sigma().len() as f64),
        ("edits_per_run", EDITS_PER_RUN as f64),
        ("wire_total_us", us(wire)),
        ("in_process_total_us", us(in_process)),
        ("per_commit_wire_us", (per_commit_wire * 1e7).round() / 10.0),
        (
            "per_commit_in_process_us",
            (per_commit_local * 1e7).round() / 10.0,
        ),
        ("wire_overhead_x", (overhead * 100.0).round() / 100.0),
        ("wire_commits_per_sec", wire_eps.round()),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(out, &json).expect("write BENCH_service.json");
    println!("{:<44} {:>12}", "recorded", "BENCH_service.json");
    println!("------------------------------------------------------------------------");
}

fn us(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e6 * 10.0).round() / 10.0
}

/// Tiny flat-object JSON rendering (the workspace is dependency-free).
fn render_json(fields: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (key, value)) in fields.iter().enumerate() {
        out.push_str(&format!("  \"{key}\": {value}"));
        out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}
