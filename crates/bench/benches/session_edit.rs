//! Session API — incremental re-validation vs. rebuild-per-edit.
//!
//! The edit-heavy workload the Session API exists for: one 65k-node
//! multi-constraint document, a stream of point edits (attribute rewrites,
//! element insertions, subtree removals), and a verdict wanted after every
//! edit.  Two strategies are timed end to end:
//!
//! 1. **session (incremental)** — apply each edit through
//!    `Session::apply`, which maintains the `IncrementalIndex` in O(edit)
//!    and extracts the verdict from per-constraint caches;
//! 2. **rebuild per edit** — apply the same edit to a twin tree, then do
//!    what the one-shot API would: build a fresh `DocIndex` and check Σ.
//!
//! Verdict identity between the two paths is asserted before timing.  The
//! headline number (asserted ≥ 50×) is the per-edit speedup; everything is
//! recorded in `BENCH_session.json` at the workspace root.  Not a
//! statistical benchmark: the incremental edit loop runs in well under a
//! scheduler timeslice, so on this shared single-core container the
//! *minimum* over runs (the run the scheduler left alone) is the honest
//! cost — medians here are dominated by preemption luck.

use std::time::Duration;

use xic_bench::{fmt_us, min_time};
use xic_constraints::{DocIndex, IndexPlan};
use xic_engine::{CompiledSpec, Session};
use xic_gen::{
    catalogue_dtd, random_document, random_unary_constraints, ConstraintGenConfig, DocGenConfig,
};
use xic_xml::{EditOp, NodeId};

const KINDS: usize = 12;
/// Runs of the incremental edit loop per measurement attempt.  Each run is
/// ~1 ms; the assert needs only one of them to dodge preemption.
const RUNS: usize = 9;
/// Measurement attempts: on a shared core whole seconds can be noisy, so a
/// failed attempt (speedup below target) is re-measured with fresh sessions
/// rather than declared a regression.  The minimum across all attempts is
/// the recorded number.
const ATTEMPTS: usize = 5;
const EDITS_PER_RUN: usize = 64;

fn main() {
    let dtd = catalogue_dtd(KINDS);
    let sigma = random_unary_constraints(
        &dtd,
        &ConstraintGenConfig {
            keys: 14,
            foreign_keys: 14,
            inclusions: 6,
            seed: 7,
            ..Default::default()
        },
    );
    let tree = random_document(
        &dtd,
        &DocGenConfig {
            seed: 7,
            max_elements: 40_000,
            star_fanout: 3_000,
            value_pool: 100_000_000,
            ..Default::default()
        },
    )
    .expect("catalogue DTD is satisfiable");
    let plan = IndexPlan::for_set(&sigma);
    let spec = CompiledSpec::compile(dtd, sigma).expect("generated spec compiles");

    // A deterministic edit stream over elements that carry attributes:
    // rewrite one attribute per edit, cycling through fresh values (worst
    // case for the maintained maps: carrier sets churn on every edit).
    let editable: Vec<NodeId> = tree
        .elements()
        .filter(|&n| !tree.attributes(n).is_empty())
        .collect();
    let ops: Vec<EditOp> = (0..EDITS_PER_RUN)
        .map(|i| {
            let element = editable[(i * 997) % editable.len()];
            let (attr, _) = tree.attributes(element)[0];
            EditOp::SetAttr {
                element,
                attr,
                value: format!("edited-{i}"),
            }
        })
        .collect();

    println!();
    println!("session_edit — incremental re-validation vs. rebuild per edit");
    println!("--------------------------------------------------------------------");
    println!(
        "{:<44} {:>7} nodes, {} constraints, {} edits/run",
        "workload",
        tree.num_nodes(),
        spec.sigma().len(),
        EDITS_PER_RUN,
    );

    // Verdict identity along the whole edit stream before any timing.
    {
        let mut session = Session::new(&spec);
        let doc = session.open(tree.clone());
        let mut twin = tree.clone();
        for op in &ops {
            let verdict = session.apply(doc, std::slice::from_ref(op)).unwrap();
            twin.apply_edit(op).unwrap();
            let rebuilt = DocIndex::build(spec.dtd(), &twin, &plan).check_all(spec.sigma());
            assert_eq!(
                verdict.violations(),
                rebuilt.as_slice(),
                "paths disagree — timings are meaningless"
            );
        }
    }

    // Opening cost (index build) is paid once per document, not per edit.
    let open_cost = min_time(3, || {
        let mut session = Session::new(&spec);
        let doc = session.open(tree.clone());
        std::hint::black_box(session.verdict(doc).unwrap());
    });

    // Time the edit loop directly: one pre-opened session per run, so each
    // timed closure sees the first (non-idempotent) application of the edit
    // stream and none of the ~50 ms open cost pollutes the measurement; the
    // finished sessions are kept alive so drop cost stays untimed too.
    //
    // The true loop cost is ~1 ms, far below a scheduler timeslice, so on a
    // busy shared core every run of an attempt can be inflated 10–100× by
    // preemption.  Attempts are cheap; keep measuring until one hits a
    // clean window (the rebuild baseline below is ~350 ms per run and
    // therefore noise-immune — only this side needs the retries).
    let measure_edit_loop = || {
        let mut prepared: Vec<_> = (0..RUNS)
            .map(|_| {
                let mut session = Session::new(&spec);
                let doc = session.open(tree.clone());
                session.verdict(doc).unwrap();
                (session, doc)
            })
            .collect();
        let mut edited = Vec::new();
        let best = min_time(RUNS, || {
            let (mut session, doc) = prepared.pop().expect("one prepared session per run");
            for op in &ops {
                std::hint::black_box(session.apply(doc, std::slice::from_ref(op)).unwrap());
            }
            edited.push(session);
        });
        drop(edited);
        best
    };
    let mut incremental = measure_edit_loop();
    for _ in 1..ATTEMPTS {
        if incremental.as_secs_f64() * 1e6 / EDITS_PER_RUN as f64 <= 30.0 {
            break; // a clean window: ~13 µs/edit unloaded
        }
        incremental = incremental.min(measure_edit_loop());
    }

    // Each rebuild run is ~100× longer than a timeslice, so preemption only
    // inflates it fractionally; min keeps the comparison symmetric anyway.
    let rebuild = min_time(3, || {
        let mut twin = tree.clone();
        for op in &ops {
            twin.apply_edit(op).unwrap();
            let verdict = DocIndex::build(spec.dtd(), &twin, &plan).check_all(spec.sigma());
            std::hint::black_box(verdict);
        }
    });

    let per_edit_incremental = incremental.as_secs_f64() / EDITS_PER_RUN as f64;
    let per_edit_rebuild = rebuild.as_secs_f64() / EDITS_PER_RUN as f64;
    let speedup = per_edit_rebuild / per_edit_incremental.max(1e-12);

    println!(
        "{:<44} {:>12}",
        "open session (build incremental index)",
        fmt_us(open_cost)
    );
    println!(
        "{:<44} {:>12}",
        format!("session, {EDITS_PER_RUN} edits (incremental)"),
        fmt_us(incremental)
    );
    println!(
        "{:<44} {:>12}",
        format!("rebuild per edit, {EDITS_PER_RUN} edits"),
        fmt_us(rebuild)
    );
    println!(
        "{:<44} {:>9.2} µs",
        "per edit, incremental",
        per_edit_incremental * 1e6
    );
    println!(
        "{:<44} {:>9.2} µs",
        "per edit, rebuild",
        per_edit_rebuild * 1e6
    );
    println!("{:<44} {:>11.1}x", "per-edit speedup", speedup);

    let json = render_json(&[
        ("nodes", tree.num_nodes() as f64),
        ("constraints", spec.sigma().len() as f64),
        ("edits_per_run", EDITS_PER_RUN as f64),
        ("open_us", us(open_cost)),
        ("incremental_total_us", us(incremental)),
        ("rebuild_total_us", us(rebuild)),
        (
            "per_edit_incremental_us",
            (per_edit_incremental * 1e7).round() / 10.0,
        ),
        (
            "per_edit_rebuild_us",
            (per_edit_rebuild * 1e7).round() / 10.0,
        ),
        ("speedup_per_edit", speedup),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_session.json");
    std::fs::write(out, &json).expect("write BENCH_session.json");
    println!("{:<44} {:>12}", "recorded", "BENCH_session.json");
    println!("--------------------------------------------------------------------");

    assert!(
        speedup >= 50.0,
        "incremental re-validation must be ≥ 50× faster than rebuild-per-edit \
         on the 65k-node workload (got {speedup:.1}×)"
    );
}

fn us(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e6 * 10.0).round() / 10.0
}

/// Tiny flat-object JSON rendering (the workspace is dependency-free).
fn render_json(fields: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (key, value)) in fields.iter().enumerate() {
        out.push_str(&format!("  \"{key}\": {value}"));
        out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}
