//! Session persistence — replay-from-log vs. re-parse-and-revalidate.
//!
//! The workload journal persistence exists for: a validation peer holds a
//! document open (recovered once from a session log) and a stream of point
//! edits arrives as op records.  Two ways to track the primary:
//!
//! 1. **replay from the log (incremental)** — apply each op through the
//!    session, maintaining the incremental indexes: O(edit) per update,
//!    the document is never re-parsed;
//! 2. **re-ship + re-parse + re-validate** — what a log-less replica does
//!    on every change notification: receive the full serialized document,
//!    parse it and run the one-shot `T ⊨ Σ` check: O(document) per update.
//!
//! Verdict identity between the two paths is asserted along the whole edit
//! stream before timing.  The headline number (asserted ≥ 10×) is the
//! per-update speedup of log replay; the one-shot costs — persisting a log
//! and cold-recovering a session from it — are recorded alongside in
//! `BENCH_persist.json` at the workspace root.  Like `session_edit`, this
//! is a min-of-runs harness, not a statistical benchmark: the incremental
//! side runs well under a scheduler timeslice on this shared single core.

use std::time::Duration;

use xic_bench::{fmt_us, min_time};
use xic_engine::{CompiledSpec, Session};
use xic_gen::{
    catalogue_dtd, random_document, random_unary_constraints, ConstraintGenConfig, DocGenConfig,
};
use xic_xml::{write_document, EditOp, NodeId, XmlTree};

const KINDS: usize = 10;
/// Edits per timed run.
const EDITS_PER_RUN: usize = 48;
/// Runs of the incremental loop per measurement attempt.
const RUNS: usize = 7;
/// Re-measure attempts for the preemption-exposed incremental side.
const ATTEMPTS: usize = 5;

fn main() {
    let dtd = catalogue_dtd(KINDS);
    let sigma = random_unary_constraints(
        &dtd,
        &ConstraintGenConfig {
            keys: 10,
            foreign_keys: 10,
            inclusions: 4,
            seed: 7,
            ..Default::default()
        },
    );
    let spec = CompiledSpec::compile(dtd, sigma).expect("generated spec compiles");

    let tree = random_document(
        spec.dtd(),
        &DocGenConfig {
            seed: 42,
            max_elements: 12_000,
            star_fanout: 160,
            value_pool: 1_000_000,
            ..Default::default()
        },
    )
    .expect("catalogue DTD is satisfiable");

    // The deterministic edit stream: rewrite one attribute per update.
    let editable: Vec<NodeId> = tree
        .elements()
        .filter(|&n| !tree.attributes(n).is_empty())
        .collect();
    let ops: Vec<EditOp> = (0..EDITS_PER_RUN)
        .map(|i| {
            let element = editable[(i * 997) % editable.len()];
            let (attr, _) = tree.attributes(element)[0];
            EditOp::SetAttr {
                element,
                attr,
                value: format!("edited-{i}"),
            }
        })
        .collect();

    let mut log = std::env::temp_dir();
    log.push(format!(
        "xic-bench-session-persist-{}.xicj",
        std::process::id()
    ));
    std::fs::remove_file(&log).ok();

    println!();
    println!("session_persist — replay-from-log vs. re-parse-and-revalidate");
    println!("--------------------------------------------------------------");
    println!(
        "{:<44} {} nodes, {} constraints, {} edits/run",
        "workload",
        tree.num_nodes(),
        spec.sigma().len(),
        EDITS_PER_RUN,
    );

    // Verdict identity along the whole stream before any timing: the
    // incremental replica and the re-parse path agree on every update.
    {
        let mut session = Session::new(&spec);
        let doc = session.open(tree.clone());
        for op in &ops {
            let verdict = session.apply(doc, std::slice::from_ref(op)).unwrap();
            let source = write_document(session.tree(doc).unwrap(), spec.dtd());
            let reparsed = spec
                .parse_document(&source)
                .expect("writer output reparses");
            let cold = spec.check_document(&reparsed);
            assert_eq!(
                verdict.violations().len(),
                cold.len(),
                "paths disagree — timings are meaningless"
            );
        }
    }

    // One-shot costs: persist the opened document, then cold-recover it.
    let mut session = Session::new(&spec);
    let doc = session.open(tree.clone());
    let persist = min_time(3, || {
        std::fs::remove_file(&log).ok();
        std::hint::black_box(session.persist_to(doc, &log).expect("persist"));
    });
    let recover = min_time(3, || {
        let mut fresh = Session::new(&spec);
        let recovery = fresh.recover_from(&log).expect("recover");
        std::hint::black_box(fresh.verdict(recovery.handle).unwrap());
    });

    // Incremental side: a recovered replica session applying the op
    // stream (index maintenance + verdict per update).
    let measure_replay = || {
        let mut prepared: Vec<(Session<'_>, _)> = (0..RUNS)
            .map(|_| {
                let mut s = Session::new(&spec);
                let recovery = s.recover_from(&log).expect("recover");
                (s, recovery.handle)
            })
            .collect();
        let mut edited = Vec::new();
        let best = min_time(RUNS, || {
            let (mut s, handle) = prepared.pop().expect("one prepared session per run");
            for op in &ops {
                std::hint::black_box(s.apply(handle, std::slice::from_ref(op)).unwrap());
            }
            edited.push(s);
        });
        drop(edited);
        best
    };
    let mut replay = measure_replay();
    for _ in 1..ATTEMPTS {
        if replay.as_secs_f64() * 1e6 / EDITS_PER_RUN as f64 <= 150.0 {
            break; // a clean scheduler window
        }
        replay = replay.min(measure_replay());
    }

    // Re-parse side: every update re-ships the serialized document, which
    // the replica parses and re-checks from scratch.  A single iteration
    // is far longer than a timeslice, so min-of-3 over 2 updates is
    // noise-immune without taking minutes.
    let current_source = write_document(session.tree(doc).unwrap(), spec.dtd());
    let reparse_updates = 2usize;
    let reparse = min_time(3, || {
        for _ in 0..reparse_updates {
            let reparsed: XmlTree = spec
                .parse_document(&current_source)
                .expect("writer output reparses");
            std::hint::black_box(spec.check_document(&reparsed));
        }
    });

    let per_update_replay = replay.as_secs_f64() / EDITS_PER_RUN as f64;
    let per_update_reparse = reparse.as_secs_f64() / reparse_updates as f64;
    let speedup = per_update_reparse / per_update_replay.max(1e-12);

    println!(
        "{:<44} {:>12}",
        "persist session log (snapshot + write)",
        fmt_us(persist)
    );
    println!(
        "{:<44} {:>12}",
        "cold recover (read + rebuild + verdict)",
        fmt_us(recover)
    );
    println!(
        "{:<44} {:>12}",
        format!("replay {EDITS_PER_RUN} updates from ops (incremental)"),
        fmt_us(replay)
    );
    println!(
        "{:<44} {:>12}",
        format!("re-parse + re-validate x{reparse_updates}"),
        fmt_us(reparse)
    );
    println!(
        "{:<44} {:>9.2} µs",
        "per update, log replay",
        per_update_replay * 1e6
    );
    println!(
        "{:<44} {:>9.2} µs",
        "per update, re-parse",
        per_update_reparse * 1e6
    );
    println!("{:<44} {:>11.1}x", "per-update speedup", speedup);

    let json = render_json(&[
        ("nodes", session.tree(doc).unwrap().num_nodes() as f64),
        ("constraints", spec.sigma().len() as f64),
        ("edits_per_run", EDITS_PER_RUN as f64),
        ("persist_us", us(persist)),
        ("recover_us", us(recover)),
        ("replay_total_us", us(replay)),
        (
            "per_update_replay_us",
            (per_update_replay * 1e7).round() / 10.0,
        ),
        (
            "per_update_reparse_us",
            (per_update_reparse * 1e7).round() / 10.0,
        ),
        ("speedup_per_update", (speedup * 10.0).round() / 10.0),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_persist.json");
    std::fs::write(out, &json).expect("write BENCH_persist.json");
    println!("{:<44} {:>12}", "recorded", "BENCH_persist.json");
    println!("--------------------------------------------------------------");
    std::fs::remove_file(&log).ok();

    assert!(
        speedup >= 10.0,
        "replaying an update from the op log must be ≥ 10× faster than \
         re-shipping + re-parsing + re-validating the document (got {speedup:.1}×)"
    );
}

fn us(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e6 * 10.0).round() / 10.0
}

/// Tiny flat-object JSON rendering (the workspace is dependency-free).
fn render_json(fields: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (key, value)) in fields.iter().enumerate() {
        out.push_str(&format!("  \"{key}\": {value}"));
        out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}
