//! Telemetry overhead — instrumented vs. timing-disabled corpus commits.
//!
//! The ISSUE 6 budget: the metrics and span instrumentation threaded
//! through `CorpusSession::apply`/`commit` must cost **≤ 5%** on the
//! corpus edit loop.  Two arms run the identical workload (the
//! `corpus_edit` shape: one spec, a corpus of open documents, a stream of
//! attribute edits, a commit after every batch):
//!
//! 1. **timing on** — a fresh registry with its runtime timing gate at the
//!    default (enabled): every apply/commit/re-check latency is clocked
//!    into histograms, counters and gauges move;
//! 2. **timing off** — `MetricsRegistry::set_timing(false)`: one relaxed
//!    load short-circuits every clock, which is the documented cheap mode
//!    (counters still move — `CacheStats` semantics depend on them).
//!
//! `overhead = (t_on − t_off) / t_off`, asserted ≤ 5% (the CI
//! `metrics-overhead` job runs this binary).  Building with
//! `--features telemetry-off` compiles every instrument away entirely —
//! the control arm proving the runtime gate is already within noise of
//! the no-op build; the JSON records which build produced it.
//! Measurement discipline follows `corpus_edit`: minimum over runs on a
//! preemption-prone shared container, with re-measure attempts until the
//! two arms land in a clean window.

use std::sync::Arc;
use std::time::Duration;

use xic_bench::{fmt_us, min_time};
use xic_engine::{BatchDoc, CompiledSpec, CorpusSession};
use xic_gen::{
    catalogue_dtd, random_document, random_unary_constraints, ConstraintGenConfig, DocGenConfig,
};
use xic_telemetry::MetricsRegistry;
use xic_xml::{write_document, EditOp, NodeId};

const KINDS: usize = 10;
const NUM_DOCS: usize = 16;
/// Edit batches per timed run; each batch is `OPS_PER_BATCH` ops on one
/// document followed by a commit (the apply path times per batch, so this
/// is the instrumentation's natural unit).
const BATCHES_PER_RUN: usize = 32;
const OPS_PER_BATCH: usize = 8;
/// Runs of the edit loop per measurement attempt (minimum taken).
const RUNS: usize = 7;
/// Re-measure attempts until the arms land in a clean window.
const ATTEMPTS: usize = 7;

fn main() {
    let dtd = catalogue_dtd(KINDS);
    let sigma = random_unary_constraints(
        &dtd,
        &ConstraintGenConfig {
            keys: 10,
            foreign_keys: 10,
            inclusions: 4,
            seed: 7,
            ..Default::default()
        },
    );
    let spec = CompiledSpec::compile(dtd, sigma).expect("generated spec compiles");

    let sources: Vec<BatchDoc> = (0..NUM_DOCS)
        .map(|i| {
            let tree = random_document(
                spec.dtd(),
                &DocGenConfig {
                    seed: 100 + i as u64,
                    max_elements: 1_500,
                    star_fanout: 120,
                    value_pool: 1_000_000,
                    ..Default::default()
                },
            )
            .expect("catalogue DTD is satisfiable");
            BatchDoc::new(format!("doc-{i}.xml"), write_document(&tree, spec.dtd()))
        })
        .collect();

    let open_corpus = |registry: &Arc<MetricsRegistry>| {
        let mut corpus = CorpusSession::with_registry(&spec, Arc::clone(registry));
        let handles: Vec<_> = sources
            .iter()
            .map(|d| corpus.open_source(&d.label, &d.content).expect("parses"))
            .collect();
        corpus.commit();
        (corpus, handles)
    };

    // The deterministic edit stream: batch i rewrites OPS_PER_BATCH
    // attributes of document (i mod NUM_DOCS).
    let probe_registry = Arc::new(MetricsRegistry::new());
    let (probe, probe_handles) = open_corpus(&probe_registry);
    let batches: Vec<(usize, Vec<EditOp>)> = (0..BATCHES_PER_RUN)
        .map(|i| {
            let victim = i % NUM_DOCS;
            let tree = probe.tree(probe_handles[victim]).unwrap();
            let editable: Vec<NodeId> = tree
                .elements()
                .filter(|&n| !tree.attributes(n).is_empty())
                .collect();
            let ops = (0..OPS_PER_BATCH)
                .map(|j| {
                    let element = editable[(i * 997 + j * 131) % editable.len()];
                    let (attr, _) = tree.attributes(element)[0];
                    EditOp::SetAttr {
                        element,
                        attr,
                        value: format!("edited-{i}-{j}"),
                    }
                })
                .collect();
            (victim, ops)
        })
        .collect();
    drop(probe);

    println!();
    println!("telemetry_overhead — instrumented vs. timing-disabled corpus commits");
    println!("--------------------------------------------------------------------");
    println!(
        "{:<44} {} docs, {} constraints, {} batches x {} ops",
        "workload",
        NUM_DOCS,
        spec.sigma().len(),
        BATCHES_PER_RUN,
        OPS_PER_BATCH,
    );

    // One arm: minimum time over RUNS of the full edit loop on pre-opened
    // corpora recording into `registry`.
    let measure = |timing: bool| {
        let registry = Arc::new(MetricsRegistry::new());
        registry.set_timing(timing);
        let mut prepared: Vec<_> = (0..RUNS).map(|_| open_corpus(&registry)).collect();
        let mut edited = Vec::new();
        let best = min_time(RUNS, || {
            let (mut corpus, handles) = prepared.pop().expect("one prepared corpus per run");
            for (victim, ops) in &batches {
                corpus.apply(handles[*victim], ops).unwrap();
                std::hint::black_box(corpus.commit());
            }
            edited.push(corpus);
        });
        drop(edited);
        best
    };

    // Interleave the arms per attempt so a load spike hits both, and keep
    // the best window of each.  The early-out threshold sits well under
    // the 5% assertion so a noisy first window keeps re-measuring instead
    // of squeaking by.
    let mut t_on = measure(true);
    let mut t_off = measure(false);
    for _ in 1..ATTEMPTS {
        if overhead(t_on, t_off) <= 0.02 {
            break;
        }
        t_on = t_on.min(measure(true));
        t_off = t_off.min(measure(false));
    }
    let overhead = overhead(t_on, t_off);

    let per_batch_on = t_on.as_secs_f64() * 1e6 / BATCHES_PER_RUN as f64;
    let per_batch_off = t_off.as_secs_f64() * 1e6 / BATCHES_PER_RUN as f64;
    println!(
        "{:<44} {:>12}",
        format!("edit loop, timing on  ({RUNS}-run min)"),
        fmt_us(t_on)
    );
    println!(
        "{:<44} {:>12}",
        format!("edit loop, timing off ({RUNS}-run min)"),
        fmt_us(t_off)
    );
    println!(
        "{:<44} {:>9.2} µs",
        "per batch+commit, timing on", per_batch_on
    );
    println!(
        "{:<44} {:>9.2} µs",
        "per batch+commit, timing off", per_batch_off
    );
    println!("{:<44} {:>10.2} %", "overhead", overhead * 100.0);

    let telemetry_off_build = cfg!(feature = "telemetry-off");
    if telemetry_off_build {
        println!(
            "{:<44} {:>12}",
            "build", "telemetry-off (no-op control arm)"
        );
    }

    let json = render_json(&[
        ("docs", NUM_DOCS as f64),
        ("batches_per_run", BATCHES_PER_RUN as f64),
        ("ops_per_batch", OPS_PER_BATCH as f64),
        ("timing_on_us", us(t_on)),
        ("timing_off_us", us(t_off)),
        (
            "overhead_pct",
            (overhead * 1000.0).round() / 10.0, // one decimal, in percent
        ),
        (
            "telemetry_off_build",
            if telemetry_off_build { 1.0 } else { 0.0 },
        ),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    std::fs::write(out, &json).expect("write BENCH_telemetry.json");
    println!("{:<44} {:>12}", "recorded", "BENCH_telemetry.json");
    println!("--------------------------------------------------------------------");

    assert!(
        overhead <= 0.05,
        "instrumented commits must stay within 5% of the timing-disabled \
         baseline (got {:.2}% over {BATCHES_PER_RUN} batches)",
        overhead * 100.0
    );
}

/// Relative cost of the instrumented arm ((on − off) / off; negative when
/// the instrumented arm happened to win the scheduler lottery).
fn overhead(on: Duration, off: Duration) -> f64 {
    let off_s = off.as_secs_f64().max(1e-12);
    (on.as_secs_f64() - off_s) / off_s
}

fn us(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e6 * 10.0).round() / 10.0
}

/// Tiny flat-object JSON rendering (the workspace is dependency-free).
fn render_json(fields: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (key, value)) in fields.iter().enumerate() {
        out.push_str(&format!("  \"{key}\": {value}"));
        out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}
