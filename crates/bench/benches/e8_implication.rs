//! E8 — implication for unary keys and foreign keys (Theorem 4.10 /
//! Theorem 5.4, coNP-complete): both implied and non-implied targets over
//! growing specifications.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xic_constraints::Constraint;
use xic_core::{CheckerConfig, ImplicationChecker};
use xic_gen::unary_consistency_family;

fn bench_unary_implication(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_unary_implication");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));
    let checker = ImplicationChecker::with_config(CheckerConfig {
        synthesize_witness: false,
        ..Default::default()
    });
    for spec in unary_consistency_family(&[2, 4, 8]) {
        // Implied target: a key that is already in Σ.
        let implied = spec.sigma.iter().next().cloned().expect("nonempty");
        // Non-implied target: kind0.ref0 as a key (nothing forces it).
        let kind0 = spec.dtd.type_by_name("kind0").unwrap();
        let ref0 = spec.dtd.attr_by_name("ref0").unwrap();
        let not_implied = Constraint::unary_key(kind0, ref0);
        group.bench_with_input(
            BenchmarkId::new("implied", &spec.label),
            &spec,
            |b, spec| b.iter(|| checker.implies(&spec.dtd, &spec.sigma, &implied).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("not_implied", &spec.label),
            &spec,
            |b, spec| {
                b.iter(|| {
                    checker
                        .implies(&spec.dtd, &spec.sigma, &not_implied)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_unary_implication);
criterion_main!(benches);
