//! E9 — consistency for C^unary_{K¬,IC¬}: unary keys, inclusion constraints
//! and their negations (Theorem 5.1, NP).  The set-atom encoding grows with
//! the number of attribute slots touched by inclusion constraints.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xic_core::{CheckerConfig, ConsistencyChecker};
use xic_gen::negation_family;

fn bench_negation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_negated_constraints");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));
    let checker = ConsistencyChecker::with_config(CheckerConfig {
        synthesize_witness: false,
        ..Default::default()
    });
    for spec in negation_family(&[2, 4, 6], 29) {
        group.bench_with_input(
            BenchmarkId::from_parameter(&spec.label),
            &spec,
            |b, spec| {
                b.iter(|| checker.check(&spec.dtd, &spec.sigma).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_negation);
criterion_main!(benches);
