//! DocIndex — interned values vs. the seed-path string checker.
//!
//! Measures `T ⊨ Σ` on a multi-constraint generated workload three ways:
//!
//! 1. **reference, cold** — the retained seed-algorithm checker
//!    (`SatisfactionChecker`): string-valued tuples, one scan per
//!    constraint, a `Vec<String>` allocation per node probed;
//! 2. **DocIndex, cold** — build the interned-tuple indexes in one pass and
//!    check every constraint (this is what `CompiledSpec::check_document`
//!    does per document);
//! 3. **DocIndex, warm** — re-check all constraints on a prebuilt index
//!    (the incremental / multi-query shape).
//!
//! It also measures parsing with a fresh pool per document vs. one pool
//! threaded through the corpus (the `BatchEngine` worker shape), and writes
//! every number to `BENCH_docindex.json` at the workspace root.
//!
//! The cold DocIndex path must be ≥ 3× faster than the reference checker on
//! this workload (asserted).  Not a statistical benchmark: like
//! `engine_throughput`, it prints a table of median wall-clock times.

use std::time::Duration;

use xic_bench::{fmt_us, median_time};
use xic_constraints::{DocIndex, IndexPlan, SatisfactionChecker};
use xic_gen::{
    catalogue_dtd, random_document, random_unary_constraints, ConstraintGenConfig, DocGenConfig,
};
use xic_xml::{parse_document, parse_document_pooled, write_document, ValuePool};

const KINDS: usize = 12;
const RUNS: usize = 9;

fn main() {
    let dtd = catalogue_dtd(KINDS);
    // A multi-constraint Σ: keys and foreign keys share (τ, X̄) slots, which
    // the single-pass index exploits and the per-constraint scanner cannot.
    let sigma = random_unary_constraints(
        &dtd,
        &ConstraintGenConfig {
            keys: 14,
            foreign_keys: 14,
            inclusions: 6,
            seed: 7,
            ..Default::default()
        },
    );
    let tree = random_document(
        &dtd,
        &DocGenConfig {
            seed: 7,
            max_elements: 40_000,
            // The catalogue DTD is one star per kind under the root, so the
            // fanout of those stars is what sizes the document.
            star_fanout: 3_000,
            // A huge value pool keeps keys mostly clash-free, so neither
            // checker gets to exit a scan early: this measures full passes.
            value_pool: 100_000_000,
            ..Default::default()
        },
    )
    .expect("catalogue DTD is satisfiable");
    let plan = IndexPlan::for_set(&sigma);

    println!();
    println!("doc_index — interned single-pass indexes vs. seed-path checker");
    println!("--------------------------------------------------------------------");
    println!(
        "{:<44} {:>7} nodes, {} constraints, {} key + {} tuple slots",
        "workload",
        tree.num_nodes(),
        sigma.len(),
        plan.key_slots().len(),
        plan.tuple_slots().len(),
    );

    // Verdicts must agree before any timing is meaningful.
    let fast = DocIndex::build(&dtd, &tree, &plan).check_all(&sigma);
    let reference = SatisfactionChecker::new(&dtd, &tree).check_all(&sigma);
    assert_eq!(
        fast, reference,
        "checkers disagree — timings are meaningless"
    );
    println!(
        "{:<44} {:>7} violations (identical either path)",
        "verdict agreement",
        fast.len()
    );

    let reference_cold = median_time(RUNS, || {
        let mut checker = SatisfactionChecker::new(&dtd, &tree);
        std::hint::black_box(checker.check_all(&sigma));
    });
    let docindex_cold = median_time(RUNS, || {
        let index = DocIndex::build(&dtd, &tree, &plan);
        std::hint::black_box(index.check_all(&sigma));
    });
    let prebuilt = DocIndex::build(&dtd, &tree, &plan);
    let docindex_warm = median_time(RUNS, || {
        std::hint::black_box(prebuilt.check_all(&sigma));
    });

    let speedup_cold = reference_cold.as_secs_f64() / docindex_cold.as_secs_f64().max(1e-9);
    let speedup_warm = reference_cold.as_secs_f64() / docindex_warm.as_secs_f64().max(1e-9);
    println!(
        "{:<44} {:>12}",
        "reference checker, cold (seed path)",
        fmt_us(reference_cold)
    );
    println!(
        "{:<44} {:>12}",
        "DocIndex, cold (build + check)",
        fmt_us(docindex_cold)
    );
    println!(
        "{:<44} {:>12}",
        "DocIndex, warm (prebuilt index)",
        fmt_us(docindex_warm)
    );
    println!("{:<44} {:>11.1}x", "cold speedup", speedup_cold);
    println!("{:<44} {:>11.1}x", "warm speedup", speedup_warm);

    // Parsing: fresh interner per document vs. one pool threaded through a
    // small corpus of identical-vocabulary documents.
    let source = write_document(&tree, &dtd);
    let parse_fresh = median_time(5, || {
        for _ in 0..4 {
            std::hint::black_box(parse_document(&source, &dtd).unwrap());
        }
    });
    let parse_shared = median_time(5, || {
        let mut pool = ValuePool::new();
        for _ in 0..4 {
            let t = parse_document_pooled(&source, &dtd, pool).unwrap();
            pool = std::hint::black_box(t).into_pool();
        }
    });
    println!(
        "{:<44} {:>12}",
        "parse ×4, fresh pool each",
        fmt_us(parse_fresh)
    );
    println!(
        "{:<44} {:>12}",
        "parse ×4, one shared pool",
        fmt_us(parse_shared)
    );

    let json = render_json(&[
        ("nodes", tree.num_nodes() as f64),
        ("constraints", sigma.len() as f64),
        ("key_slots", plan.key_slots().len() as f64),
        ("tuple_slots", plan.tuple_slots().len() as f64),
        ("reference_cold_us", us(reference_cold)),
        ("docindex_cold_us", us(docindex_cold)),
        ("docindex_warm_us", us(docindex_warm)),
        ("parse_x4_fresh_pool_us", us(parse_fresh)),
        ("parse_x4_shared_pool_us", us(parse_shared)),
        ("speedup_cold", speedup_cold),
        ("speedup_warm", speedup_warm),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_docindex.json");
    std::fs::write(out, &json).expect("write BENCH_docindex.json");
    println!("{:<44} {:>12}", "recorded", "BENCH_docindex.json");
    println!("--------------------------------------------------------------------");

    assert!(
        speedup_cold >= 3.0,
        "DocIndex (cold) must be ≥ 3× faster than the seed-path checker on \
         the multi-constraint workload (got {speedup_cold:.1}×)"
    );
}

fn us(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e6 * 10.0).round() / 10.0
}

/// Tiny flat-object JSON rendering (the workspace is dependency-free).
fn render_json(fields: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (key, value)) in fields.iter().enumerate() {
        out.push_str(&format!("  \"{key}\": {value}"));
        out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}
