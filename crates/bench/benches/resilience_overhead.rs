//! Resilience overhead — governed vs. unlimited corpus commits.
//!
//! The ISSUE 7 budget: the resource-governance machinery threaded through
//! the corpus edit loop (admission checks in `CorpusSession::apply`, the
//! deadline probe in `commit`, the panic containment around each
//! re-check, and every compiled-out failpoint) must cost **≤ 3%** when
//! limits are *configured but never tripped* — governance is supposed to
//! be free until it fires.  Two arms run the identical workload (the
//! `corpus_edit` shape: one spec, a corpus of open documents, a stream of
//! attribute edits, a commit after every batch):
//!
//! 1. **governed** — `CorpusSession::with_limits` with every bound set
//!    generously above what the workload uses (bytes, nodes, depth,
//!    queued ops, dirty docs, a one-hour deadline): every admission point
//!    evaluates its comparisons, none rejects;
//! 2. **unlimited** — `Limits::UNLIMITED`: the admission fast path
//!    (`is_unlimited`) short-circuits everything.
//!
//! `overhead = (t_governed − t_unlimited) / t_unlimited`, asserted ≤ 3%
//! (the CI `fault-injection` job runs this binary).  Failpoints are
//! compile-time no-ops in this build (the `faults` feature is off), so
//! the measured gap isolates the limit checks themselves.  Measurement
//! discipline follows `telemetry_overhead`: minimum over runs on a
//! preemption-prone shared container, interleaved re-measure attempts
//! until the arms land in a clean window.

use std::time::Duration;

use xic_bench::{fmt_us, min_time};
use xic_engine::{BatchDoc, CompiledSpec, CorpusSession, Limits};
use xic_gen::{
    catalogue_dtd, random_document, random_unary_constraints, ConstraintGenConfig, DocGenConfig,
};
use xic_xml::{write_document, EditOp, NodeId};

const KINDS: usize = 10;
const NUM_DOCS: usize = 16;
/// Edit batches per timed run; each batch is `OPS_PER_BATCH` ops on one
/// document followed by a commit (admission runs per batch, the deadline
/// probe per commit, so this is governance's natural unit).
const BATCHES_PER_RUN: usize = 32;
const OPS_PER_BATCH: usize = 8;
/// Runs of the edit loop per measurement attempt (minimum taken).
const RUNS: usize = 7;
/// Re-measure attempts until the arms land in a clean window.
const ATTEMPTS: usize = 7;

fn main() {
    let dtd = catalogue_dtd(KINDS);
    let sigma = random_unary_constraints(
        &dtd,
        &ConstraintGenConfig {
            keys: 10,
            foreign_keys: 10,
            inclusions: 4,
            seed: 7,
            ..Default::default()
        },
    );
    let spec = CompiledSpec::compile(dtd, sigma).expect("generated spec compiles");

    let sources: Vec<BatchDoc> = (0..NUM_DOCS)
        .map(|i| {
            let tree = random_document(
                spec.dtd(),
                &DocGenConfig {
                    seed: 100 + i as u64,
                    max_elements: 1_500,
                    star_fanout: 120,
                    value_pool: 1_000_000,
                    ..Default::default()
                },
            )
            .expect("catalogue DTD is satisfiable");
            BatchDoc::new(format!("doc-{i}.xml"), write_document(&tree, spec.dtd()))
        })
        .collect();

    // Every bound sits far above what the workload touches, so the
    // governed arm pays for the checks and never for a rejection.
    let governed_limits = Limits {
        max_doc_bytes: Some(64 << 20),
        max_doc_nodes: Some(1 << 20),
        max_depth: Some(256),
        max_queued_ops: Some(1 << 16),
        max_dirty_docs: Some(NUM_DOCS * 4),
        deadline: Some(Duration::from_secs(3_600)),
    };

    let open_corpus = |limits: Limits| {
        let mut corpus = CorpusSession::with_limits(&spec, limits);
        let handles: Vec<_> = sources
            .iter()
            .map(|d| corpus.open_source(&d.label, &d.content).expect("parses"))
            .collect();
        corpus.commit();
        (corpus, handles)
    };

    // The deterministic edit stream: batch i rewrites OPS_PER_BATCH
    // attributes of document (i mod NUM_DOCS).
    let (probe, probe_handles) = open_corpus(Limits::UNLIMITED);
    let batches: Vec<(usize, Vec<EditOp>)> = (0..BATCHES_PER_RUN)
        .map(|i| {
            let victim = i % NUM_DOCS;
            let tree = probe.tree(probe_handles[victim]).unwrap();
            let editable: Vec<NodeId> = tree
                .elements()
                .filter(|&n| !tree.attributes(n).is_empty())
                .collect();
            let ops = (0..OPS_PER_BATCH)
                .map(|j| {
                    let element = editable[(i * 997 + j * 131) % editable.len()];
                    let (attr, _) = tree.attributes(element)[0];
                    EditOp::SetAttr {
                        element,
                        attr,
                        value: format!("edited-{i}-{j}"),
                    }
                })
                .collect();
            (victim, ops)
        })
        .collect();
    drop(probe);

    println!();
    println!("resilience_overhead — governed vs. unlimited corpus commits");
    println!("--------------------------------------------------------------------");
    println!(
        "{:<44} {} docs, {} constraints, {} batches x {} ops",
        "workload",
        NUM_DOCS,
        spec.sigma().len(),
        BATCHES_PER_RUN,
        OPS_PER_BATCH,
    );

    // One arm: minimum time over RUNS of the full edit loop on pre-opened
    // corpora governed by `limits`.
    let measure = |limits: Limits| {
        let mut prepared: Vec<_> = (0..RUNS).map(|_| open_corpus(limits)).collect();
        let mut edited = Vec::new();
        let best = min_time(RUNS, || {
            let (mut corpus, handles) = prepared.pop().expect("one prepared corpus per run");
            for (victim, ops) in &batches {
                corpus.apply(handles[*victim], ops).unwrap();
                std::hint::black_box(corpus.commit());
            }
            edited.push(corpus);
        });
        drop(edited);
        best
    };

    // Interleave the arms per attempt so a load spike hits both, and keep
    // the best window of each.  The early-out threshold sits well under
    // the 3% assertion so a noisy first window keeps re-measuring instead
    // of squeaking by.
    let mut t_governed = measure(governed_limits);
    let mut t_unlimited = measure(Limits::UNLIMITED);
    for _ in 1..ATTEMPTS {
        if overhead(t_governed, t_unlimited) <= 0.015 {
            break;
        }
        t_governed = t_governed.min(measure(governed_limits));
        t_unlimited = t_unlimited.min(measure(Limits::UNLIMITED));
    }
    let overhead = overhead(t_governed, t_unlimited);

    let per_batch_governed = t_governed.as_secs_f64() * 1e6 / BATCHES_PER_RUN as f64;
    let per_batch_unlimited = t_unlimited.as_secs_f64() * 1e6 / BATCHES_PER_RUN as f64;
    println!(
        "{:<44} {:>12}",
        format!("edit loop, governed  ({RUNS}-run min)"),
        fmt_us(t_governed)
    );
    println!(
        "{:<44} {:>12}",
        format!("edit loop, unlimited ({RUNS}-run min)"),
        fmt_us(t_unlimited)
    );
    println!(
        "{:<44} {:>9.2} µs",
        "per batch+commit, governed", per_batch_governed
    );
    println!(
        "{:<44} {:>9.2} µs",
        "per batch+commit, unlimited", per_batch_unlimited
    );
    println!("{:<44} {:>10.2} %", "overhead", overhead * 100.0);

    let json = render_json(&[
        ("docs", NUM_DOCS as f64),
        ("batches_per_run", BATCHES_PER_RUN as f64),
        ("ops_per_batch", OPS_PER_BATCH as f64),
        ("governed_us", us(t_governed)),
        ("unlimited_us", us(t_unlimited)),
        (
            "overhead_pct",
            (overhead * 1000.0).round() / 10.0, // one decimal, in percent
        ),
        (
            "faults_build",
            if cfg!(feature = "faults") { 1.0 } else { 0.0 },
        ),
    ]);
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_resilience.json");
    std::fs::write(out, &json).expect("write BENCH_resilience.json");
    println!("{:<44} {:>12}", "recorded", "BENCH_resilience.json");
    println!("--------------------------------------------------------------------");

    assert!(
        overhead <= 0.03,
        "governed commits must stay within 3% of the unlimited baseline \
         (got {:.2}% over {BATCHES_PER_RUN} batches)",
        overhead * 100.0
    );
}

/// Relative cost of the governed arm ((governed − unlimited) / unlimited;
/// negative when the governed arm happened to win the scheduler lottery).
fn overhead(governed: Duration, unlimited: Duration) -> f64 {
    let base = unlimited.as_secs_f64().max(1e-12);
    (governed.as_secs_f64() - base) / base
}

fn us(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e6 * 10.0).round() / 10.0
}

/// Tiny flat-object JSON rendering (the workspace is dependency-free).
fn render_json(fields: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (key, value)) in fields.iter().enumerate() {
        out.push_str(&format!("  \"{key}\": {value}"));
        out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
    }
    out.push_str("}\n");
    out
}
