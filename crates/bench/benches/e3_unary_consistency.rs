//! E3/E4 — consistency for unary keys and foreign keys (Theorem 4.1 /
//! Theorem 4.7 / Corollary 4.8; Figure 5 columns "unary keys, foreign keys"
//! and "primary, unary keys, foreign keys").
//!
//! Three families: consistent reference chains, inconsistent fanout
//! specifications (the teachers example scaled up), and hard instances from
//! the 0/1-LIP reduction.  Primary-key-restricted workloads are included to
//! show the restriction does not change the picture (Corollary 4.8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xic_core::{CheckerConfig, ConsistencyChecker};
use xic_gen::{
    hard_lip_family, inconsistent_fanout_family, primary_key_family, unary_consistency_family,
};

fn checker_without_witness() -> ConsistencyChecker {
    ConsistencyChecker::with_config(CheckerConfig {
        synthesize_witness: false,
        ..Default::default()
    })
}

fn bench_consistent_chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_consistent_chain");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));
    for spec in unary_consistency_family(&[2, 4, 8, 16]) {
        let checker = checker_without_witness();
        group.bench_with_input(
            BenchmarkId::from_parameter(&spec.label),
            &spec,
            |b, spec| {
                b.iter(|| checker.check(&spec.dtd, &spec.sigma).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_inconsistent_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_inconsistent_fanout");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));
    for spec in inconsistent_fanout_family(&[2, 4, 8]) {
        let checker = checker_without_witness();
        group.bench_with_input(
            BenchmarkId::from_parameter(&spec.label),
            &spec,
            |b, spec| {
                b.iter(|| checker.check(&spec.dtd, &spec.sigma).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_hard_lip(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_hard_lip");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));
    for (label, spec) in hard_lip_family(&[(2, 3), (3, 5), (4, 6)], 20260614) {
        let checker = checker_without_witness();
        group.bench_with_input(BenchmarkId::from_parameter(&label), &spec, |b, spec| {
            b.iter(|| checker.check(&spec.dtd, &spec.sigma).unwrap());
        });
    }
    group.finish();
}

fn bench_primary_key_restriction(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_primary_key");
    group.sample_size(10);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));
    for spec in primary_key_family(&[6, 12, 24], 17) {
        let checker = checker_without_witness();
        group.bench_with_input(
            BenchmarkId::from_parameter(&spec.label),
            &spec,
            |b, spec| {
                b.iter(|| checker.check(&spec.dtd, &spec.sigma).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_consistent_chains,
    bench_inconsistent_fanout,
    bench_hard_lip,
    bench_primary_key_restriction
);
criterion_main!(benches);
