//! E6/E7 — the linear-time cases of Theorem 3.5: DTD satisfiability,
//! keys-only consistency and keys-only implication over growing DTDs
//! (Figure 5 column "multi-attribute keys only").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use xic_core::{CheckerConfig, ConsistencyChecker, ImplicationChecker};
use xic_dtd::dtd_satisfiable;
use xic_gen::keys_only_family;

fn bench_dtd_satisfiability(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_dtd_satisfiability");
    group.sample_size(20);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));
    for spec in keys_only_family(&[8, 32, 128, 512], 23) {
        group.bench_with_input(
            BenchmarkId::from_parameter(&spec.label),
            &spec,
            |b, spec| {
                b.iter(|| dtd_satisfiable(&spec.dtd));
            },
        );
    }
    group.finish();
}

fn bench_keys_only_consistency(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_keys_only_consistency");
    group.sample_size(20);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));
    let checker = ConsistencyChecker::with_config(CheckerConfig {
        synthesize_witness: false,
        ..Default::default()
    });
    for spec in keys_only_family(&[8, 32, 128], 23) {
        group.bench_with_input(
            BenchmarkId::from_parameter(&spec.label),
            &spec,
            |b, spec| {
                b.iter(|| checker.check_keys_only(&spec.dtd, &spec.sigma));
            },
        );
    }
    group.finish();
}

fn bench_keys_only_implication(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_keys_only_implication");
    group.sample_size(20);
    group.measurement_time(Duration::from_millis(900));
    group.warm_up_time(Duration::from_millis(200));
    let checker = ImplicationChecker::new();
    for spec in keys_only_family(&[8, 32, 128], 23) {
        // Ask whether the first key of Σ widened by one attribute is implied.
        let phi = spec.sigma.iter().next().cloned().expect("nonempty");
        group.bench_with_input(
            BenchmarkId::from_parameter(&spec.label),
            &spec,
            |b, spec| {
                b.iter(|| checker.implies(&spec.dtd, &spec.sigma, &phi).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dtd_satisfiability,
    bench_keys_only_consistency,
    bench_keys_only_implication
);
criterion_main!(benches);
