//! # xic-bench — the benchmark harness
//!
//! One Criterion bench target per experiment of DESIGN.md §6 (E2–E12), plus
//! `figure5_table` which regenerates the paper's Figure 5 as a table of
//! measured verdicts and timings.  The benches are deliberately configured
//! with small sample counts so that `cargo bench --workspace` completes in
//! minutes while still exposing the scaling *shape* that stands in for the
//! paper's complexity claims.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Runs a closure once and returns its wall-clock duration together with its
/// result (used by the non-Criterion `figure5_table` harness).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed(), value)
}

/// Runs a closure `runs` times and returns the median duration.
pub fn median_time(runs: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Runs a closure `runs` times and returns the **minimum** duration.
///
/// On a shared single-core box (this container routinely sees load > 1 from
/// neighbours), a short timed section that straddles a preemption balloons
/// by tens of milliseconds; the median of a handful of runs is then
/// dominated by scheduler luck.  The minimum is the run the scheduler left
/// alone, i.e. the actual cost of the code — use it for sections much
/// shorter than a timeslice.
pub fn min_time(runs: usize, mut f: impl FnMut()) -> Duration {
    (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .expect("at least one run")
}

/// Formats a duration in microseconds with three significant digits.
pub fn fmt_us(d: Duration) -> String {
    format!("{:.1} µs", d.as_secs_f64() * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_helpers_work() {
        let (d, v) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
        let m = median_time(3, || {
            std::hint::black_box(1 + 1);
        });
        assert!(fmt_us(m).contains("µs"));
        // min_time runs the closure exactly `runs` times.
        let mut n = 0u64;
        let _ = min_time(5, || n = std::hint::black_box(n + 1));
        assert_eq!(n, 5);
    }
}
