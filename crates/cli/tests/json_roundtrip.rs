//! Property tests for the CLI's JSON layer: arbitrary `DocReport` /
//! `Violation` values — hostile strings (quotes, backslashes, control
//! characters, non-BMP scalars that serializers emit as surrogate pairs)
//! and extreme numbers included — must survive the writer → parser →
//! reconstructor round trip bit-for-bit.

use std::fmt::Write as _;

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;
use xic_cli::report::{
    delta_from_json, delta_json, doc_report_from_json, doc_report_json, violation_from_json,
    violation_json,
};
use xic_cli::JsonValue;
use xic_constraints::Violation;
use xic_engine::{BatchDelta, ClosedDoc, DocChange, DocHandle, DocReport};
use xic_xml::NodeId;

/// Characters chosen to stress every escaping path: ASCII, the JSON
/// two-character escapes, raw control characters, BMP extremes, and
/// supplementary-plane scalars (the ones other serializers write as
/// `😀`-style surrogate pairs).
fn arb_char() -> BoxedStrategy<char> {
    prop_oneof![
        (0x20u32..0x7F).prop_map(|c| char::from_u32(c).unwrap()),
        Just('"'),
        Just('\\'),
        Just('/'),
        Just('\n'),
        Just('\r'),
        Just('\t'),
        Just('\u{0}'),
        Just('\u{7}'),
        Just('\u{1B}'),
        Just('é'),
        Just('\u{D7FF}'),
        Just('\u{E000}'),
        Just('\u{FFFD}'),
        Just('\u{FFFF}'),
        Just('\u{1F600}'),
        Just('\u{10000}'),
        Just('\u{10FFFF}'),
    ]
    .boxed()
}

fn arb_string() -> BoxedStrategy<String> {
    vec(arb_char(), 0..12)
        .prop_map(|chars| chars.into_iter().collect())
        .boxed()
}

/// Numbers at the edges of what `f64` (and the writer's integer shortcut
/// at `|n| < 9e15`) can represent.
fn arb_number() -> BoxedStrategy<f64> {
    prop_oneof![
        Just(0.0),
        Just(-0.0),
        Just(1.5),
        Just(-2.25),
        Just(1e308),
        Just(-1e308),
        Just(5e-324),
        Just(-5e-324),
        Just(9e15),
        Just(9007199254740991.0), // 2^53 - 1
        Just(-9007199254740991.0),
        Just(1e16),
        Just(0.1),
        (0i64..10_000).prop_map(|n| n as f64),
        (-1_000_000i64..1_000_000).prop_map(|n| n as f64 / 1024.0),
    ]
    .boxed()
}

fn arb_node() -> BoxedStrategy<NodeId> {
    prop_oneof![
        (0u32..64).boxed(),
        Just(u32::MAX - 1).boxed(),
        Just(u32::MAX).boxed(),
    ]
    .prop_map(NodeId)
    .boxed()
}

fn arb_violation() -> BoxedStrategy<Violation> {
    prop_oneof![
        (
            arb_string(),
            arb_node(),
            arb_node(),
            vec(arb_string(), 0..4)
        )
            .prop_map(|(constraint, a, b, values)| Violation::KeyViolation {
                constraint,
                witnesses: (a, b),
                values,
            }),
        (arb_string(), arb_node(), vec(arb_string(), 0..4)).prop_map(
            |(constraint, witness, values)| Violation::InclusionViolation {
                constraint,
                witness,
                values,
            }
        ),
        (arb_string(), arb_node()).prop_map(|(constraint, witness)| {
            Violation::MissingAttributes {
                constraint,
                witness,
            }
        }),
        arb_string().prop_map(|constraint| Violation::NegationUnsatisfied { constraint }),
    ]
    .boxed()
}

fn arb_fault() -> BoxedStrategy<Option<xic_engine::DocFault>> {
    prop_oneof![
        Just(None).boxed(),
        arb_string()
            .prop_map(|cause| Some(xic_engine::DocFault::Panic { cause }))
            .boxed(),
        arb_string()
            .prop_map(|cause| Some(xic_engine::DocFault::Resource { cause }))
            .boxed(),
    ]
    .boxed()
}

fn arb_report() -> BoxedStrategy<DocReport> {
    (
        (0usize..10_000).boxed(),
        arb_string(),
        prop_oneof![Just(None).boxed(), arb_string().prop_map(Some).boxed()],
        vec(arb_string(), 0..3),
        vec(arb_violation(), 0..4),
        arb_fault(),
    )
        .prop_map(
            |(index, label, parse_error, validation_errors, violations, fault)| DocReport {
                index,
                label,
                parse_error,
                validation_errors,
                violations,
                fault,
            },
        )
        .boxed()
}

/// Handles at the edges of the `doc-N` rendering.
fn arb_handle() -> BoxedStrategy<DocHandle> {
    prop_oneof![
        (0u64..64).boxed(),
        Just(u64::MAX - 1).boxed(),
        Just(u64::MAX).boxed(),
    ]
    .prop_map(DocHandle::from_raw)
    .boxed()
}

/// Arbitrary commit deltas — the journal's record payload — covering every
/// `was_clean` transition, closes, and hostile strings throughout.
fn arb_delta() -> BoxedStrategy<BatchDelta> {
    let change = (
        arb_handle(),
        prop_oneof![Just(None), Just(Some(true)), Just(Some(false))],
        arb_report(),
        vec(0u32..8, 0..3),
    )
        .prop_map(|(handle, was_clean, report, shards)| DocChange {
            handle,
            was_clean,
            report,
            shards,
        });
    let closed =
        (arb_handle(), arb_string()).prop_map(|(handle, label)| ClosedDoc { handle, label });
    (
        (0u64..10_000).boxed(),
        vec(change, 0..4),
        vec(closed, 0..3),
        (0usize..64).boxed(),
        (0usize..64).boxed(),
        (0usize..64).boxed(),
        vec(prop_oneof![(0u32..8).boxed(), Just(u32::MAX).boxed()], 0..4),
    )
        .prop_map(
            |(seq, changes, closed, rechecked_docs, total, clean, shards)| BatchDelta {
                seq,
                changes,
                closed,
                rechecked_docs,
                total,
                clean,
                shards,
            },
        )
        .boxed()
}

/// Arbitrary JSON values, for the generic writer ↔ parser round trip.
fn arb_json() -> BoxedStrategy<JsonValue> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        Just(JsonValue::Bool(true)),
        Just(JsonValue::Bool(false)),
        arb_number().prop_map(JsonValue::Number),
        arb_string().prop_map(JsonValue::String),
    ]
    .boxed();
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            vec(inner.clone(), 0..4).prop_map(JsonValue::Array),
            vec((arb_string(), inner), 0..4)
                .prop_map(|pairs| JsonValue::Object(pairs.into_iter().collect())),
        ]
    })
}

/// Escapes every character as `\uXXXX` sequences — surrogate *pairs* for
/// supplementary-plane scalars — the way conservative serializers do, so
/// the parser's pair decoding is exercised on arbitrary content.
fn escape_everything(s: &str) -> String {
    let mut out = String::from("\"");
    for c in s.chars() {
        let mut units = [0u16; 2];
        for unit in c.encode_utf16(&mut units) {
            let _ = write!(out, "\\u{unit:04x}");
        }
    }
    out.push('"');
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// `violation_json` → render → parse → `violation_from_json` is the
    /// identity on arbitrary violations.
    #[test]
    fn violations_round_trip(v in arb_violation()) {
        let rendered = violation_json(&v).render();
        let parsed = JsonValue::parse(&rendered).expect("writer output is valid JSON");
        let back = violation_from_json(&parsed).expect("parsed violation reconstructs");
        prop_assert_eq!(back, v);
    }

    /// `doc_report_json` → render → parse → `doc_report_from_json` is the
    /// identity on arbitrary reports (the derived `clean` member included:
    /// it must match the reconstruction's recomputation).
    #[test]
    fn doc_reports_round_trip(r in arb_report()) {
        let json = doc_report_json(&r);
        let parsed = JsonValue::parse(&json.render()).expect("writer output is valid JSON");
        prop_assert_eq!(
            parsed.get("clean"),
            Some(&JsonValue::Bool(r.is_clean())),
            "the derived member mirrors is_clean()"
        );
        let back = doc_report_from_json(&parsed).expect("parsed report reconstructs");
        prop_assert_eq!(back, r);
    }

    /// `delta_json` → render → parse → `delta_from_json` is the identity
    /// on arbitrary commit deltas — the journal-record shape `xic journal
    /// record|replay` and `xic batch --session` all emit, so the delta
    /// stream is a total interchange format in both directions.
    #[test]
    fn deltas_round_trip(d in arb_delta()) {
        let rendered = delta_json(&d).render();
        let parsed = JsonValue::parse(&rendered).expect("writer output is valid JSON");
        let back = delta_from_json(&parsed).expect("parsed delta reconstructs");
        prop_assert_eq!(back, d);
    }

    /// The generic writer ↔ parser pair is the identity on arbitrary JSON
    /// values (numbers included: Rust's shortest-repr float formatting is
    /// read back to the same bits, and the integer shortcut below 9e15 is
    /// value-preserving).
    #[test]
    fn arbitrary_json_round_trips(value in arb_json()) {
        let rendered = value.render();
        let parsed = JsonValue::parse(&rendered).expect("writer output is valid JSON");
        prop_assert_eq!(&parsed, &value);
        // Idempotence: a second trip changes nothing.
        prop_assert_eq!(JsonValue::parse(&parsed.render()).unwrap(), parsed);
    }

    /// Fully `\uXXXX`-escaped input — surrogate pairs and all — decodes to
    /// the original string, so reports from escape-happy producers parse
    /// identically to our own compact output.
    #[test]
    fn surrogate_pair_escapes_decode(s in arb_string()) {
        let parsed = JsonValue::parse(&escape_everything(&s)).expect("escaped string parses");
        prop_assert_eq!(parsed.as_str(), Some(s.as_str()));
    }
}
