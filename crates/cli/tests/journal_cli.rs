//! CLI round trips for `xic journal`: a recorded log re-ingested by
//! `xic journal replay` must reproduce the same JSON delta stream as the
//! original `xic batch --session` run — byte for byte — and `inspect` must
//! describe any log without the compiled specification.

use std::fs;
use std::path::PathBuf;

use xic_cli::{run, JsonValue};

const SCHOOL_DTD: &str = "<!ELEMENT school (teacher*)>\n\
    <!ELEMENT teacher EMPTY>\n\
    <!ATTLIST teacher name CDATA #REQUIRED>";

/// Writes a temp file with a unique name and returns its path.
fn temp_file(name: &str, contents: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "xic-journal-cli-{}-{:?}-{name}",
        std::process::id(),
        std::thread::current().id()
    ));
    fs::write(&path, contents).unwrap();
    path
}

struct Fixture {
    dtd: PathBuf,
    sigma: PathBuf,
    manifest: PathBuf,
    script: PathBuf,
    log: PathBuf,
}

/// A session script that opens, breaks, heals and closes documents across
/// three commits — enough to exercise every delta shape.
fn fixture() -> Fixture {
    let dtd = temp_file("spec.dtd", SCHOOL_DTD);
    let sigma = temp_file("spec.xic", "teacher.name -> teacher");
    let a = temp_file("a.xml", "<school><teacher name=\"Joe\"/></school>");
    let b = temp_file("b.xml", "<school><teacher name=\"Ann\"/></school>");
    let manifest = temp_file(
        "manifest.txt",
        &format!("{}\n", a.file_name().unwrap().to_str().unwrap()),
    );
    let a_label = a.file_name().unwrap().to_str().unwrap();
    let b_name = b.file_name().unwrap().to_str().unwrap();
    let script = temp_file(
        "script.txt",
        &format!(
            "open b {b_name}\n\
             commit\n\
             add {a_label} 0 teacher\n\
             set {a_label} 3 name Joe\n\
             commit\n\
             set {a_label} 3 name Sue\n\
             close b\n"
        ),
    );
    let mut log = std::env::temp_dir();
    log.push(format!(
        "xic-journal-cli-{}-{:?}-run.xicj",
        std::process::id(),
        std::thread::current().id()
    ));
    fs::remove_file(&log).ok();
    Fixture {
        dtd,
        sigma,
        manifest,
        script,
        log,
    }
}

fn parse_json(report: &str) -> JsonValue {
    JsonValue::parse(report.trim()).expect("valid JSON report")
}

#[test]
fn record_then_replay_reproduces_the_batch_session_delta_stream() {
    let f = fixture();
    let common = [
        "--dtd",
        f.dtd.to_str().unwrap(),
        "--constraints",
        f.sigma.to_str().unwrap(),
    ];

    // The original run: batch --session.
    let mut batch_args = vec!["batch"];
    batch_args.extend_from_slice(&common);
    batch_args.extend_from_slice(&[
        "--manifest",
        f.manifest.to_str().unwrap(),
        "--session",
        f.script.to_str().unwrap(),
        "--format",
        "json",
    ]);
    let (batch_report, batch_code) = run(batch_args);
    assert_eq!(batch_code, 0, "{batch_report}");
    let batch_json = parse_json(&batch_report);

    // Record the same script into a binary delta log.
    let mut record_args = vec!["journal", "record"];
    record_args.extend_from_slice(&common);
    record_args.extend_from_slice(&[
        "--manifest",
        f.manifest.to_str().unwrap(),
        "--script",
        f.script.to_str().unwrap(),
        "--log",
        f.log.to_str().unwrap(),
        "--format",
        "json",
    ]);
    let (record_report, record_code) = run(record_args);
    assert_eq!(record_code, 0, "{record_report}");
    let record_json = parse_json(&record_report);
    assert_eq!(
        record_json.get("command").and_then(JsonValue::as_str),
        Some("journal-record")
    );
    assert!(f.log.exists(), "the delta log was written");

    // Replay the binary log through a replica: no script, no documents —
    // only the log and the spec.
    let mut replay_args = vec!["journal", "replay"];
    replay_args.extend_from_slice(&common);
    replay_args.extend_from_slice(&["--log", f.log.to_str().unwrap(), "--format", "json"]);
    let (replay_report, replay_code) = run(replay_args.clone());
    assert_eq!(replay_code, 0, "{replay_report}");
    let replay_json = parse_json(&replay_report);
    assert_eq!(
        replay_json.get("command").and_then(JsonValue::as_str),
        Some("journal-replay")
    );
    assert_eq!(
        replay_json.get("truncated"),
        Some(&JsonValue::Bool(false)),
        "a complete log is machine-readably marked un-truncated"
    );

    // The delta stream is identical across all three commands — byte for
    // byte, structured witnesses included — and the replayed final reports
    // match the original run's.
    let deltas = |json: &JsonValue| json.get("deltas").expect("deltas array").render();
    let reports = |json: &JsonValue| json.get("reports").expect("reports array").render();
    assert_eq!(deltas(&batch_json), deltas(&record_json));
    assert_eq!(deltas(&batch_json), deltas(&replay_json));
    assert_eq!(reports(&batch_json), reports(&record_json));
    assert_eq!(reports(&batch_json), reports(&replay_json));
    assert_eq!(batch_json.get("total"), replay_json.get("total"));
    assert_eq!(batch_json.get("clean"), replay_json.get("clean"));

    // A torn tail (crash mid-append) drops only the final commit: replay
    // still succeeds on the durable prefix.
    let full = fs::read(&f.log).unwrap();
    fs::write(&f.log, &full[..full.len() - 2]).unwrap();
    let (torn_report, torn_code) = run(replay_args);
    assert!(torn_code <= 1, "{torn_report}");
    let torn_json = parse_json(&torn_report);
    assert_eq!(
        torn_json.get("truncated"),
        Some(&JsonValue::Bool(true)),
        "JSON consumers must see that a commit was torn off"
    );
    let torn_deltas = torn_json
        .get("deltas")
        .and_then(JsonValue::as_array)
        .unwrap();
    let full_deltas = batch_json
        .get("deltas")
        .and_then(JsonValue::as_array)
        .unwrap();
    assert_eq!(torn_deltas.len(), full_deltas.len() - 1);
    assert_eq!(
        JsonValue::Array(torn_deltas.to_vec()).render(),
        JsonValue::Array(full_deltas[..torn_deltas.len()].to_vec()).render(),
        "the durable prefix replays unchanged"
    );
    fs::remove_file(&f.log).ok();
}

#[test]
fn replay_rejects_the_wrong_spec_and_garbage_logs() {
    let f = fixture();
    let (report, code) = run([
        "journal",
        "record",
        "--dtd",
        f.dtd.to_str().unwrap(),
        "--constraints",
        f.sigma.to_str().unwrap(),
        "--manifest",
        f.manifest.to_str().unwrap(),
        "--script",
        f.script.to_str().unwrap(),
        "--log",
        f.log.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{report}");

    // Same DTD, different Σ ⇒ different SpecId ⇒ structured rejection.
    let other_sigma = temp_file("other.xic", "");
    let (report, code) = run([
        "journal",
        "replay",
        "--dtd",
        f.dtd.to_str().unwrap(),
        "--constraints",
        other_sigma.to_str().unwrap(),
        "--log",
        f.log.to_str().unwrap(),
    ]);
    assert_eq!(code, 2, "{report}");
    assert!(report.contains("journal error"), "{report}");
    assert!(report.contains("belongs to"), "{report}");

    // Garbage is not a journal.
    let garbage = temp_file("garbage.xicj", "not a journal at all");
    let (report, code) = run([
        "journal",
        "replay",
        "--dtd",
        f.dtd.to_str().unwrap(),
        "--constraints",
        f.sigma.to_str().unwrap(),
        "--log",
        garbage.to_str().unwrap(),
    ]);
    assert_eq!(code, 2, "{report}");
    assert!(report.contains("not a journal"), "{report}");

    // Usage errors name the missing pieces.
    let (report, code) = run(["journal"]);
    assert_eq!(code, 2);
    assert!(report.contains("record, replay or inspect"), "{report}");
    let (report, code) = run(["journal", "frobnicate"]);
    assert_eq!(code, 2);
    assert!(report.contains("frobnicate"), "{report}");
    fs::remove_file(&f.log).ok();
}

#[test]
fn inspect_describes_delta_and_session_logs() {
    let f = fixture();
    let (report, code) = run([
        "journal",
        "record",
        "--dtd",
        f.dtd.to_str().unwrap(),
        "--constraints",
        f.sigma.to_str().unwrap(),
        "--manifest",
        f.manifest.to_str().unwrap(),
        "--script",
        f.script.to_str().unwrap(),
        "--log",
        f.log.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{report}");

    // Inspect needs no spec at all.
    let (report, code) = run(["journal", "inspect", "--log", f.log.to_str().unwrap()]);
    assert_eq!(code, 0, "{report}");
    assert!(report.contains("kind: delta-stream"), "{report}");
    assert!(report.contains("spec: spec-"), "{report}");
    assert!(report.contains("commit 1"), "{report}");

    // A session-document log renders its ops in the script syntax — the
    // human-readable twin — resolving names through --dtd.
    let session_log = {
        use xic_engine::{CompiledSpec, Session};
        use xic_xml::EditOp;
        let spec =
            CompiledSpec::from_sources(SCHOOL_DTD, Some("school"), "teacher.name -> teacher")
                .unwrap();
        let mut session = Session::new(&spec);
        let doc = session
            .open_source("<school><teacher name=\"Joe\"/></school>")
            .unwrap();
        let name = spec.dtd().attr_by_name("name").unwrap();
        let teacher = session.tree(doc).unwrap().elements().nth(1).unwrap();
        session
            .apply(
                doc,
                &[EditOp::SetAttr {
                    element: teacher,
                    attr: name,
                    value: "Sue".into(),
                }],
            )
            .unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!(
            "xic-journal-cli-{}-{:?}-session.xicj",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_file(&path).ok();
        session.persist_to(doc, &path).unwrap();
        session
            .apply(
                doc,
                &[EditOp::SetAttr {
                    element: teacher,
                    attr: name,
                    value: "Ann".into(),
                }],
            )
            .unwrap();
        session.persist_to(doc, &path).unwrap();
        path
    };
    let (report, code) = run([
        "journal",
        "inspect",
        "--log",
        session_log.to_str().unwrap(),
        "--dtd",
        f.dtd.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{report}");
    assert!(report.contains("kind: session-doc"), "{report}");
    assert!(report.contains("base"), "{report}");
    assert!(report.contains("set 1 name Ann"), "{report}");

    // JSON inspection round-trips through the CLI's own parser.
    let (json_report, code) = run([
        "journal",
        "inspect",
        "--log",
        session_log.to_str().unwrap(),
        "--format",
        "json",
    ]);
    assert_eq!(code, 0, "{json_report}");
    let parsed = parse_json(&json_report);
    assert_eq!(JsonValue::parse(&parsed.render()).unwrap(), parsed);
    assert_eq!(
        parsed.get("kind").and_then(JsonValue::as_str),
        Some("session-doc")
    );
    let records = parsed.get("records").and_then(JsonValue::as_array).unwrap();
    assert_eq!(records.len(), 2);
    assert_eq!(
        records[0].get("kind").and_then(JsonValue::as_str),
        Some("base")
    );
    // Without a DTD the op renders with raw ids.
    assert_eq!(
        records[1].get("detail").and_then(JsonValue::as_str),
        Some("set 1 @0 Ann")
    );
    assert_eq!(parsed.get("torn_bytes"), Some(&JsonValue::Number(0.0)));
    assert_eq!(parsed.get("corrupt"), Some(&JsonValue::Null));

    // Mid-log corruption is reported (exit 1) but the prefix still prints.
    let mut bytes = fs::read(&f.log).unwrap();
    let flip = 24 + 20; // inside the first record's payload
    bytes[flip] ^= 0xFF;
    fs::write(&f.log, &bytes).unwrap();
    let (report, code) = run(["journal", "inspect", "--log", f.log.to_str().unwrap()]);
    assert_eq!(code, 1, "{report}");
    assert!(report.contains("CORRUPT"), "{report}");
    fs::remove_file(&f.log).ok();
    fs::remove_file(&session_log).ok();
}
