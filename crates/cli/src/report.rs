//! JSON views of engine report types — and their inverses.
//!
//! `--format json` output is consumed by scripts and by the delta
//! subscribers of `xic batch --session`, so the mapping between
//! [`Violation`] / [`DocReport`] / [`BatchDelta`] and [`JsonValue`] lives
//! here as a total, *invertible* pair of functions per type: `*_json`
//! renders, `*_from_json` parses back.  Round-tripping is property-tested
//! in `crates/cli/tests/json_roundtrip.rs` over arbitrary values (surrogate
//! pairs, extreme numbers, the lot) — any report the CLI can emit can be
//! reconstructed from its own output without an external JSON library.

use xic_constraints::Violation;
use xic_engine::{BatchDelta, ClosedDoc, DocChange, DocFault, DocHandle, DocReport};
use xic_xml::NodeId;

use crate::json::JsonValue;

/// A machine-readable view of one violation, witnesses included.
pub fn violation_json(v: &Violation) -> JsonValue {
    match v {
        Violation::KeyViolation {
            constraint,
            witnesses,
            values,
        } => JsonValue::object(vec![
            ("kind", JsonValue::string("key_violation")),
            ("constraint", JsonValue::string(constraint.clone())),
            (
                "witnesses",
                JsonValue::Array(vec![
                    JsonValue::int(witnesses.0.index()),
                    JsonValue::int(witnesses.1.index()),
                ]),
            ),
            ("values", JsonValue::strings(values.iter().cloned())),
        ]),
        Violation::InclusionViolation {
            constraint,
            witness,
            values,
        } => JsonValue::object(vec![
            ("kind", JsonValue::string("inclusion_violation")),
            ("constraint", JsonValue::string(constraint.clone())),
            ("witness", JsonValue::int(witness.index())),
            ("values", JsonValue::strings(values.iter().cloned())),
        ]),
        Violation::MissingAttributes {
            constraint,
            witness,
        } => JsonValue::object(vec![
            ("kind", JsonValue::string("missing_attributes")),
            ("constraint", JsonValue::string(constraint.clone())),
            ("witness", JsonValue::int(witness.index())),
        ]),
        Violation::NegationUnsatisfied { constraint } => JsonValue::object(vec![
            ("kind", JsonValue::string("negation_unsatisfied")),
            ("constraint", JsonValue::string(constraint.clone())),
        ]),
    }
}

/// Parses a [`violation_json`] rendering back into a [`Violation`].
pub fn violation_from_json(json: &JsonValue) -> Result<Violation, String> {
    let kind = require_str(json, "kind")?;
    let constraint = require_str(json, "constraint")?.to_string();
    match kind {
        "key_violation" => {
            let witnesses = json
                .get("witnesses")
                .and_then(JsonValue::as_array)
                .ok_or("key_violation: missing `witnesses` array")?;
            let [first, second] = witnesses else {
                return Err(format!(
                    "key_violation: expected 2 witnesses, got {}",
                    witnesses.len()
                ));
            };
            Ok(Violation::KeyViolation {
                constraint,
                witnesses: (node_id(first)?, node_id(second)?),
                values: string_array(json, "values")?,
            })
        }
        "inclusion_violation" => Ok(Violation::InclusionViolation {
            constraint,
            witness: node_id(
                json.get("witness")
                    .ok_or("inclusion_violation: missing `witness`")?,
            )?,
            values: string_array(json, "values")?,
        }),
        "missing_attributes" => Ok(Violation::MissingAttributes {
            constraint,
            witness: node_id(
                json.get("witness")
                    .ok_or("missing_attributes: missing `witness`")?,
            )?,
        }),
        "negation_unsatisfied" => Ok(Violation::NegationUnsatisfied { constraint }),
        other => Err(format!("unknown violation kind `{other}`")),
    }
}

/// A machine-readable view of one per-document report (the element shape of
/// `xic batch --format json`'s `reports` array).
pub fn doc_report_json(r: &DocReport) -> JsonValue {
    JsonValue::object(vec![
        ("index", JsonValue::int(r.index)),
        ("label", JsonValue::string(r.label.clone())),
        (
            "parse_error",
            r.parse_error
                .as_ref()
                .map(|e| JsonValue::string(e.clone()))
                .unwrap_or(JsonValue::Null),
        ),
        (
            "validation_errors",
            JsonValue::strings(r.validation_errors.iter().cloned()),
        ),
        (
            "violations",
            JsonValue::Array(r.violations.iter().map(violation_json).collect()),
        ),
        (
            "fault",
            r.fault
                .as_ref()
                .map(|f| {
                    JsonValue::object(vec![
                        ("kind", JsonValue::string(f.kind().to_string())),
                        ("cause", JsonValue::string(f.cause().to_string())),
                    ])
                })
                .unwrap_or(JsonValue::Null),
        ),
        ("clean", JsonValue::Bool(r.is_clean())),
    ])
}

/// Parses a [`doc_report_json`] rendering back into a [`DocReport`] (the
/// derived `clean` member is ignored — it is recomputed from the parts).
pub fn doc_report_from_json(json: &JsonValue) -> Result<DocReport, String> {
    let parse_error = match json.get("parse_error") {
        None | Some(JsonValue::Null) => None,
        Some(JsonValue::String(s)) => Some(s.clone()),
        Some(other) => return Err(format!("`parse_error` must be null or a string: {other:?}")),
    };
    let violations = json
        .get("violations")
        .and_then(JsonValue::as_array)
        .ok_or("missing `violations` array")?
        .iter()
        .map(violation_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let fault = match json.get("fault") {
        None | Some(JsonValue::Null) => None,
        Some(obj) => {
            let cause = obj
                .get("cause")
                .and_then(JsonValue::as_str)
                .ok_or("`fault` must carry a string `cause`")?
                .to_string();
            match obj.get("kind").and_then(JsonValue::as_str) {
                Some("panic") => Some(DocFault::Panic { cause }),
                Some("resource") => Some(DocFault::Resource { cause }),
                other => return Err(format!("unknown fault kind {other:?}")),
            }
        }
    };
    Ok(DocReport {
        index: usize_field(json, "index")?,
        label: require_str(json, "label")?.to_string(),
        parse_error,
        validation_errors: string_array(json, "validation_errors")?,
        violations,
        fault,
    })
}

/// A machine-readable view of one commit delta of `xic batch --session`.
/// Documents are identified by their handle (`doc-N`) — the stable identity
/// a subscriber keys its replica on, since labels need not be unique.
pub fn delta_json(delta: &BatchDelta) -> JsonValue {
    JsonValue::object(vec![
        ("seq", JsonValue::int(delta.seq as usize)),
        ("rechecked", JsonValue::int(delta.rechecked_docs)),
        ("total", JsonValue::int(delta.total)),
        ("clean", JsonValue::int(delta.clean)),
        (
            "shards",
            JsonValue::Array(
                delta
                    .shards
                    .iter()
                    .map(|&s| JsonValue::int(s as usize))
                    .collect(),
            ),
        ),
        (
            "closed",
            JsonValue::Array(
                delta
                    .closed
                    .iter()
                    .map(|c| {
                        JsonValue::object(vec![
                            ("doc", JsonValue::string(c.handle.to_string())),
                            ("label", JsonValue::string(c.label.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "changes",
            JsonValue::Array(delta.changes.iter().map(doc_change_json).collect()),
        ),
    ])
}

/// Parses a [`delta_json`] rendering back into a [`BatchDelta`] — the
/// inverse that makes the `xic batch --session` / `xic journal` delta
/// stream a total, round-trippable interchange format (property-tested in
/// `crates/cli/tests/json_roundtrip.rs` next to the report and violation
/// pairs).
pub fn delta_from_json(json: &JsonValue) -> Result<BatchDelta, String> {
    let closed = json
        .get("closed")
        .and_then(JsonValue::as_array)
        .ok_or("missing `closed` array")?
        .iter()
        .map(|c| {
            Ok(ClosedDoc {
                handle: handle_from_json(c)?,
                label: require_str(c, "label")?.to_string(),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let changes = json
        .get("changes")
        .and_then(JsonValue::as_array)
        .ok_or("missing `changes` array")?
        .iter()
        .map(doc_change_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(BatchDelta {
        seq: usize_field(json, "seq")? as u64,
        changes,
        closed,
        rechecked_docs: usize_field(json, "rechecked")?,
        total: usize_field(json, "total")?,
        clean: usize_field(json, "clean")?,
        shards: shard_array(json)?,
    })
}

/// Parses a `shards` array of shard ids (u32 each).
fn shard_array(json: &JsonValue) -> Result<Vec<u32>, String> {
    json.get("shards")
        .and_then(JsonValue::as_array)
        .ok_or("missing `shards` array")?
        .iter()
        .map(|v| match v {
            JsonValue::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u32::MAX as f64 => {
                Ok(*n as u32)
            }
            other => Err(format!("`shards` holds a non-u32 element: {other:?}")),
        })
        .collect()
}

/// Parses one element of a delta's `changes` array back into a
/// [`DocChange`] (the derived `clean` member is ignored — it is recomputed
/// from the report).
pub fn doc_change_from_json(json: &JsonValue) -> Result<DocChange, String> {
    let was_clean = match json.get("was_clean") {
        None | Some(JsonValue::Null) => None,
        Some(JsonValue::Bool(b)) => Some(*b),
        Some(other) => return Err(format!("`was_clean` must be null or a bool: {other:?}")),
    };
    Ok(DocChange {
        handle: handle_from_json(json)?,
        was_clean,
        report: doc_report_from_json(json.get("report").ok_or("missing `report` member")?)?,
        shards: shard_array(json)?,
    })
}

/// Parses the `doc-N` handle rendering back into a [`DocHandle`].
fn handle_from_json(json: &JsonValue) -> Result<DocHandle, String> {
    let rendered = require_str(json, "doc")?;
    let raw = rendered
        .strip_prefix("doc-")
        .and_then(|n| n.parse::<u64>().ok())
        .ok_or_else(|| format!("`doc` must render as doc-<number>, got `{rendered}`"))?;
    Ok(DocHandle::from_raw(raw))
}

fn doc_change_json(change: &DocChange) -> JsonValue {
    JsonValue::object(vec![
        ("doc", JsonValue::string(change.handle.to_string())),
        (
            "was_clean",
            match change.was_clean {
                None => JsonValue::Null,
                Some(b) => JsonValue::Bool(b),
            },
        ),
        ("clean", JsonValue::Bool(change.now_clean())),
        (
            "shards",
            JsonValue::Array(
                change
                    .shards
                    .iter()
                    .map(|&s| JsonValue::int(s as usize))
                    .collect(),
            ),
        ),
        ("report", doc_report_json(&change.report)),
    ])
}

fn require_str<'j>(json: &'j JsonValue, key: &str) -> Result<&'j str, String> {
    json.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing string member `{key}`"))
}

fn string_array(json: &JsonValue, key: &str) -> Result<Vec<String>, String> {
    json.get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("missing array member `{key}`"))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("`{key}` holds a non-string element"))
        })
        .collect()
}

fn usize_field(json: &JsonValue, key: &str) -> Result<usize, String> {
    match json.get(key) {
        Some(JsonValue::Number(n)) if n.fract() == 0.0 && *n >= 0.0 && *n < 9e15 => Ok(*n as usize),
        other => Err(format!("`{key}` must be a non-negative integer: {other:?}")),
    }
}

fn node_id(json: &JsonValue) -> Result<NodeId, String> {
    match json {
        JsonValue::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u32::MAX as f64 => {
            Ok(NodeId(*n as u32))
        }
        other => Err(format!("witness must be a u32 node id: {other:?}")),
    }
}
