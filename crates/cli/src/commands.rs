//! The CLI subcommands.
//!
//! Every command is a plain function from parsed inputs to a
//! [`CommandOutcome`]; `main` only does I/O, so the whole front end is
//! testable without spawning processes.

use std::collections::HashMap;
use std::fs;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use xic_constraints::{
    check_document, parse_constraint, parse_constraint_set, ConstraintClass, ConstraintSet,
};
use xic_coord::{CoordConfig, CoordError, Coordinator};
use xic_core::{
    diagnose as diagnose_spec, CardinalitySystem, CheckerConfig, ConsistencyChecker,
    ConsistencyOutcome, Diagnosis, ImplicationChecker, SystemOptions,
};
use xic_dtd::{analyze, parse_dtd, Dtd};
use xic_engine::journal::{inspect_log, read_delta_log, write_delta_log};
use xic_engine::{
    BatchDelta, BatchDoc, BatchEngine, BatchReport, CompiledSpec, CorpusReplica, CorpusSession,
    Engine, EngineMetrics, Limits, SessionError, SpecId,
};
use xic_server::{Client, ClientError, Server, ServerConfig};
use xic_telemetry::RegistrySnapshot;
use xic_xml::{
    parse_document_budgeted, validate, write_document, EditOp, NodeId, ParseError, ValuePool,
    XmlTree,
};

use crate::args::ParsedArgs;
use crate::error::CliError;
use crate::json::JsonValue;
use crate::report::{delta_json, doc_report_json, violation_json};

/// The report format selected by `--format` (plain text by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReportFormat {
    Text,
    Json,
}

fn report_format(args: &ParsedArgs) -> Result<ReportFormat, CliError> {
    match args.get("format") {
        // `--json` is an alias of `--format json`; an explicit `--format`
        // wins when both are given.
        None => Ok(if args.has_flag("json") {
            ReportFormat::Json
        } else {
            ReportFormat::Text
        }),
        Some("text") => Ok(ReportFormat::Text),
        Some("json") => Ok(ReportFormat::Json),
        Some(other) => Err(CliError::Usage(format!(
            "option `--format` expects `text` or `json`, got `{other}`"
        ))),
    }
}

/// The result of running a subcommand: a human-readable report plus the
/// process exit code (`0` positive verdict, `1` negative verdict, `2`
/// unknown / error).
#[derive(Debug, Clone)]
pub struct CommandOutcome {
    /// The report to print on stdout.
    pub report: String,
    /// The process exit code.
    pub exit_code: i32,
}

impl CommandOutcome {
    fn new(report: String, exit_code: i32) -> CommandOutcome {
        CommandOutcome { report, exit_code }
    }
}

/// Loads and parses a DTD file; `--root` overrides the root element type.
pub fn load_dtd(path: &str, root: Option<&str>) -> Result<Dtd, CliError> {
    let text = read_file(path)?;
    parse_dtd(&text, root).map_err(|e| CliError::Dtd(format!("{path}: {e}")))
}

/// Loads and parses a constraint file over an already-parsed DTD.
pub fn load_constraints(path: &str, dtd: &Dtd) -> Result<ConstraintSet, CliError> {
    let text = read_file(path)?;
    parse_constraint_set(&text, dtd).map_err(|e| CliError::Constraints(format!("{path}: {e}")))
}

fn read_file(path: &str) -> Result<String, CliError> {
    fs::read_to_string(Path::new(path)).map_err(|source| CliError::Io {
        path: path.to_string(),
        source,
    })
}

/// The resource limits selected by `--max-nodes`, `--max-depth` and
/// `--deadline-ms` (all unlimited by default).  Shared by `validate`,
/// `batch` and `journal record`.
fn limits_from_args(args: &ParsedArgs) -> Result<Limits, CliError> {
    Ok(Limits {
        max_doc_nodes: args.get_usize("max-nodes")?,
        max_depth: args.get_usize("max-depth")?,
        deadline: args
            .get_usize("deadline-ms")?
            .map(|ms| Duration::from_millis(ms as u64)),
        ..Limits::UNLIMITED
    })
}

/// Maps a session/corpus error onto the CLI taxonomy: resource rejections
/// exit 3, contained faults (poisoned documents) exit 4, everything else is
/// a document error (exit 2).
fn session_error(context: &str, e: &SessionError) -> CliError {
    match e {
        SessionError::Resource(r) => CliError::Resource(format!("{context}: {r}")),
        SessionError::Poisoned { .. } => CliError::Fault(format!("{context}: {e}")),
        _ => CliError::Document(format!("{context}: {e}")),
    }
}

/// Maps a wire client error onto the same CLI taxonomy: the server's
/// structured fault records carry the exit code on the wire (3 resource,
/// 4 contained fault, 2 everything else), transport failures are I/O
/// errors, and protocol surprises are document errors.
fn client_error(context: &str, e: ClientError) -> CliError {
    match e {
        ClientError::Fault(fault) => match fault.exit_code() {
            3 => CliError::Resource(format!("{context}: {fault}")),
            4 => CliError::Fault(format!("{context}: {fault}")),
            _ => CliError::Document(format!("{context}: {fault}")),
        },
        ClientError::Io(source) => CliError::Io {
            path: context.to_string(),
            source,
        },
        other => CliError::Document(format!("{context}: {other}")),
    }
}

/// Maps a coordinator error onto the CLI taxonomy, preserving the exit
/// code the coordinator derived (worker faults keep their wire code; a
/// lost worker is a contained fault, exit 4 — recover-or-reject).
fn coord_error(context: &str, e: CoordError) -> CliError {
    match e.exit_code() {
        3 => CliError::Resource(format!("{context}: {e}")),
        4 => CliError::Fault(format!("{context}: {e}")),
        _ => match e {
            CoordError::Io {
                context: path,
                source,
            } => CliError::Io { path, source },
            other => CliError::Document(format!("{context}: {other}")),
        },
    }
}

/// Parses a document under the CLI resource limits, mapping a tripped
/// budget to [`CliError::Resource`] (exit 3) rather than a document error.
fn parse_limited(text: &str, dtd: &Dtd, limits: &Limits, path: &str) -> Result<XmlTree, CliError> {
    parse_document_budgeted(text, dtd, ValuePool::new(), &limits.parse_budget()).map_err(
        |(err, _pool)| match err {
            ParseError::Xml(e) => CliError::Document(format!("{path}: {e}")),
            ParseError::Budget(b) => CliError::Resource(format!("{path}: {b}")),
        },
    )
}

fn checker_config(args: &ParsedArgs) -> CheckerConfig {
    CheckerConfig {
        synthesize_witness: !args.has_flag("no-witness"),
        ..Default::default()
    }
}

fn spec_inputs(args: &ParsedArgs) -> Result<(Dtd, ConstraintSet), CliError> {
    let dtd = load_dtd(args.require("dtd")?, args.get("root"))?;
    let sigma = match args.get("constraints") {
        Some(path) => load_constraints(path, &dtd)?,
        None => ConstraintSet::new(),
    };
    Ok((dtd, sigma))
}

/// Renders a frozen metrics registry as the JSON `metrics` member: one
/// object each for counters, gauges and histograms (histograms as
/// `{count, sum, max, p50, p90, p99}` summaries, latency values in
/// nanoseconds as recorded).
fn snapshot_json(snapshot: &RegistrySnapshot) -> JsonValue {
    let counters = JsonValue::Object(
        snapshot
            .counters
            .iter()
            .map(|c| (c.name.clone(), JsonValue::Number(c.value as f64)))
            .collect(),
    );
    let gauges = JsonValue::Object(
        snapshot
            .gauges
            .iter()
            .map(|g| (g.name.clone(), JsonValue::Number(g.value as f64)))
            .collect(),
    );
    let histograms = JsonValue::Object(
        snapshot
            .histograms
            .iter()
            .map(|h| {
                (
                    h.name.clone(),
                    JsonValue::object(vec![
                        ("count", JsonValue::Number(h.count as f64)),
                        ("sum", JsonValue::Number(h.sum as f64)),
                        ("max", JsonValue::Number(h.max as f64)),
                        ("p50", JsonValue::Number(h.p50 as f64)),
                        ("p90", JsonValue::Number(h.p90 as f64)),
                        ("p99", JsonValue::Number(h.p99 as f64)),
                    ]),
                )
            })
            .collect(),
    );
    JsonValue::object(vec![
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
    ])
}

/// The `--metrics` JSON block: the process-global engine registry, frozen.
fn metrics_json() -> JsonValue {
    snapshot_json(&EngineMetrics::capture_global().snapshot)
}

/// The `--metrics` text block: a `metrics:` header plus the aligned
/// instrument table, indented two spaces.
fn metrics_text() -> String {
    let mut block = String::from("metrics:\n");
    for line in EngineMetrics::capture_global().render_text().lines() {
        block.push_str("  ");
        block.push_str(line);
        block.push('\n');
    }
    block
}

/// `xic check` — static consistency analysis of a specification.
pub fn check(args: &ParsedArgs) -> Result<CommandOutcome, CliError> {
    let (dtd, sigma) = spec_inputs(args)?;
    let checker = ConsistencyChecker::with_config(checker_config(args));
    let outcome = checker
        .check(&dtd, &sigma)
        .map_err(|e| CliError::Spec(e.to_string()))?;

    let mut report = String::new();
    report.push_str(&format!(
        "specification: {} element types, {} attributes, {} constraints\n",
        dtd.num_types(),
        dtd.num_attrs(),
        sigma.len()
    ));
    if let Some(class) = sigma.smallest_class() {
        report.push_str(&format!("constraint class: {}\n", class.paper_name()));
    }
    let (verdict, code) = match &outcome {
        ConsistencyOutcome::Consistent { .. } => ("CONSISTENT", 0),
        ConsistencyOutcome::Inconsistent { .. } => ("INCONSISTENT", 1),
        ConsistencyOutcome::Unknown { .. } => ("UNKNOWN", 2),
    };
    report.push_str(&format!("verdict: {verdict}\n"));
    report.push_str(&format!("reason: {}\n", outcome.explanation()));
    if let Some(witness) = outcome.witness() {
        if let Some(out_path) = args.get("witness-out") {
            let doc = write_document(witness, &dtd);
            fs::write(out_path, &doc).map_err(|source| CliError::Io {
                path: out_path.to_string(),
                source,
            })?;
            report.push_str(&format!("witness document written to {out_path}\n"));
        } else if !args.has_flag("quiet") {
            report.push_str("witness document:\n");
            report.push_str(&write_document(witness, &dtd));
            if !report.ends_with('\n') {
                report.push('\n');
            }
        }
    }
    Ok(CommandOutcome::new(report, code))
}

/// `xic implies` — does the specification imply the queried constraint?
pub fn implies(args: &ParsedArgs) -> Result<CommandOutcome, CliError> {
    let (dtd, sigma) = spec_inputs(args)?;
    let query = args.require("query")?;
    let phi = parse_constraint(query, &dtd)
        .map_err(|e| CliError::Constraints(format!("--query: {e}")))?;
    let checker = ImplicationChecker::with_config(checker_config(args));
    let outcome = checker
        .implies(&dtd, &sigma, &phi)
        .map_err(|e| CliError::Spec(e.to_string()))?;

    let mut report = String::new();
    report.push_str(&format!("query: {}\n", phi.render(&dtd)));
    let code = if outcome.is_implied() {
        report.push_str("verdict: IMPLIED\n");
        0
    } else if outcome.is_not_implied() {
        report.push_str("verdict: NOT IMPLIED\n");
        1
    } else {
        report.push_str("verdict: UNKNOWN\n");
        2
    };
    report.push_str(&format!("reason: {}\n", outcome.explanation()));
    if let Some(counterexample) = outcome.counterexample() {
        if !args.has_flag("quiet") {
            report.push_str("counterexample document:\n");
            report.push_str(&write_document(counterexample, &dtd));
            if !report.ends_with('\n') {
                report.push('\n');
            }
        }
    }
    Ok(CommandOutcome::new(report, code))
}

/// `xic validate` — dynamic validation of a document against DTD and Σ.
pub fn validate_doc(args: &ParsedArgs) -> Result<CommandOutcome, CliError> {
    let format = report_format(args)?;
    let (dtd, sigma) = spec_inputs(args)?;
    let limits = limits_from_args(args)?;
    let doc_path = args.require("doc")?;
    let text = read_file(doc_path)?;
    let tree = parse_limited(&text, &dtd, &limits, doc_path)?;

    let structural = validate(&tree, &dtd);
    let violations = check_document(&dtd, &tree, &sigma);
    if format == ReportFormat::Json {
        let ok = structural.is_empty() && violations.is_empty();
        let mut fields = vec![
            ("command", JsonValue::string("validate")),
            ("doc", JsonValue::string(doc_path)),
            ("nodes", JsonValue::int(tree.num_nodes())),
            ("elements", JsonValue::int(tree.elements().count())),
            (
                "structure_errors",
                JsonValue::strings(structural.iter().map(|e| e.to_string())),
            ),
            (
                "violations",
                JsonValue::Array(violations.iter().map(violation_json).collect()),
            ),
            ("clean", JsonValue::Bool(ok)),
        ];
        if args.has_flag("metrics") {
            fields.push(("metrics", metrics_json()));
        }
        let json = JsonValue::object(fields);
        let mut report = json.render();
        report.push('\n');
        return Ok(CommandOutcome::new(report, if ok { 0 } else { 1 }));
    }

    let mut report = String::new();
    report.push_str(&format!(
        "document: {} nodes ({} elements)\n",
        tree.num_nodes(),
        tree.elements().count()
    ));
    if structural.is_empty() {
        report.push_str("structure: conforms to the DTD\n");
    } else {
        for e in &structural {
            report.push_str(&format!("structure error: {e}\n"));
        }
    }
    if violations.is_empty() {
        report.push_str("constraints: all satisfied\n");
    } else {
        for v in &violations {
            report.push_str(&format!("constraint violation: {}\n", v.constraint()));
        }
        // The paper's motivation for static checks: tell data problems apart
        // from meaningless specifications.
        let checker = ConsistencyChecker::with_config(CheckerConfig {
            synthesize_witness: false,
            ..Default::default()
        });
        if let Ok(outcome) = checker.check(&dtd, &sigma) {
            if outcome.is_inconsistent() {
                report.push_str(
                    "note: the specification itself is inconsistent — no document can ever \
                     satisfy it; fix the specification, not the data\n",
                );
            } else if outcome.is_consistent() {
                report.push_str(
                    "note: the specification is consistent, so these are data problems\n",
                );
            }
        }
    }
    if args.has_flag("metrics") {
        report.push_str(&metrics_text());
    }
    let ok = structural.is_empty() && violations.is_empty();
    Ok(CommandOutcome::new(report, if ok { 0 } else { 1 }))
}

/// `xic diagnose` — explain an inconsistent specification by extracting a
/// minimal inconsistent core of its constraints.
pub fn diagnose(args: &ParsedArgs) -> Result<CommandOutcome, CliError> {
    let (dtd, sigma) = spec_inputs(args)?;
    let config = CheckerConfig {
        synthesize_witness: false,
        ..Default::default()
    };
    let diagnosis =
        diagnose_spec(&dtd, &sigma, &config).map_err(|e| CliError::Spec(e.to_string()))?;
    let code = match &diagnosis {
        Diagnosis::Consistent => 0,
        Diagnosis::DtdUnsatisfiable | Diagnosis::Core { .. } => 1,
        Diagnosis::Unknown { .. } => 2,
    };
    let mut report = diagnosis.render(&dtd);
    if !report.ends_with('\n') {
        report.push('\n');
    }
    Ok(CommandOutcome::new(report, code))
}

/// `xic classify` — report the constraint class and applicable procedures.
pub fn classify(args: &ParsedArgs) -> Result<CommandOutcome, CliError> {
    let (dtd, sigma) = spec_inputs(args)?;
    sigma
        .validate(&dtd)
        .map_err(|e| CliError::Spec(format!("{e:?}")))?;
    let mut report = String::new();
    report.push_str(&format!("constraints ({}):\n", sigma.len()));
    for c in sigma.iter() {
        report.push_str(&format!("  {}\n", c.render(&dtd)));
    }
    match sigma.smallest_class() {
        Some(class) => {
            report.push_str(&format!("class: {}\n", class.paper_name()));
            let (consistency, implication) = complexity_of(class);
            report.push_str(&format!("consistency: {consistency}\n"));
            report.push_str(&format!("implication: {implication}\n"));
        }
        None => report.push_str("class: (empty constraint set)\n"),
    }
    report.push_str(&format!(
        "primary-key restriction: {}\n",
        if sigma.satisfies_primary_key_restriction() {
            "satisfied"
        } else {
            "violated"
        }
    ));
    Ok(CommandOutcome::new(report, 0))
}

/// The paper's Figure 5 row for a constraint class.
fn complexity_of(class: ConstraintClass) -> (&'static str, &'static str) {
    match class {
        ConstraintClass::KeysOnly => ("decidable in linear time (Theorem 3.5)", {
            "decidable in linear time (Theorem 3.5)"
        }),
        ConstraintClass::UnaryKeyForeignKey => (
            "NP-complete (Theorem 4.7); decided exactly via integer programming",
            "coNP-complete (Theorem 4.10); decided exactly via integer programming",
        ),
        ConstraintClass::UnaryKeyInclusion => (
            "NP-complete (Theorem 4.1/4.7); decided exactly via integer programming",
            "coNP-complete (Theorem 5.4); decided exactly via integer programming",
        ),
        ConstraintClass::UnaryKeyNegInclusion => {
            ("NP-complete (Corollary 4.9)", "coNP-complete (Theorem 5.4)")
        }
        ConstraintClass::UnaryKeyNegInclusionNeg => {
            ("NP-complete (Theorem 5.1)", "coNP-complete (Theorem 5.4)")
        }
        ConstraintClass::MultiKeyForeignKey => (
            "undecidable (Theorem 3.1); sound bounded search only",
            "undecidable (Corollary 3.4); sound bounded search only",
        ),
    }
}

/// `xic explain` — print the DTD analysis and the cardinality system.
pub fn explain(args: &ParsedArgs) -> Result<CommandOutcome, CliError> {
    let (dtd, sigma) = spec_inputs(args)?;
    let mut report = String::new();
    report.push_str("== DTD ==\n");
    report.push_str(&dtd.render());
    if !report.ends_with('\n') {
        report.push('\n');
    }
    let analysis = analyze(&dtd);
    report.push_str(&format!(
        "satisfiable: {}\n",
        if analysis.satisfiable() {
            "yes"
        } else {
            "no — no finite document conforms"
        }
    ));
    for ty in dtd.types() {
        report.push_str(&format!(
            "  {}: occurs {}\n",
            dtd.type_name(ty),
            if analysis.can_occur_twice(ty) {
                "any number of times"
            } else if analysis.can_occur(ty) {
                "at most once"
            } else {
                "never"
            }
        ));
    }
    report.push_str("\n== cardinality system Ψ(D,Σ) ==\n");
    if sigma.iter().all(|c| c.is_unary()) {
        match CardinalitySystem::build(&dtd, &sigma, &SystemOptions::default()) {
            Ok(system) => {
                report.push_str(&format!(
                    "{} variables, {} linear constraints, {} conditionals\n",
                    system.program().num_vars(),
                    system.program().num_constraints(),
                    system.program().num_conditionals()
                ));
                report.push_str(&system.program().render());
            }
            Err(e) => report.push_str(&format!("not available: {e}\n")),
        }
    } else {
        report.push_str(
            "not available: the specification contains multi-attribute constraints, for which \
             consistency is undecidable (Theorem 3.1)\n",
        );
    }
    if !report.ends_with('\n') {
        report.push('\n');
    }
    Ok(CommandOutcome::new(report, 0))
}

/// `xic batch` — validate every document named by a manifest file against
/// one compiled specification, in parallel.
///
/// The manifest lists one document path per line (blank lines and `#`
/// comments are skipped); relative paths resolve against the manifest's
/// directory.  The specification is compiled once ([`CompiledSpec`]) and the
/// documents are spread over a worker pool (`--threads`, default: the
/// machine's parallelism).  The per-document report is ordered by manifest
/// position regardless of the thread count.
pub fn batch(args: &ParsedArgs) -> Result<CommandOutcome, CliError> {
    let format = report_format(args)?;
    let (dtd, sigma) = spec_inputs(args)?;
    let limits = limits_from_args(args)?;
    let spec = CompiledSpec::compile_with(dtd, sigma, checker_config(args))
        .map_err(|e| CliError::Spec(e.to_string()))?;

    let docs = match args.get("manifest") {
        Some(path) => load_manifest(path)?,
        None => {
            // `--session` scripts can open their own documents; plain
            // batch runs need the manifest.
            if args.get("session").is_none() {
                args.require("manifest")?;
            }
            Vec::new()
        }
    };

    if let Some(script_path) = args.get("session") {
        return batch_session(
            &spec,
            docs,
            script_path,
            limits,
            format,
            args.has_flag("quiet"),
            args.has_flag("metrics"),
        );
    }

    let threads = match args.get_usize("threads")? {
        Some(threads) => threads,
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    };
    let engine = BatchEngine::with_limits(threads, limits);
    let report_data = engine.validate_batch(&spec, &docs);
    let code = batch_exit_code(&report_data);

    if format == ReportFormat::Json {
        let reports: Vec<JsonValue> = report_data.reports().iter().map(doc_report_json).collect();
        let mut fields = vec![
            ("command", JsonValue::string("batch")),
            ("spec", JsonValue::string(spec.id().to_string())),
            ("total", JsonValue::int(report_data.total())),
            ("clean", JsonValue::int(report_data.clean_count())),
            ("reports", JsonValue::Array(reports)),
        ];
        if args.has_flag("metrics") {
            fields.push(("metrics", metrics_json()));
        }
        let json = JsonValue::object(fields);
        let mut report = json.render();
        report.push('\n');
        return Ok(CommandOutcome::new(report, code));
    }

    let mut report = String::new();
    report.push_str(&format!(
        "spec {}: {} constraints over {} element types\n",
        spec.id(),
        spec.sigma().len(),
        spec.dtd().num_types()
    ));
    if !args.has_flag("quiet") {
        report.push_str(&report_data.render());
    } else {
        report.push_str(&format!(
            "{}/{} documents clean\n",
            report_data.clean_count(),
            report_data.total()
        ));
    }
    if args.has_flag("metrics") {
        report.push_str(&metrics_text());
    }
    Ok(CommandOutcome::new(report, code))
}

/// The batch exit code, most severe condition first: a contained panic
/// (`4`) outranks a resource rejection (`3`), which outranks a plain
/// validation failure (`1`).
fn batch_exit_code(report: &BatchReport) -> i32 {
    if report.panicked_count() > 0 {
        4
    } else if report.resource_rejected_count() > 0 {
        3
    } else if report.clean_count() == report.total() {
        0
    } else {
        1
    }
}

/// Reads a batch manifest: one document path per line, blank lines and `#`
/// comments skipped, relative paths resolved against the manifest's
/// directory.
fn load_manifest(manifest_path: &str) -> Result<Vec<BatchDoc>, CliError> {
    let manifest = read_file(manifest_path)?;
    let base = Path::new(manifest_path)
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_default();
    let mut docs = Vec::new();
    for line in manifest.lines() {
        let entry = line.trim();
        if entry.is_empty() || entry.starts_with('#') {
            continue;
        }
        let path = base.join(entry);
        let content = read_file(&path.to_string_lossy())?;
        docs.push(BatchDoc::new(entry, content));
    }
    Ok(docs)
}

/// Drives a [`CorpusSession`] from an edit script: the shared engine
/// behind `xic batch --session` and `xic journal record`.
///
/// The manifest documents (if any) are opened first; the script then
/// issues one directive per line (blank lines and `#` comments skipped;
/// `<node>` is a node id as printed in JSON witnesses):
///
/// ```text
/// open   <label> <path>            # parse a document and open it
/// set    <label> <node> <attr> <value…>
/// add    <label> <parent-node> <element-type>
/// text   <label> <parent-node> <value…>
/// remove <label> <node>
/// close  <label>
/// commit                           # emit the delta since the last commit
/// ```
///
/// Every `commit` emits one delta (only edited documents are re-checked); a
/// trailing commit is implied if the script ends with uncommitted actions.
/// This script syntax is the human-readable twin of the binary journal:
/// `xic journal record` turns a run of it into a delta log, and
/// `xic journal inspect` renders op records back in the same syntax.
fn run_session_script<'s>(
    spec: &'s CompiledSpec,
    docs: Vec<BatchDoc>,
    script_path: &str,
    limits: Limits,
) -> Result<(CorpusSession<'s>, Vec<BatchDelta>), CliError> {
    let script = read_file(script_path)?;
    let base = Path::new(script_path)
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_default();

    let mut corpus = CorpusSession::with_limits(spec, limits);
    for doc in docs {
        corpus
            .open_source(&doc.label, &doc.content)
            .map_err(|e| session_error(&doc.label, &e))?;
    }
    let mut pending = corpus.num_docs() > 0;
    let mut deltas: Vec<BatchDelta> = Vec::new();

    for (lineno, line) in script.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: String| CliError::Usage(format!("{script_path}:{}: {msg}", lineno + 1));
        let mut words = line.split_whitespace();
        let directive = words.next().expect("non-empty line has a first word");
        match directive {
            "commit" => {
                // `try_commit` honors the session deadline; an aborted
                // commit keeps its progress staged, but a script cannot
                // retry on its own, so the rejection surfaces as exit 3.
                let delta = corpus.try_commit().map_err(|e| {
                    CliError::Resource(format!("{script_path}:{}: {e}", lineno + 1))
                })?;
                deltas.push(delta);
                pending = false;
                continue;
            }
            "open" => {
                let label = words
                    .next()
                    .ok_or_else(|| err("`open` expects a label".into()))?;
                let path = words
                    .next()
                    .ok_or_else(|| err("`open` expects a path".into()))?;
                let content = read_file(&base.join(path).to_string_lossy())?;
                corpus
                    .open_source(label, &content)
                    .map_err(|e| session_error(label, &e))?;
                pending = true;
                continue;
            }
            _ => {}
        }
        // Everything else targets an open document by label.
        let label = words
            .next()
            .ok_or_else(|| err(format!("`{directive}` expects a document label")))?;
        let handle = corpus
            .handle_by_label(label)
            .ok_or_else(|| err(format!("no open document labelled `{label}`")))?;
        let mut node_arg = |what: &str| -> Result<NodeId, CliError> {
            let word = words
                .next()
                .ok_or_else(|| err(format!("`{directive}` expects a {what} node id")))?;
            word.parse::<u32>()
                .map(NodeId)
                .map_err(|_| err(format!("`{word}` is not a node id")))
        };
        let op = match directive {
            "set" => {
                let element = node_arg("target")?;
                let attr_name = words
                    .next()
                    .ok_or_else(|| err("`set` expects an attribute name".into()))?;
                let attr = spec
                    .dtd()
                    .attr_by_name(attr_name)
                    .ok_or_else(|| err(format!("unknown attribute `{attr_name}`")))?;
                let value = words.collect::<Vec<_>>().join(" ");
                EditOp::SetAttr {
                    element,
                    attr,
                    value,
                }
            }
            "add" => {
                let parent = node_arg("parent")?;
                let ty_name = words
                    .next()
                    .ok_or_else(|| err("`add` expects an element type".into()))?;
                let ty = spec
                    .dtd()
                    .type_by_name(ty_name)
                    .ok_or_else(|| err(format!("unknown element type `{ty_name}`")))?;
                EditOp::AddElement { parent, ty }
            }
            "text" => EditOp::AddText {
                parent: node_arg("parent")?,
                value: words.collect::<Vec<_>>().join(" "),
            },
            "remove" => EditOp::RemoveSubtree {
                element: node_arg("target")?,
            },
            "close" => {
                corpus
                    .close(handle)
                    .map_err(|e| CliError::Document(e.to_string()))?;
                pending = true;
                continue;
            }
            other => return Err(err(format!("unknown directive `{other}`"))),
        };
        corpus
            .apply(handle, std::slice::from_ref(&op))
            .map_err(|e| session_error(&format!("{script_path}:{}: {label}", lineno + 1), &e))?;
        pending = true;
    }
    if pending {
        let delta = corpus
            .try_commit()
            .map_err(|e| CliError::Resource(format!("{script_path}: final commit: {e}")))?;
        deltas.push(delta);
    }
    Ok((corpus, deltas))
}

/// How a delta stream should be presented: the command identity, extra
/// JSON fields, and text-mode options (see [`render_delta_stream`]).
struct DeltaStreamView<'a> {
    command: &'a str,
    headline: &'a str,
    extra: &'a [(&'a str, JsonValue)],
    notes: &'a [String],
    format: ReportFormat,
    quiet: bool,
    /// Append the engine metrics block (`--metrics`).
    metrics: bool,
}

/// Renders a delta stream plus final reports — the shared output shape of
/// `xic batch --session`, `xic journal record` and `xic journal replay`.
/// The `deltas` and `reports` JSON arrays are rendered identically across
/// the three commands, so a recorded log replayed from disk reproduces the
/// original delta stream byte for byte.
fn render_delta_stream(
    view: &DeltaStreamView<'_>,
    spec: &CompiledSpec,
    deltas: &[BatchDelta],
    final_report: &xic_engine::BatchReport,
) -> CommandOutcome {
    let &DeltaStreamView {
        command,
        headline,
        extra,
        notes,
        format,
        quiet,
        metrics,
    } = view;
    // Same severity ladder as one-shot batch: contained faults (4) outrank
    // resource rejections (3) outrank validation failures (1).
    let code = batch_exit_code(final_report);

    if format == ReportFormat::Json {
        let mut fields = vec![
            ("command", JsonValue::string(command)),
            ("spec", JsonValue::string(spec.id().to_string())),
        ];
        for (key, value) in extra {
            fields.push((key, value.clone()));
        }
        fields.extend([
            (
                "deltas",
                JsonValue::Array(deltas.iter().map(delta_json).collect()),
            ),
            ("total", JsonValue::int(final_report.total())),
            ("clean", JsonValue::int(final_report.clean_count())),
            (
                "reports",
                JsonValue::Array(final_report.reports().iter().map(doc_report_json).collect()),
            ),
        ]);
        if metrics {
            fields.push(("metrics", metrics_json()));
        }
        let json = JsonValue::object(fields);
        let mut report = json.render();
        report.push('\n');
        return CommandOutcome::new(report, code);
    }

    let mut report = String::new();
    report.push_str(&format!(
        "spec {}: {headline} over {} commits\n",
        spec.id(),
        deltas.len()
    ));
    for note in notes {
        report.push_str(&format!("note: {note}\n"));
    }
    for delta in deltas {
        report.push_str(&format!(
            "commit {}: {}/{} documents clean ({} rechecked)\n",
            delta.seq, delta.clean, delta.total, delta.rechecked_docs
        ));
        for change in &delta.changes {
            report.push_str(&format!(
                "  ~ [{}] {}: {}\n",
                change.report.index,
                change.report.label,
                change.transition().label()
            ));
            if !quiet {
                for e in &change.report.validation_errors {
                    report.push_str(&format!("      invalid: {e}\n"));
                }
                for v in &change.report.violations {
                    report.push_str(&format!("      violation: {v}\n"));
                }
            }
        }
        for closed in &delta.closed {
            report.push_str(&format!(
                "  - closed {} ({})\n",
                closed.label, closed.handle
            ));
        }
    }
    report.push_str(&format!(
        "final: {}/{} documents clean\n",
        final_report.clean_count(),
        final_report.total()
    ));
    if metrics {
        report.push_str(&metrics_text());
    }
    CommandOutcome::new(report, code)
}

/// `xic batch --session SCRIPT` — replay an edit script over a corpus
/// session and report the [`BatchDelta`] of every commit (see
/// [`run_session_script`] for the directive syntax).  With `--format json`
/// the outcome is one object carrying the `deltas` stream and the final
/// per-document `reports`.
#[allow(clippy::too_many_arguments)]
fn batch_session(
    spec: &CompiledSpec,
    docs: Vec<BatchDoc>,
    script_path: &str,
    limits: Limits,
    format: ReportFormat,
    quiet: bool,
    metrics: bool,
) -> Result<CommandOutcome, CliError> {
    let (corpus, deltas) = run_session_script(spec, docs, script_path, limits)?;
    let final_report = corpus.report();
    Ok(render_delta_stream(
        &DeltaStreamView {
            command: "batch-session",
            headline: "corpus session",
            extra: &[("script", JsonValue::string(script_path))],
            notes: &[],
            format,
            quiet,
            metrics,
        },
        spec,
        &deltas,
        &final_report,
    ))
}

/// `xic journal <record|replay|inspect>` — the durable-journal surface.
///
/// * `record` runs a session script (the `xic batch --session` directive
///   syntax — the human-readable twin of the binary log) and persists the
///   resulting [`BatchDelta`] stream to `--log` as a delta-stream journal;
/// * `replay` feeds a recorded log to a [`CorpusReplica`] and reproduces
///   the original delta stream and final reports — from the log alone, no
///   document is re-shipped or re-parsed (a torn tail from a crash is
///   truncated and the durable prefix replayed);
/// * `inspect` prints the self-describing header and per-record summary of
///   any journal file (ops rendered back in the script syntax; pass
///   `--dtd` to resolve attribute and element names).
pub fn journal(args: &ParsedArgs) -> Result<CommandOutcome, CliError> {
    match args.positional.first().map(String::as_str) {
        Some("record") => journal_record(args),
        Some("replay") => journal_replay(args),
        Some("inspect") => journal_inspect(args),
        Some(other) => Err(CliError::Usage(format!(
            "unknown journal action `{other}` (expected record, replay or inspect)"
        ))),
        None => Err(CliError::Usage(
            "`journal` expects an action: record, replay or inspect".to_string(),
        )),
    }
}

fn journal_record(args: &ParsedArgs) -> Result<CommandOutcome, CliError> {
    let format = report_format(args)?;
    let (dtd, sigma) = spec_inputs(args)?;
    let spec = CompiledSpec::compile_with(dtd, sigma, checker_config(args))
        .map_err(|e| CliError::Spec(e.to_string()))?;
    let docs = match args.get("manifest") {
        Some(path) => load_manifest(path)?,
        None => Vec::new(),
    };
    let script_path = args.require("script")?;
    let log_path = args.require("log")?;
    let (corpus, deltas) = run_session_script(&spec, docs, script_path, limits_from_args(args)?)?;
    let receipt = write_delta_log(log_path, spec.id(), &deltas)
        .map_err(|e| CliError::Journal(format!("{log_path}: {e}")))?;
    let final_report = corpus.report();
    Ok(render_delta_stream(
        &DeltaStreamView {
            command: "journal-record",
            headline: "journal record",
            extra: &[
                ("script", JsonValue::string(script_path)),
                ("log", JsonValue::string(log_path)),
            ],
            notes: &[format!(
                "recorded {} deltas ({} bytes) to {log_path}",
                receipt.records_written, receipt.durable_bytes
            )],
            format,
            quiet: args.has_flag("quiet"),
            metrics: args.has_flag("metrics"),
        },
        &spec,
        &deltas,
        &final_report,
    ))
}

fn journal_replay(args: &ParsedArgs) -> Result<CommandOutcome, CliError> {
    let format = report_format(args)?;
    let (dtd, sigma) = spec_inputs(args)?;
    let spec = CompiledSpec::compile_with(dtd, sigma, checker_config(args))
        .map_err(|e| CliError::Spec(e.to_string()))?;
    let log_path = args.require("log")?;
    let log = read_delta_log(log_path, spec.id())
        .map_err(|e| CliError::Journal(format!("{log_path}: {e}")))?;
    let mut replica = CorpusReplica::new(spec.id());
    replica
        .apply_deltas(&log.deltas)
        .map_err(|e| CliError::Journal(format!("{log_path}: {e}")))?;
    let final_report = replica.report();
    let mut notes = Vec::new();
    if log.truncated {
        notes.push(format!(
            "torn trailing record dropped; replayed the durable prefix ({} commits)",
            log.deltas.len()
        ));
    }
    Ok(render_delta_stream(
        &DeltaStreamView {
            command: "journal-replay",
            headline: "journal replay",
            // `truncated` is machine-readable: JSON consumers must be able
            // to tell a crash-truncated durable prefix from a complete log.
            extra: &[
                ("log", JsonValue::string(log_path)),
                ("truncated", JsonValue::Bool(log.truncated)),
            ],
            notes: &notes,
            format,
            quiet: args.has_flag("quiet"),
            metrics: args.has_flag("metrics"),
        },
        &spec,
        &log.deltas,
        &final_report,
    ))
}

fn journal_inspect(args: &ParsedArgs) -> Result<CommandOutcome, CliError> {
    let format = report_format(args)?;
    let log_path = args.require("log")?;
    let dtd = match args.get("dtd") {
        Some(path) => Some(load_dtd(path, args.get("root"))?),
        None => None,
    };
    let summary = inspect_log(log_path, dtd.as_ref())
        .map_err(|e| CliError::Journal(format!("{log_path}: {e}")))?;
    let damaged = summary.corrupt.is_some();
    let kind = summary
        .kind
        .map(|k| k.to_string())
        .unwrap_or_else(|| format!("unknown (kind byte {})", summary.kind_code));

    if format == ReportFormat::Json {
        let records: Vec<JsonValue> = summary
            .records
            .iter()
            .map(|r| {
                JsonValue::object(vec![
                    ("seq", JsonValue::int(r.seq as usize)),
                    ("offset", JsonValue::int(r.offset as usize)),
                    ("kind", JsonValue::string(r.kind.clone())),
                    ("bytes", JsonValue::int(r.bytes)),
                    ("detail", JsonValue::string(r.detail.clone())),
                ])
            })
            .collect();
        let mut fields = vec![
            ("command", JsonValue::string("journal-inspect")),
            ("log", JsonValue::string(log_path)),
            ("kind", JsonValue::string(kind)),
            ("spec", JsonValue::string(summary.spec.to_string())),
            ("records", JsonValue::Array(records)),
            (
                "durable_bytes",
                JsonValue::int(summary.durable_bytes as usize),
            ),
            ("torn_bytes", JsonValue::int(summary.torn_bytes as usize)),
            (
                "corrupt",
                summary
                    .corrupt
                    .as_ref()
                    .map(|c| JsonValue::string(c.clone()))
                    .unwrap_or(JsonValue::Null),
            ),
        ];
        if args.has_flag("metrics") {
            fields.push(("metrics", metrics_json()));
        }
        let json = JsonValue::object(fields);
        let mut report = json.render();
        report.push('\n');
        return Ok(CommandOutcome::new(report, i32::from(damaged)));
    }

    let mut report = String::new();
    report.push_str(&format!("journal: {log_path}\n"));
    report.push_str(&format!(
        "kind: {kind} (format v{})\n",
        xic_engine::journal::FORMAT_VERSION
    ));
    report.push_str(&format!("spec: {}\n", summary.spec));
    report.push_str(&format!(
        "records: {} ({} durable bytes)\n",
        summary.records.len(),
        summary.durable_bytes
    ));
    for record in &summary.records {
        report.push_str(&format!(
            "  #{:<4} @{:<8} {:<6} {:>6} B  {}\n",
            record.seq, record.offset, record.kind, record.bytes, record.detail
        ));
    }
    if summary.torn_bytes > 0 {
        report.push_str(&format!(
            "torn tail: {} trailing bytes are not a complete record (recovery truncates them)\n",
            summary.torn_bytes
        ));
    }
    if let Some(corrupt) = &summary.corrupt {
        report.push_str(&format!("CORRUPT: {corrupt}\n"));
    }
    if args.has_flag("metrics") {
        report.push_str(&metrics_text());
    }
    Ok(CommandOutcome::new(report, i32::from(damaged)))
}

/// `xic stats` — compile the specification, exercise the verdict cache
/// (one consistency miss, one hit — optionally validating `--doc` too) and
/// print the engine's metrics registry: every counter, gauge and latency
/// histogram, followed by the compile-phase trace timeline.
pub fn stats(args: &ParsedArgs) -> Result<CommandOutcome, CliError> {
    let format = report_format(args)?;
    let (dtd, sigma) = spec_inputs(args)?;
    let registry = EngineMetrics::global_registry();
    let spec = CompiledSpec::compile_with(dtd, sigma, checker_config(args))
        .map_err(|e| CliError::Spec(e.to_string()))?;
    let engine = Engine::with_registry(64, std::sync::Arc::clone(registry));
    // Twice on purpose: the first call is a cache miss that runs the
    // procedure, the second is served from the verdict cache — so the
    // printed registry always shows both sides of the cache traffic.
    let verdict = engine.consistency(&spec);
    let _ = engine.consistency(&spec);
    if let Some(doc_path) = args.get("doc") {
        let text = read_file(doc_path)?;
        let tree = spec
            .parse_document(&text)
            .map_err(|e| CliError::Document(format!("{doc_path}: {e}")))?;
        let _ = spec.check_document(&tree);
    }

    let metrics = EngineMetrics::capture(registry);
    if format == ReportFormat::Json {
        let json = JsonValue::object(vec![
            ("command", JsonValue::string("stats")),
            ("spec", JsonValue::string(spec.id().to_string())),
            (
                "consistent",
                match verdict.decision() {
                    Some(b) => JsonValue::Bool(b),
                    None => JsonValue::Null,
                },
            ),
            ("metrics", snapshot_json(&metrics.snapshot)),
        ]);
        let mut report = json.render();
        report.push('\n');
        return Ok(CommandOutcome::new(report, 0));
    }

    let mut report = String::new();
    report.push_str(&format!(
        "spec {}: {} constraints over {} element types\n",
        spec.id(),
        spec.sigma().len(),
        spec.dtd().num_types()
    ));
    report.push_str(&metrics_text());
    let events = registry.trace_events();
    if !events.is_empty() && !args.has_flag("quiet") {
        report.push_str("trace (most recent spans):\n");
        for event in events.iter().rev().take(32).rev() {
            report.push_str(&format!(
                "  {:>10}ns  {}{} ({}ns)\n",
                event.start_ns,
                "  ".repeat(event.depth as usize),
                event.name,
                event.dur_ns
            ));
        }
    }
    Ok(CommandOutcome::new(report, 0))
}

/// `xic serve` — host the compiled spec as a long-running validation
/// service behind a TCP (`--listen`) and/or Unix-socket (`--socket`)
/// listener, then block until a wire `--shutdown` drains it.  The bound
/// address is printed (and optionally written to `--addr-file`) *before*
/// blocking, so scripts can start the server with port 0 and discover the
/// port.
pub fn serve(args: &ParsedArgs) -> Result<CommandOutcome, CliError> {
    let (dtd, sigma) = spec_inputs(args)?;
    let spec = CompiledSpec::compile_with(dtd, sigma, checker_config(args))
        .map_err(|e| CliError::Spec(e.to_string()))?;

    let tcp = match args.get("listen") {
        Some(s) => Some(s.parse::<SocketAddr>().map_err(|_| {
            CliError::Usage(format!("option `--listen` expects IP:PORT, got `{s}`"))
        })?),
        None => None,
    };
    let unix = args.get("socket").map(PathBuf::from);
    if tcp.is_none() && unix.is_none() {
        return Err(CliError::Usage(
            "serve needs --listen and/or --socket".into(),
        ));
    }

    let mut config = ServerConfig {
        tcp,
        unix,
        limits: limits_from_args(args)?,
        state_dir: args.get("state-dir").map(PathBuf::from),
        ..ServerConfig::default()
    };
    if let Some(n) = args.get_usize("max-sessions")? {
        config.max_sessions = n;
    }
    if let Some(n) = args.get_usize("workers")? {
        config.workers = n.max(1);
    }
    if let Some(ms) = args.get_usize("idle-ms")? {
        config.idle_timeout = Some(Duration::from_millis(ms as u64));
    }
    config.shards = args.has_flag("shards");
    if let Some(list) = args.get("scope-shards") {
        let mut scope = Vec::new();
        for part in list.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            scope.push(part.parse::<u32>().map_err(|_| {
                CliError::Usage(format!(
                    "option `--scope-shards` expects comma-separated shard ids, got `{part}`"
                ))
            })?);
        }
        config.scope = Some(scope);
    }

    let server = Server::start(Arc::new(spec), config).map_err(|source| CliError::Io {
        path: "serve".to_string(),
        source,
    })?;

    // The banner goes to stdout immediately rather than into the outcome
    // report: `wait()` blocks until shutdown, and launcher scripts need the
    // bound address first.
    use std::io::Write as _;
    if let Some(addr) = server.tcp_addr() {
        if let Some(path) = args.get("addr-file") {
            fs::write(path, addr.to_string()).map_err(|source| CliError::Io {
                path: path.to_string(),
                source,
            })?;
        }
        println!("listening on {addr}");
    }
    if let Some(path) = server.unix_path() {
        println!("listening on {}", path.display());
    }
    std::io::stdout().flush().ok();

    let report = server.wait();
    Ok(CommandOutcome::new(
        format!(
            "server stopped: {} session(s) drained, {} delta(s) persisted, {} connection(s) served\n",
            report.drained_sessions, report.persisted_deltas, report.connections
        ),
        0,
    ))
}

/// The endpoint named on the command line, for error context.
fn endpoint_label(args: &ParsedArgs) -> String {
    args.get("addr")
        .or_else(|| args.get("socket"))
        .unwrap_or("server")
        .to_string()
}

/// Dials the service named by `--addr` (TCP) or `--socket` (Unix) and runs
/// the hello handshake for `session`.
fn dial(args: &ParsedArgs, spec: SpecId, session: &str) -> Result<Client, CliError> {
    if let Some(path) = args.get("socket") {
        #[cfg(unix)]
        return Client::connect_unix(path, spec, session).map_err(|e| client_error(path, e));
        #[cfg(not(unix))]
        return Err(CliError::Usage(format!(
            "--socket is not supported on this platform ({path})"
        )));
    }
    match args.get("addr") {
        Some(addr) => {
            let sockaddr = addr.parse::<SocketAddr>().map_err(|_| {
                CliError::Usage(format!("option `--addr` expects IP:PORT, got `{addr}`"))
            })?;
            Client::connect_tcp(sockaddr, spec, session).map_err(|e| client_error(addr, e))
        }
        None => Err(CliError::Usage("connect needs --addr or --socket".into())),
    }
}

/// The session surface the shared `--script` grammar drives: a wire
/// [`Client`] (`xic connect`) or a multi-process [`Coordinator`]
/// (`xic coord`) — one grammar, one runner, two transports.
trait ScriptTarget {
    fn open_doc(&mut self, ctx: &str, label: &str, source: &str) -> Result<u64, CliError>;
    fn apply(&mut self, ctx: &str, handle: u64, op: &EditOp) -> Result<(), CliError>;
    fn close_doc(&mut self, ctx: &str, handle: u64) -> Result<(), CliError>;
    fn commit(&mut self, ctx: &str) -> Result<BatchDelta, CliError>;
}

impl ScriptTarget for Client {
    fn open_doc(&mut self, ctx: &str, label: &str, source: &str) -> Result<u64, CliError> {
        Client::open_doc(self, label, source).map_err(|e| client_error(ctx, e))
    }

    fn apply(&mut self, ctx: &str, handle: u64, op: &EditOp) -> Result<(), CliError> {
        Client::apply(self, handle, std::slice::from_ref(op))
            .map(|_| ())
            .map_err(|e| client_error(ctx, e))
    }

    fn close_doc(&mut self, ctx: &str, handle: u64) -> Result<(), CliError> {
        Client::close_doc(self, handle)
            .map(|_| ())
            .map_err(|e| client_error(ctx, e))
    }

    fn commit(&mut self, ctx: &str) -> Result<BatchDelta, CliError> {
        Client::commit(self).map_err(|e| client_error(ctx, e))
    }
}

impl ScriptTarget for Coordinator {
    fn open_doc(&mut self, ctx: &str, label: &str, source: &str) -> Result<u64, CliError> {
        Coordinator::open_doc(self, label, source).map_err(|e| coord_error(ctx, e))
    }

    fn apply(&mut self, ctx: &str, handle: u64, op: &EditOp) -> Result<(), CliError> {
        Coordinator::apply(self, handle, std::slice::from_ref(op)).map_err(|e| coord_error(ctx, e))
    }

    fn close_doc(&mut self, ctx: &str, handle: u64) -> Result<(), CliError> {
        Coordinator::close_doc(self, handle)
            .map(|_| ())
            .map_err(|e| coord_error(ctx, e))
    }

    fn commit(&mut self, ctx: &str) -> Result<BatchDelta, CliError> {
        Coordinator::commit(self).map_err(|e| coord_error(ctx, e))
    }
}

/// Drives the shared `--script` directive syntax (see
/// [`run_session_script`]) against a remote session: every directive
/// becomes one request and every `commit` collects the acknowledged
/// [`BatchDelta`].  A trailing commit is implied, exactly as in the local
/// runner, so the same script produces the same delta stream either way.
fn run_remote_script(
    spec: &CompiledSpec,
    client: &mut impl ScriptTarget,
    script_path: &str,
) -> Result<Vec<BatchDelta>, CliError> {
    let script = read_file(script_path)?;
    let base = Path::new(script_path)
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_default();

    let mut handles: HashMap<String, u64> = HashMap::new();
    let mut deltas: Vec<BatchDelta> = Vec::new();
    let mut pending = false;

    for (lineno, line) in script.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: String| CliError::Usage(format!("{script_path}:{}: {msg}", lineno + 1));
        let ctx = format!("{script_path}:{}", lineno + 1);
        let mut words = line.split_whitespace();
        let directive = words.next().expect("non-empty line has a first word");
        match directive {
            "commit" => {
                let delta = client.commit(&ctx)?;
                deltas.push(delta);
                pending = false;
                continue;
            }
            "open" => {
                let label = words
                    .next()
                    .ok_or_else(|| err("`open` expects a label".into()))?;
                let path = words
                    .next()
                    .ok_or_else(|| err("`open` expects a path".into()))?;
                let content = read_file(&base.join(path).to_string_lossy())?;
                let handle = client.open_doc(&ctx, label, &content)?;
                handles.insert(label.to_string(), handle);
                pending = true;
                continue;
            }
            _ => {}
        }
        // Everything else targets a document opened by this script.
        let label = words
            .next()
            .ok_or_else(|| err(format!("`{directive}` expects a document label")))?;
        let &handle = handles.get(label).ok_or_else(|| {
            err(format!(
                "no document labelled `{label}` opened by this script"
            ))
        })?;
        let mut node_arg = |what: &str| -> Result<NodeId, CliError> {
            let word = words
                .next()
                .ok_or_else(|| err(format!("`{directive}` expects a {what} node id")))?;
            word.parse::<u32>()
                .map(NodeId)
                .map_err(|_| err(format!("`{word}` is not a node id")))
        };
        let op = match directive {
            "set" => {
                let element = node_arg("target")?;
                let attr_name = words
                    .next()
                    .ok_or_else(|| err("`set` expects an attribute name".into()))?;
                let attr = spec
                    .dtd()
                    .attr_by_name(attr_name)
                    .ok_or_else(|| err(format!("unknown attribute `{attr_name}`")))?;
                let value = words.collect::<Vec<_>>().join(" ");
                EditOp::SetAttr {
                    element,
                    attr,
                    value,
                }
            }
            "add" => {
                let parent = node_arg("parent")?;
                let ty_name = words
                    .next()
                    .ok_or_else(|| err("`add` expects an element type".into()))?;
                let ty = spec
                    .dtd()
                    .type_by_name(ty_name)
                    .ok_or_else(|| err(format!("unknown element type `{ty_name}`")))?;
                EditOp::AddElement { parent, ty }
            }
            "text" => EditOp::AddText {
                parent: node_arg("parent")?,
                value: words.collect::<Vec<_>>().join(" "),
            },
            "remove" => EditOp::RemoveSubtree {
                element: node_arg("target")?,
            },
            "close" => {
                client.close_doc(&ctx, handle)?;
                handles.remove(label);
                pending = true;
                continue;
            }
            other => return Err(err(format!("unknown directive `{other}`"))),
        };
        client.apply(&format!("{ctx}: {label}"), handle, &op)?;
        pending = true;
    }
    if pending {
        let delta = client.commit(&format!("{script_path}: final commit"))?;
        deltas.push(delta);
    }
    Ok(deltas)
}

/// `xic connect` — talk to a running service.  Exactly one of four actions
/// runs per invocation: `--shutdown` drains the server, `--stats` prints
/// its metrics registry, `--script` drives an edit script against the
/// attached `--session` and prints the replica-reconstructed delta stream,
/// and with no action flag the handshake result is reported (a ping).
pub fn connect(args: &ParsedArgs) -> Result<CommandOutcome, CliError> {
    let format = report_format(args)?;
    let session = args.get("session").unwrap_or("default");

    // The spec identity to negotiate: `--spec-id`, or the hash of the
    // locally compiled spec (which `--script` mode needs anyway, to resolve
    // attribute and element-type names).
    let local_spec = match args.get("dtd") {
        Some(_) => {
            let (dtd, sigma) = spec_inputs(args)?;
            Some(
                CompiledSpec::compile_with(dtd, sigma, checker_config(args))
                    .map_err(|e| CliError::Spec(e.to_string()))?,
            )
        }
        None => None,
    };
    let spec_id = match args.get("spec-id") {
        Some(hex) => hex
            .parse::<SpecId>()
            .map_err(|e| CliError::Usage(format!("option `--spec-id`: {e}")))?,
        None => match &local_spec {
            Some(spec) => spec.id(),
            None => {
                return Err(CliError::Usage(
                    "connect needs --spec-id or --dtd to identify the spec".into(),
                ))
            }
        },
    };

    let mut client = dial(args, spec_id, session)?;
    let target = endpoint_label(args);

    if args.has_flag("shutdown") {
        let sessions = client.shutdown().map_err(|e| client_error(&target, e))?;
        if format == ReportFormat::Json {
            let json = JsonValue::object(vec![
                ("command", JsonValue::string("connect")),
                ("action", JsonValue::string("shutdown")),
                ("spec", JsonValue::string(spec_id.to_string())),
                ("sessions", JsonValue::int(sessions as usize)),
            ]);
            let mut report = json.render();
            report.push('\n');
            return Ok(CommandOutcome::new(report, 0));
        }
        return Ok(CommandOutcome::new(
            format!("server shutting down: draining {sessions} session(s)\n"),
            0,
        ));
    }

    if args.has_flag("stats") {
        let snapshot = client.stats().map_err(|e| client_error(&target, e))?;
        if format == ReportFormat::Json {
            let json = JsonValue::object(vec![
                ("command", JsonValue::string("connect")),
                ("action", JsonValue::string("stats")),
                ("spec", JsonValue::string(spec_id.to_string())),
                ("metrics", snapshot_json(&snapshot)),
            ]);
            let mut report = json.render();
            report.push('\n');
            return Ok(CommandOutcome::new(report, 0));
        }
        let mut report = format!("server {target} (spec {spec_id}):\nmetrics:\n");
        for line in snapshot.render_text().lines() {
            report.push_str("  ");
            report.push_str(line);
            report.push('\n');
        }
        return Ok(CommandOutcome::new(report, 0));
    }

    if let Some(script_path) = args.get("script") {
        let spec = local_spec.as_ref().ok_or_else(|| {
            CliError::Usage(
                "connect --script needs --dtd (and --constraints) to resolve attribute and element names"
                    .into(),
            )
        })?;
        let deltas = run_remote_script(spec, &mut client, script_path)?;
        // `--shard K` subscribes the local replica to one touch-graph
        // component: it receives and applies only shard-K deltas and
        // reconstructs the shard projection of the session's report.
        let shard = args.get_usize("shard")?.map(|k| k as u32);
        let mut replica = match shard {
            Some(k) => CorpusReplica::new_sharded(spec_id, k),
            None => CorpusReplica::new(spec_id),
        };
        let synced = client
            .sync_replica(&mut replica)
            .map_err(|e| client_error(script_path, e))?;
        let final_report = replica.report();
        let headline = match shard {
            Some(k) => format!("remote session `{session}` (shard {k} subscription)"),
            None => format!("remote session `{session}`"),
        };
        let notes = match shard {
            Some(k) => vec![format!(
                "replica synced {synced} shard-{k} delta(s) from the server"
            )],
            None => vec![format!("replica synced {synced} delta(s) from the server")],
        };
        let extra = [
            ("session", JsonValue::string(session)),
            ("synced", JsonValue::int(synced)),
        ];
        return Ok(render_delta_stream(
            &DeltaStreamView {
                command: "connect",
                headline: &headline,
                extra: &extra,
                notes: &notes,
                format,
                quiet: args.has_flag("quiet"),
                metrics: args.has_flag("metrics"),
            },
            spec,
            &deltas,
            &final_report,
        ));
    }

    // No action flag: report the handshake result.
    let hello = client.hello();
    if format == ReportFormat::Json {
        let json = JsonValue::object(vec![
            ("command", JsonValue::string("connect")),
            ("action", JsonValue::string("ping")),
            ("spec", JsonValue::string(spec_id.to_string())),
            ("session", JsonValue::string(session)),
            ("last_seq", JsonValue::int(hello.last_seq as usize)),
            ("replica", JsonValue::Bool(hello.replica)),
        ]);
        let mut report = json.render();
        report.push('\n');
        return Ok(CommandOutcome::new(report, 0));
    }
    Ok(CommandOutcome::new(
        format!(
            "session `{session}` at {target}: last committed seq {}{}\n",
            hello.last_seq,
            if hello.replica {
                " (read-only replica)"
            } else {
                ""
            }
        ),
        0,
    ))
}

/// `xic coord` — multi-process sharded validation: spawn one scoped
/// `xic serve` child per shard group, drive the shared `--script` grammar
/// through the routing/merge layer, and print the merged delta stream —
/// the same output a monolithic session (`xic batch --session`) or a
/// single server (`xic connect --script`) produces for the same script.
/// The merged stream is replayed through a stock replica before
/// rendering, so what is printed is what any subscriber reconstructs.
pub fn coord(args: &ParsedArgs) -> Result<CommandOutcome, CliError> {
    let format = report_format(args)?;
    let script_path = args
        .get("script")
        .ok_or_else(|| CliError::Usage("coord needs --script".into()))?;
    // Compile locally first: the script needs name resolution, and a bad
    // spec should fail readably before any child process spawns.
    let (dtd, sigma) = spec_inputs(args)?;
    let spec = CompiledSpec::compile_with(dtd, sigma, checker_config(args))
        .map_err(|e| CliError::Spec(e.to_string()))?;

    let xic_bin = std::env::current_exe().map_err(|source| CliError::Io {
        path: "current executable".to_string(),
        source,
    })?;
    let config = CoordConfig {
        xic_bin,
        dtd: PathBuf::from(args.require("dtd")?),
        root: args.get("root").map(String::from),
        constraints: args.get("constraints").map(PathBuf::from),
        workers: args.get_usize("workers")?.unwrap_or(2).max(1),
        scratch: std::env::temp_dir().join(format!("xic-coord-{}", std::process::id())),
        session: args.get("session").unwrap_or("coord").to_string(),
        max_restarts: args.get_usize("max-restarts")?.unwrap_or(2),
    };
    let mut coordinator = Coordinator::launch(config).map_err(|e| coord_error("coord", e))?;
    let num_groups = coordinator.num_groups();
    let num_shards = spec.shard_plan().num_shards();

    let deltas = run_remote_script(&spec, &mut coordinator, script_path)?;

    // The merged stream must satisfy every replica invariant: replay it
    // through a stock subscriber and render that reconstruction.
    let mut replica = CorpusReplica::new(spec.id());
    for delta in coordinator.deltas() {
        replica
            .apply_delta(delta)
            .map_err(|e| CliError::Journal(format!("merged delta rejected by replica: {e}")))?;
    }
    let final_report = replica.report();
    coordinator.shutdown();

    let headline =
        format!("coordinated session: {num_groups} shard worker(s) over {num_shards} shard(s)");
    let notes = vec![format!(
        "routed across {num_groups} worker process(es); merged deltas replayed through a stock replica"
    )];
    let extra = [
        ("workers", JsonValue::int(num_groups)),
        ("shards", JsonValue::int(num_shards)),
    ];
    Ok(render_delta_stream(
        &DeltaStreamView {
            command: "coord",
            headline: &headline,
            extra: &extra,
            notes: &notes,
            format,
            quiet: args.has_flag("quiet"),
            metrics: args.has_flag("metrics"),
        },
        &spec,
        &deltas,
        &final_report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::ARG_SPEC as SPEC;

    /// Writes a temp file with a unique name and returns its path.
    fn temp_file(name: &str, contents: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("xic-cli-test-{}-{}", std::process::id(), name));
        fs::write(&path, contents).unwrap();
        path
    }

    const TEACHERS_DTD: &str = r#"
        <!ELEMENT teachers (teacher+)>
        <!ELEMENT teacher (teach, research)>
        <!ELEMENT teach (subject, subject)>
        <!ELEMENT research (#PCDATA)>
        <!ELEMENT subject (#PCDATA)>
        <!ATTLIST teacher name CDATA #REQUIRED>
        <!ATTLIST subject taught_by CDATA #REQUIRED>
    "#;

    const SIGMA1: &str = "
        teacher.name -> teacher
        subject.taught_by -> subject
        subject.taught_by ref teacher.name
    ";

    const SIGMA_CONSISTENT: &str = "
        teacher.name -> teacher
        subject.taught_by ref teacher.name
    ";

    fn run(
        f: fn(&ParsedArgs) -> Result<CommandOutcome, CliError>,
        args: &[&str],
    ) -> CommandOutcome {
        let parsed = ParsedArgs::parse(args.iter().copied(), &SPEC).unwrap();
        f(&parsed).unwrap()
    }

    #[test]
    fn check_reports_the_paper_inconsistency() {
        let dtd = temp_file("d1.dtd", TEACHERS_DTD);
        let sigma = temp_file("sigma1.xic", SIGMA1);
        let out = run(
            check,
            &[
                "check",
                "--dtd",
                dtd.to_str().unwrap(),
                "--constraints",
                sigma.to_str().unwrap(),
            ],
        );
        assert_eq!(out.exit_code, 1, "{}", out.report);
        assert!(out.report.contains("INCONSISTENT"), "{}", out.report);
    }

    #[test]
    fn check_emits_a_witness_for_consistent_specs() {
        let dtd = temp_file("d1b.dtd", TEACHERS_DTD);
        let sigma = temp_file("sigma_ok.xic", SIGMA_CONSISTENT);
        let out = run(
            check,
            &[
                "check",
                "--dtd",
                dtd.to_str().unwrap(),
                "--constraints",
                sigma.to_str().unwrap(),
            ],
        );
        assert_eq!(out.exit_code, 0, "{}", out.report);
        assert!(out.report.contains("CONSISTENT"), "{}", out.report);
        assert!(out.report.contains("<teachers"), "{}", out.report);
    }

    #[test]
    fn check_without_constraints_is_dtd_satisfiability() {
        let dtd = temp_file("d2.dtd", "<!ELEMENT db (foo)>\n<!ELEMENT foo (foo)>");
        let out = run(check, &["check", "--dtd", dtd.to_str().unwrap()]);
        assert_eq!(out.exit_code, 1, "{}", out.report);
        assert!(out.report.contains("INCONSISTENT"));
    }

    #[test]
    fn implies_answers_both_ways() {
        let dtd = temp_file("d1c.dtd", TEACHERS_DTD);
        let sigma = temp_file("sigma_ok2.xic", SIGMA_CONSISTENT);
        // The inclusion component of the foreign key is implied.
        let out = run(
            implies,
            &[
                "implies",
                "--dtd",
                dtd.to_str().unwrap(),
                "--constraints",
                sigma.to_str().unwrap(),
                "--query",
                "subject.taught_by subset teacher.name",
            ],
        );
        assert_eq!(out.exit_code, 0, "{}", out.report);
        assert!(out.report.contains("IMPLIED"));
        // The subject key is not implied; a counterexample is printed.
        let out = run(
            implies,
            &[
                "implies",
                "--dtd",
                dtd.to_str().unwrap(),
                "--constraints",
                sigma.to_str().unwrap(),
                "--query",
                "subject.taught_by -> subject",
            ],
        );
        assert_eq!(out.exit_code, 1, "{}", out.report);
        assert!(out.report.contains("NOT IMPLIED"));
        assert!(out.report.contains("counterexample"), "{}", out.report);
    }

    #[test]
    fn validate_separates_data_problems_from_spec_problems() {
        let dtd = temp_file("lib.dtd", TEACHERS_DTD);
        let sigma = temp_file("sigma_ok3.xic", SIGMA_CONSISTENT);
        let doc = temp_file(
            "doc.xml",
            r#"<teachers>
                 <teacher name="Joe"><teach>
                   <subject taught_by="Joe">XML</subject>
                   <subject taught_by="Ann">DB</subject>
                 </teach><research>Web DB</research></teacher>
               </teachers>"#,
        );
        let out = run(
            validate_doc,
            &[
                "validate",
                "--dtd",
                dtd.to_str().unwrap(),
                "--constraints",
                sigma.to_str().unwrap(),
                "--doc",
                doc.to_str().unwrap(),
            ],
        );
        // taught_by="Ann" dangles, so the foreign key is violated — but the
        // spec itself is consistent, so the report blames the data.
        assert_eq!(out.exit_code, 1, "{}", out.report);
        assert!(
            out.report.contains("constraint violation"),
            "{}",
            out.report
        );
        assert!(out.report.contains("data problems"), "{}", out.report);
    }

    #[test]
    fn diagnose_extracts_the_minimal_core_of_sigma1() {
        let dtd = temp_file("d1f.dtd", TEACHERS_DTD);
        let sigma = temp_file("sigma1d.xic", SIGMA1);
        let out = run(
            diagnose,
            &[
                "diagnose",
                "--dtd",
                dtd.to_str().unwrap(),
                "--constraints",
                sigma.to_str().unwrap(),
            ],
        );
        assert_eq!(out.exit_code, 1, "{}", out.report);
        assert!(
            out.report.contains("minimal inconsistent core"),
            "{}",
            out.report
        );
        assert!(
            out.report.contains("subject.taught_by → subject"),
            "{}",
            out.report
        );
        // The teacher key is reported as not involved.
        assert!(out.report.contains("not involved"), "{}", out.report);
    }

    #[test]
    fn diagnose_on_a_consistent_spec_exits_zero() {
        let dtd = temp_file("d1g.dtd", TEACHERS_DTD);
        let sigma = temp_file("sigma_ok4.xic", SIGMA_CONSISTENT);
        let out = run(
            diagnose,
            &[
                "diagnose",
                "--dtd",
                dtd.to_str().unwrap(),
                "--constraints",
                sigma.to_str().unwrap(),
            ],
        );
        assert_eq!(out.exit_code, 0, "{}", out.report);
        assert!(out.report.contains("consistent"), "{}", out.report);
    }

    #[test]
    fn classify_names_the_class_and_complexity() {
        let dtd = temp_file("d1d.dtd", TEACHERS_DTD);
        let sigma = temp_file("sigma1b.xic", SIGMA1);
        let out = run(
            classify,
            &[
                "classify",
                "--dtd",
                dtd.to_str().unwrap(),
                "--constraints",
                sigma.to_str().unwrap(),
            ],
        );
        assert_eq!(out.exit_code, 0);
        assert!(out.report.contains("NP-complete"), "{}", out.report);
        assert!(
            out.report.contains("primary-key restriction"),
            "{}",
            out.report
        );
    }

    #[test]
    fn explain_prints_the_cardinality_system() {
        let dtd = temp_file("d1e.dtd", TEACHERS_DTD);
        let sigma = temp_file("sigma1c.xic", SIGMA1);
        let out = run(
            explain,
            &[
                "explain",
                "--dtd",
                dtd.to_str().unwrap(),
                "--constraints",
                sigma.to_str().unwrap(),
            ],
        );
        assert_eq!(out.exit_code, 0);
        assert!(out.report.contains("cardinality system"), "{}", out.report);
        assert!(out.report.contains("ext(teacher)"), "{}", out.report);
    }

    #[test]
    fn validate_json_round_trips_with_witnesses() {
        use crate::json::JsonValue;
        let dtd = temp_file("json.dtd", TEACHERS_DTD);
        let sigma = temp_file("json.xic", SIGMA1);
        // Duplicate names ("quoted \"Joe\"" exercises string escaping) break
        // the teacher key.
        let doc = temp_file(
            "json-doc.xml",
            r#"<teachers>
                 <teacher name='quoted "Joe"'><teach>
                   <subject taught_by='quoted "Joe"'>XML</subject>
                   <subject taught_by='quoted "Joe"'>DB</subject>
                 </teach><research>Web DB</research></teacher>
                 <teacher name='quoted "Joe"'><teach>
                   <subject taught_by='quoted "Joe"'>A</subject>
                   <subject taught_by='quoted "Joe"'>B</subject>
                 </teach><research>DB</research></teacher>
               </teachers>"#,
        );
        let out = run(
            validate_doc,
            &[
                "validate",
                "--dtd",
                dtd.to_str().unwrap(),
                "--constraints",
                sigma.to_str().unwrap(),
                "--doc",
                doc.to_str().unwrap(),
                "--format",
                "json",
            ],
        );
        assert_eq!(out.exit_code, 1, "{}", out.report);

        // The report parses back, and re-rendering the parsed value parses
        // to the same structure (full round-trip through our own parser).
        let parsed = JsonValue::parse(out.report.trim()).expect("valid JSON");
        let reparsed = JsonValue::parse(&parsed.render()).unwrap();
        assert_eq!(parsed, reparsed);

        assert_eq!(
            parsed.get("command").and_then(JsonValue::as_str),
            Some("validate")
        );
        assert_eq!(parsed.get("clean"), Some(&JsonValue::Bool(false)));
        let violations = parsed
            .get("violations")
            .and_then(JsonValue::as_array)
            .expect("violations array");
        assert!(!violations.is_empty());
        // Key violations carry both witness node ids and the escaped value.
        let key = violations
            .iter()
            .find(|v| v.get("kind").and_then(JsonValue::as_str) == Some("key_violation"))
            .expect("a key violation");
        assert_eq!(
            key.get("witnesses")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(2)
        );
        let values = key.get("values").and_then(JsonValue::as_array).unwrap();
        assert_eq!(values[0].as_str(), Some("quoted \"Joe\""));
    }

    #[test]
    fn validate_rejects_unknown_formats() {
        let dtd = temp_file("badfmt.dtd", TEACHERS_DTD);
        let parsed = ParsedArgs::parse(
            [
                "validate",
                "--dtd",
                dtd.to_str().unwrap(),
                "--doc",
                "x.xml",
                "--format",
                "yaml",
            ],
            &SPEC,
        )
        .unwrap();
        let err = validate_doc(&parsed).unwrap_err();
        assert!(err.to_string().contains("yaml"), "{err}");
    }

    #[test]
    fn batch_json_round_trips() {
        use crate::json::JsonValue;
        let dtd = temp_file("jbatch.dtd", SCHOOL_DTD);
        let sigma = temp_file("jbatch.xic", "teacher.name -> teacher");
        let ok = temp_file("jbatch-ok.xml", "<school><teacher name=\"Joe\"/></school>");
        let dup = temp_file(
            "jbatch-dup.xml",
            "<school><teacher name=\"Joe\"/><teacher name=\"Joe\"/></school>",
        );
        let manifest = temp_file(
            "jbatch-manifest.txt",
            &format!(
                "{}\n{}\n",
                ok.file_name().unwrap().to_str().unwrap(),
                dup.file_name().unwrap().to_str().unwrap()
            ),
        );
        let out = run(
            batch,
            &[
                "batch",
                "--dtd",
                dtd.to_str().unwrap(),
                "--constraints",
                sigma.to_str().unwrap(),
                "--manifest",
                manifest.to_str().unwrap(),
                "--format",
                "json",
            ],
        );
        assert_eq!(out.exit_code, 1, "{}", out.report);
        let parsed = JsonValue::parse(out.report.trim()).expect("valid JSON");
        assert_eq!(JsonValue::parse(&parsed.render()).unwrap(), parsed);
        assert_eq!(parsed.get("total"), Some(&JsonValue::Number(2.0)));
        assert_eq!(parsed.get("clean"), Some(&JsonValue::Number(1.0)));
        let reports = parsed.get("reports").and_then(JsonValue::as_array).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].get("clean"), Some(&JsonValue::Bool(true)));
        assert_eq!(reports[1].get("clean"), Some(&JsonValue::Bool(false)));
        assert_eq!(reports[1].get("parse_error"), Some(&JsonValue::Null));
        // Batch violations are structured like validate's: kind + witnesses.
        let violations = reports[1]
            .get("violations")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert!(!violations.is_empty());
        assert_eq!(
            violations[0].get("kind").and_then(JsonValue::as_str),
            Some("key_violation")
        );
        assert_eq!(
            violations[0]
                .get("witnesses")
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(2)
        );
    }

    #[test]
    fn batch_session_replays_edits_and_streams_deltas() {
        let dtd = temp_file("sess.dtd", SCHOOL_DTD);
        let sigma = temp_file("sess.xic", "teacher.name -> teacher");
        let a = temp_file("sess-a.xml", "<school><teacher name=\"Joe\"/></school>");
        let b = temp_file("sess-b.xml", "<school><teacher name=\"Ann\"/></school>");
        let manifest = temp_file(
            "sess-manifest.txt",
            &format!("{}\n", a.file_name().unwrap().to_str().unwrap()),
        );
        let a_label = a.file_name().unwrap().to_str().unwrap();
        let b_name = b.file_name().unwrap().to_str().unwrap();
        // Open b, break a's key (duplicate name on a fresh teacher), commit;
        // heal it again; close b and commit once more.
        let script = temp_file(
            "sess-script.txt",
            &format!(
                "# corpus edit script\n\
                 open b {b_name}\n\
                 commit\n\
                 add {a_label} 0 teacher\n\
                 set {a_label} 3 name Joe\n\
                 commit\n\
                 set {a_label} 3 name Sue\n\
                 close b\n"
            ),
        );
        let out = run(
            batch,
            &[
                "batch",
                "--dtd",
                dtd.to_str().unwrap(),
                "--constraints",
                sigma.to_str().unwrap(),
                "--manifest",
                manifest.to_str().unwrap(),
                "--session",
                script.to_str().unwrap(),
            ],
        );
        assert_eq!(out.exit_code, 0, "{}", out.report);
        assert!(out.report.contains("commit 1: 2/2"), "{}", out.report);
        assert!(out.report.contains("clean -> violating"), "{}", out.report);
        assert!(out.report.contains("violating -> clean"), "{}", out.report);
        assert!(out.report.contains("- closed b"), "{}", out.report);
        assert!(
            out.report.contains("final: 1/1 documents clean"),
            "{}",
            out.report
        );

        // The JSON form round-trips and carries the delta stream.
        let json_out = run(
            batch,
            &[
                "batch",
                "--dtd",
                dtd.to_str().unwrap(),
                "--constraints",
                sigma.to_str().unwrap(),
                "--manifest",
                manifest.to_str().unwrap(),
                "--session",
                script.to_str().unwrap(),
                "--format",
                "json",
            ],
        );
        assert_eq!(json_out.exit_code, 0, "{}", json_out.report);
        let parsed = JsonValue::parse(json_out.report.trim()).expect("valid JSON");
        assert_eq!(JsonValue::parse(&parsed.render()).unwrap(), parsed);
        assert_eq!(
            parsed.get("command").and_then(JsonValue::as_str),
            Some("batch-session")
        );
        let deltas = parsed.get("deltas").and_then(JsonValue::as_array).unwrap();
        assert_eq!(deltas.len(), 3);
        // Commit 2 re-checked exactly the one edited document and reported
        // the flip with a structured key-violation witness.
        assert_eq!(deltas[1].get("rechecked"), Some(&JsonValue::Number(1.0)));
        let changes = deltas[1]
            .get("changes")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].get("was_clean"), Some(&JsonValue::Bool(true)));
        assert_eq!(changes[0].get("clean"), Some(&JsonValue::Bool(false)));
        let violations = changes[0]
            .get("report")
            .and_then(|r| r.get("violations"))
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(
            violations[0].get("kind").and_then(JsonValue::as_str),
            Some("key_violation")
        );
        // The trailing uncommitted edits imply a final commit with the close.
        let closed = deltas[2]
            .get("closed")
            .and_then(JsonValue::as_array)
            .unwrap();
        // Closed docs are identified by label AND stable handle (labels
        // need not be unique), as are change entries.
        assert_eq!(
            closed[0].get("label").and_then(JsonValue::as_str),
            Some("b")
        );
        assert_eq!(
            closed[0].get("doc").and_then(JsonValue::as_str),
            Some("doc-1")
        );
        assert_eq!(
            changes[0].get("doc").and_then(JsonValue::as_str),
            Some("doc-0")
        );
    }

    #[test]
    fn batch_session_metrics_block_covers_cache_commit_and_journal() {
        let dtd = temp_file("metr.dtd", SCHOOL_DTD);
        let sigma = temp_file("metr.xic", "teacher.name -> teacher");
        let a = temp_file("metr-a.xml", "<school><teacher name=\"Joe\"/></school>");
        let a_name = a.file_name().unwrap().to_str().unwrap();
        let script = temp_file(
            "metr-script.txt",
            &format!(
                "open a {a_name}\n\
                 commit\n\
                 set a 1 name Sue\n\
                 commit\n"
            ),
        );
        let out = run(
            batch,
            &[
                "batch",
                "--dtd",
                dtd.to_str().unwrap(),
                "--constraints",
                sigma.to_str().unwrap(),
                "--session",
                script.to_str().unwrap(),
                "--metrics",
                "--format",
                "json",
            ],
        );
        assert_eq!(out.exit_code, 0, "{}", out.report);
        let parsed = JsonValue::parse(out.report.trim()).expect("valid JSON");
        let metrics = parsed.get("metrics").expect("metrics block present");
        let counters = metrics.get("counters").expect("counters object");
        // The baseline pins the full inventory: cache, corpus-commit and
        // journal instruments all appear even if this run left some at 0.
        for name in [
            "cache.hits",
            "cache.misses",
            "corpus.commits",
            "corpus.edits",
            "journal.bytes_written",
            "journal.records_appended",
        ] {
            assert!(counters.get(name).is_some(), "missing counter {name}");
        }
        // This run committed twice and applied one edit — on the shared
        // global registry those counters are at least that.
        let commits = match counters.get("corpus.commits") {
            Some(JsonValue::Number(n)) => *n,
            other => panic!("corpus.commits not a number: {other:?}"),
        };
        assert!(commits >= 2.0, "corpus.commits = {commits}");
        let histograms = metrics.get("histograms").expect("histograms object");
        for name in ["corpus.commit_ns", "cache.insert_ns", "journal.persist_ns"] {
            assert!(histograms.get(name).is_some(), "missing histogram {name}");
        }
        let commit_ns = histograms.get("corpus.commit_ns").unwrap();
        let count = match commit_ns.get("count") {
            Some(JsonValue::Number(n)) => *n,
            other => panic!("corpus.commit_ns.count not a number: {other:?}"),
        };
        assert!(count >= 2.0, "corpus.commit_ns.count = {count}");
        let gauges = metrics.get("gauges").expect("gauges object");
        assert!(gauges.get("corpus.dirty_docs").is_some());
        assert!(gauges.get("corpus.queued_ops").is_some());

        // The text form appends a readable block with the same content.
        let text_out = run(
            batch,
            &[
                "batch",
                "--dtd",
                dtd.to_str().unwrap(),
                "--constraints",
                sigma.to_str().unwrap(),
                "--session",
                script.to_str().unwrap(),
                "--metrics",
            ],
        );
        assert!(text_out.report.contains("metrics:"), "{}", text_out.report);
        assert!(
            text_out.report.contains("corpus.commits"),
            "{}",
            text_out.report
        );
        // Without the flag, output is unchanged — no metrics block.
        let plain = run(
            batch,
            &[
                "batch",
                "--dtd",
                dtd.to_str().unwrap(),
                "--constraints",
                sigma.to_str().unwrap(),
                "--session",
                script.to_str().unwrap(),
            ],
        );
        assert!(!plain.report.contains("metrics:"), "{}", plain.report);
    }

    #[test]
    fn stats_prints_the_instrument_inventory_and_cache_traffic() {
        let dtd = temp_file("stats.dtd", SCHOOL_DTD);
        let sigma = temp_file("stats.xic", "teacher.name -> teacher");
        let out = run(
            stats,
            &[
                "stats",
                "--dtd",
                dtd.to_str().unwrap(),
                "--constraints",
                sigma.to_str().unwrap(),
            ],
        );
        assert_eq!(out.exit_code, 0, "{}", out.report);
        for needle in ["metrics:", "cache.hits", "compile.specs", "span.compile"] {
            assert!(
                out.report.contains(needle),
                "missing {needle}: {}",
                out.report
            );
        }

        let json_out = run(
            stats,
            &[
                "stats",
                "--dtd",
                dtd.to_str().unwrap(),
                "--constraints",
                sigma.to_str().unwrap(),
                "--format",
                "json",
            ],
        );
        assert_eq!(json_out.exit_code, 0, "{}", json_out.report);
        let parsed = JsonValue::parse(json_out.report.trim()).expect("valid JSON");
        assert_eq!(
            parsed.get("command").and_then(JsonValue::as_str),
            Some("stats")
        );
        assert_eq!(parsed.get("consistent"), Some(&JsonValue::Bool(true)));
        let counters = parsed
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .expect("counters");
        let hits = match counters.get("cache.hits") {
            Some(JsonValue::Number(n)) => *n,
            other => panic!("cache.hits not a number: {other:?}"),
        };
        assert!(hits >= 1.0, "cache.hits = {hits}");
    }

    #[test]
    fn batch_session_scripts_report_errors_with_line_numbers() {
        let dtd = temp_file("sesserr.dtd", SCHOOL_DTD);
        let script = temp_file("sesserr-script.txt", "frobnicate doc-0 1\n");
        let parsed = ParsedArgs::parse(
            [
                "batch",
                "--dtd",
                dtd.to_str().unwrap(),
                "--session",
                script.to_str().unwrap(),
            ],
            &SPEC,
        )
        .unwrap();
        let err = batch(&parsed).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains(":1:"), "{msg}");
        assert!(msg.contains("no open document"), "{msg}");

        // Unknown directives on an open document, unknown attributes, and
        // bad node ids all name the line.
        let doc = temp_file("sesserr-doc.xml", "<school/>");
        let doc_name = doc.file_name().unwrap().to_str().unwrap();
        for (line, needle) in [
            (
                format!("open d {doc_name}\nfrobnicate d 0"),
                "unknown directive",
            ),
            (
                format!("open d {doc_name}\nset d 0 bogus x"),
                "unknown attribute",
            ),
            (
                format!("open d {doc_name}\nset d zero name x"),
                "not a node id",
            ),
            (
                format!("open d {doc_name}\nadd d 0 bogus"),
                "unknown element type",
            ),
        ] {
            let script = temp_file("sesserr-script2.txt", &line);
            let parsed = ParsedArgs::parse(
                [
                    "batch",
                    "--dtd",
                    dtd.to_str().unwrap(),
                    "--session",
                    script.to_str().unwrap(),
                ],
                &SPEC,
            )
            .unwrap();
            let err = batch(&parsed).unwrap_err().to_string();
            assert!(err.contains(":2:"), "{err}");
            assert!(err.contains(needle), "{err}");
        }
    }

    #[test]
    fn missing_files_are_reported_as_io_errors() {
        let parsed = ParsedArgs::parse(["check", "--dtd", "/nonexistent/spec.dtd"], &SPEC).unwrap();
        let err = check(&parsed).unwrap_err();
        assert!(matches!(err, CliError::Io { .. }), "{err}");
    }

    const SCHOOL_DTD: &str = "<!ELEMENT school (teacher*)>\n\
        <!ELEMENT teacher EMPTY>\n\
        <!ATTLIST teacher name CDATA #REQUIRED>";

    #[test]
    fn batch_validates_a_manifest_and_orders_reports() {
        let dtd = temp_file("batch.dtd", SCHOOL_DTD);
        let sigma = temp_file("batch.xic", "teacher.name -> teacher");
        let ok = temp_file("batch-ok.xml", "<school><teacher name=\"Joe\"/></school>");
        let dup = temp_file(
            "batch-dup.xml",
            "<school><teacher name=\"Joe\"/><teacher name=\"Joe\"/></school>",
        );
        // The manifest lives in the temp dir, so bare filenames resolve there.
        let manifest = temp_file(
            "batch-manifest.txt",
            &format!(
                "# corpus\n{}\n\n{}\n",
                ok.file_name().unwrap().to_str().unwrap(),
                dup.file_name().unwrap().to_str().unwrap()
            ),
        );

        let out = run(
            batch,
            &[
                "batch",
                "--dtd",
                dtd.to_str().unwrap(),
                "--constraints",
                sigma.to_str().unwrap(),
                "--manifest",
                manifest.to_str().unwrap(),
                "--threads",
                "4",
            ],
        );
        assert_eq!(out.exit_code, 1, "{}", out.report);
        assert!(out.report.contains("1/2 documents clean"), "{}", out.report);
        assert!(out.report.contains("key violation"), "{}", out.report);

        // The rendered per-document section is identical across thread counts.
        let sequential = run(
            batch,
            &[
                "batch",
                "--dtd",
                dtd.to_str().unwrap(),
                "--constraints",
                sigma.to_str().unwrap(),
                "--manifest",
                manifest.to_str().unwrap(),
                "--threads",
                "1",
            ],
        );
        assert_eq!(sequential.report, out.report);
        assert_eq!(sequential.exit_code, out.exit_code);
    }

    #[test]
    fn validate_max_nodes_rejects_with_exit_three() {
        let dtd = temp_file("lim.dtd", SCHOOL_DTD);
        let doc = temp_file(
            "lim-doc.xml",
            "<school><teacher name=\"Joe\"/><teacher name=\"Ann\"/></school>",
        );
        let parsed = ParsedArgs::parse(
            [
                "validate",
                "--dtd",
                dtd.to_str().unwrap(),
                "--doc",
                doc.to_str().unwrap(),
                "--max-nodes",
                "2",
            ],
            &SPEC,
        )
        .unwrap();
        let err = validate_doc(&parsed).unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        assert!(err.to_string().contains("max_doc_nodes"), "{err}");
        // Under a generous bound the same document validates normally.
        let parsed = ParsedArgs::parse(
            [
                "validate",
                "--dtd",
                dtd.to_str().unwrap(),
                "--doc",
                doc.to_str().unwrap(),
                "--max-nodes",
                "100",
                "--max-depth",
                "16",
            ],
            &SPEC,
        )
        .unwrap();
        let out = validate_doc(&parsed).unwrap();
        assert_eq!(out.exit_code, 0, "{}", out.report);
    }

    #[test]
    fn batch_max_nodes_marks_documents_rejected_and_exits_three() {
        let dtd = temp_file("blim.dtd", SCHOOL_DTD);
        let small = temp_file("blim-ok.xml", "<school/>");
        let big = temp_file(
            "blim-big.xml",
            "<school><teacher name=\"Joe\"/><teacher name=\"Ann\"/></school>",
        );
        let manifest = temp_file(
            "blim-manifest.txt",
            &format!(
                "{}\n{}\n",
                small.file_name().unwrap().to_str().unwrap(),
                big.file_name().unwrap().to_str().unwrap()
            ),
        );
        let out = run(
            batch,
            &[
                "batch",
                "--dtd",
                dtd.to_str().unwrap(),
                "--manifest",
                manifest.to_str().unwrap(),
                "--max-nodes",
                "2",
                "--threads",
                "1",
            ],
        );
        // The oversized document is a structured resource rejection (exit
        // 3), not a parse error; the small document keeps its verdict.
        assert_eq!(out.exit_code, 3, "{}", out.report);
        assert!(out.report.contains("max_doc_nodes"), "{}", out.report);
        assert!(out.report.contains("1/2"), "{}", out.report);
    }

    #[test]
    fn session_deadline_zero_rejects_the_commit_with_exit_three() {
        let dtd = temp_file("dl.dtd", SCHOOL_DTD);
        let doc = temp_file("dl-doc.xml", "<school><teacher name=\"Joe\"/></school>");
        let doc_name = doc.file_name().unwrap().to_str().unwrap();
        let script = temp_file(
            "dl-script.txt",
            &format!("open d {doc_name}\nset d 1 name Sue\ncommit\n"),
        );
        let parsed = ParsedArgs::parse(
            [
                "batch",
                "--dtd",
                dtd.to_str().unwrap(),
                "--session",
                script.to_str().unwrap(),
                "--deadline-ms",
                "0",
            ],
            &SPEC,
        )
        .unwrap();
        let err = batch(&parsed).unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        assert!(err.to_string().contains("deadline_ms"), "{err}");
    }

    #[test]
    fn serve_and_connect_roundtrip_over_loopback() {
        let dtd = temp_file("srv.dtd", SCHOOL_DTD);
        let doc = temp_file("srv-doc.xml", "<school><teacher name=\"Joe\"/></school>");
        let doc_name = doc.file_name().unwrap().to_str().unwrap();
        let script = temp_file(
            "srv-script.txt",
            &format!("open d1 {doc_name}\ncommit\nset d1 1 name Sue\ncommit\n"),
        );
        let addr_file = {
            let mut p = std::env::temp_dir();
            p.push(format!("xic-cli-test-{}-srv.addr", std::process::id()));
            let _ = fs::remove_file(&p);
            p
        };

        let serve_args: Vec<String> = [
            "serve",
            "--dtd",
            dtd.to_str().unwrap(),
            "--listen",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--workers",
            "2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let server = std::thread::spawn(move || {
            let parsed = ParsedArgs::parse(serve_args, &SPEC).unwrap();
            serve(&parsed).unwrap()
        });

        // The server writes its bound address before accepting; poll for it.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let addr = loop {
            if let Ok(addr) = fs::read_to_string(&addr_file) {
                if addr.contains(':') {
                    break addr;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "server never wrote its address file"
            );
            std::thread::sleep(Duration::from_millis(10));
        };

        // Drive the script against the default session and read the
        // replica-reconstructed report back.
        let out = run(
            connect,
            &[
                "connect",
                "--dtd",
                dtd.to_str().unwrap(),
                "--addr",
                &addr,
                "--script",
                script.to_str().unwrap(),
            ],
        );
        assert_eq!(out.exit_code, 0, "{}", out.report);
        assert!(out.report.contains("over 2 commits"), "{}", out.report);
        assert!(
            out.report.contains("final: 1/1 documents clean"),
            "{}",
            out.report
        );

        // A fresh connection's handshake reports the committed history.
        let out = run(
            connect,
            &["connect", "--dtd", dtd.to_str().unwrap(), "--addr", &addr],
        );
        assert_eq!(out.exit_code, 0, "{}", out.report);
        assert!(
            out.report.contains("last committed seq 2"),
            "{}",
            out.report
        );

        // `--stats --json` surfaces the server's own instruments.
        let out = run(
            connect,
            &[
                "connect",
                "--dtd",
                dtd.to_str().unwrap(),
                "--addr",
                &addr,
                "--stats",
                "--json",
            ],
        );
        assert_eq!(out.exit_code, 0, "{}", out.report);
        assert!(out.report.starts_with('{'), "{}", out.report);
        assert!(out.report.contains("server.requests"), "{}", out.report);

        // Shutdown drains the server and unblocks the serving thread.
        let out = run(
            connect,
            &[
                "connect",
                "--dtd",
                dtd.to_str().unwrap(),
                "--addr",
                &addr,
                "--shutdown",
            ],
        );
        assert_eq!(out.exit_code, 0, "{}", out.report);
        assert!(out.report.contains("shutting down"), "{}", out.report);

        let out = server.join().expect("serve thread panicked");
        assert_eq!(out.exit_code, 0, "{}", out.report);
        assert!(out.report.contains("server stopped"), "{}", out.report);
        let _ = fs::remove_file(&addr_file);
    }

    #[test]
    fn serve_and_connect_validate_their_arguments() {
        let dtd = temp_file("srv-usage.dtd", SCHOOL_DTD);
        let parsed = ParsedArgs::parse(["serve", "--dtd", dtd.to_str().unwrap()], &SPEC).unwrap();
        let err = serve(&parsed).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("--listen"), "{err}");

        let parsed = ParsedArgs::parse(["connect", "--dtd", dtd.to_str().unwrap()], &SPEC).unwrap();
        let err = connect(&parsed).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("--addr or --socket"), "{err}");

        let parsed = ParsedArgs::parse(
            ["connect", "--addr", "127.0.0.1:1", "--spec-id", "nonsense"],
            &SPEC,
        )
        .unwrap();
        let err = connect(&parsed).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("--spec-id"), "{err}");
    }

    #[test]
    fn json_flag_is_an_alias_of_format_json() {
        let dtd = temp_file("jsonflag.dtd", SCHOOL_DTD);
        let out = run(stats, &["stats", "--dtd", dtd.to_str().unwrap(), "--json"]);
        assert_eq!(out.exit_code, 0, "{}", out.report);
        assert!(out.report.starts_with('{'), "{}", out.report);
        assert!(
            out.report.contains("\"command\":\"stats\""),
            "{}",
            out.report
        );
    }
}
