//! # xic-cli — command-line analyzer for XML specifications
//!
//! A thin front end over the workspace crates: it parses a DTD file and a
//! constraint file (in the [`xic_constraints::parser`] surface syntax) and
//! runs the paper's decision procedures from the shell.
//!
//! ```text
//! xic check    --dtd school.dtd --constraints school.xic
//! xic implies  --dtd school.dtd --constraints school.xic --query "enroll.student_id subset student.student_id"
//! xic validate --dtd school.dtd --constraints school.xic --doc enrolments.xml
//! xic classify --dtd school.dtd --constraints school.xic
//! xic explain  --dtd school.dtd --constraints school.xic
//! xic batch    --dtd school.dtd --constraints school.xic --manifest docs.txt --threads 8
//! xic journal record  --dtd school.dtd --constraints school.xic --script edits.txt --log run.xicj
//! xic journal replay  --dtd school.dtd --constraints school.xic --log run.xicj
//! xic journal inspect --log run.xicj --dtd school.dtd
//! ```
//!
//! Exit codes are script-friendly: `0` for a positive verdict (consistent /
//! implied / valid), `1` for a negative verdict, `2` for unknown verdicts and
//! errors, `3` when a resource limit (`--max-nodes`, `--max-depth`,
//! `--deadline-ms`) rejected the work, and `4` when an internal fault was
//! contained (an isolated per-document panic or a poisoned session).
//!
//! All the work is done by library functions in [`commands`]; `main` only
//! forwards `std::env::args` and prints, so the front end is fully covered by
//! in-process tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod commands;
pub mod error;
pub mod json;
pub mod report;

pub use args::{ArgSpec, ParsedArgs};
pub use commands::{
    batch, check, classify, connect, coord, diagnose, explain, implies, journal, serve, stats,
    validate_doc, CommandOutcome,
};
pub use error::CliError;
pub use json::JsonValue;
pub use report::{
    delta_from_json, delta_json, doc_change_from_json, doc_report_from_json, doc_report_json,
    violation_from_json, violation_json,
};

/// The options accepted by every subcommand (unknown ones are rejected with
/// a usage error naming the offending option).
pub const ARG_SPEC: ArgSpec = ArgSpec {
    valued: &[
        "dtd",
        "root",
        "constraints",
        "doc",
        "query",
        "witness-out",
        "manifest",
        "threads",
        "format",
        "session",
        "script",
        "log",
        "max-nodes",
        "max-depth",
        "deadline-ms",
        "listen",
        "socket",
        "addr",
        "state-dir",
        "max-sessions",
        "idle-ms",
        "workers",
        "spec-id",
        "addr-file",
        "shard",
        "scope-shards",
        "max-restarts",
    ],
    flags: &[
        "quiet",
        "no-witness",
        "help",
        "metrics",
        "json",
        "stats",
        "shutdown",
        "shards",
    ],
};

/// The usage text printed by `xic help` and on usage errors.
pub const USAGE: &str = "\
xic — static analysis for XML specifications (DTDs + keys and foreign keys)

USAGE:
    xic <COMMAND> [OPTIONS]

COMMANDS:
    check      decide whether any document can conform to the DTD and satisfy the constraints
    implies    decide whether the specification implies a further constraint (--query)
    validate   validate a document (--doc) against the DTD and the constraints
    batch      validate every document in a manifest (--manifest) in parallel
    journal    durable edit journals: record a session script to a binary delta
               log (record), rebuild verdicts from a log on a replica (replay),
               or print a log's self-describing contents (inspect)
    diagnose   explain an inconsistent specification (minimal inconsistent core)
    classify   report the constraint class and the complexity of its analyses
    explain    print the DTD analysis and the cardinality system Ψ(D,Σ)
    stats      compile the spec, run a consistency check (twice — the second
               hit is served from the verdict cache) and print the engine's
               metrics registry: counters, gauges, latency histograms and
               the compile-phase trace timeline (--json for machine output)
    serve      run the validation service: host the compiled spec behind a
               TCP (--listen) and/or Unix-socket (--socket) listener speaking
               the delta-log wire protocol; named corpus sessions, shared
               verdict cache, graceful drain to --state-dir on shutdown
    connect    talk to a running service (--addr or --socket): drive a
               --script against a named --session and print the replica's
               report, or fetch --stats / request --shutdown
    coord      multi-process sharded validation: partition the spec's shard
               plan over --workers N child `xic serve` processes, route each
               edit batch only to the shard groups it dirties, and merge the
               projected per-shard verdicts into one monolithic report
               (--script uses the connect/session directive syntax)
    help       print this message

OPTIONS:
    --dtd FILE            the DTD file (required by every command)
    --root NAME           override the root element type (default: first declared element)
    --constraints FILE    the constraint file (one constraint per line; optional)
    --doc FILE            the XML document to validate (validate only)
    --query CONSTRAINT    the constraint to test for implication (implies only)
    --manifest FILE       file listing one document path per line (batch only)
    --session FILE        replay an edit script over a corpus session instead of a
                          one-shot batch: open/set/add/text/remove/close/commit
                          directives, one per line; every commit re-checks only the
                          edited documents and reports the delta (batch only)
    --script FILE         the edit script to record (journal record only; same
                          directive syntax as --session — the human-readable twin
                          of the binary log)
    --log FILE            the journal file to write (journal record) or read
                          (journal replay / inspect)
    --threads N           worker threads for batch validation (default: all cores)
    --format FORMAT       report format: text (default) or json, with structured
                          verdicts and violation witnesses (validate/batch only)
    --witness-out FILE    write the witness document to FILE instead of stdout (check only)
    --no-witness          skip witness synthesis (faster; check/implies only)
    --metrics             append the engine metrics block to the report: cache,
                          session/corpus commit and journal instruments (validate,
                          batch and journal; included in --format json output)
    --max-nodes N         reject any document whose parsed tree (elements,
                          attributes, text nodes) would exceed N nodes, and any
                          edit that would grow it past N (validate/batch/journal)
    --max-depth N         reject element nesting deeper than N (root = 1) at
                          parse and on child-creating edits (validate/batch/journal)
    --deadline-ms N       soft time budget: batch stops starting new documents
                          and commits stop re-checking further dirty documents
                          once N ms have elapsed; finished work is kept
                          (batch/journal record; admission limits for serve)
    --quiet               do not print witness or counterexample documents
    --json                machine-readable output (alias of --format json;
                          stats and connect --stats)
    --listen ADDR         serve: TCP listen address (port 0 picks a free port)
    --socket PATH         serve: Unix-socket listen path; connect: dial it
    --addr ADDR           connect: TCP address of a running service
    --addr-file FILE      serve: write the bound TCP address to FILE (for
                          scripts using --listen with port 0)
    --state-dir DIR       serve: persist every session's delta log here on
                          drain, and load existing logs as replica sessions
    --max-sessions N      serve: reject further named sessions past N (code 3)
    --idle-ms N           serve: drain and evict sessions idle longer than N ms
    --workers N           serve: worker threads (= concurrent connections)
    --shards              serve: enable shard-filtered sync subscriptions (the
                          constraint set is partitioned into touch-graph
                          components; subscribers can follow one component)
    --shard K             connect: subscribe the replica to shard K only —
                          receives and applies just shard-K deltas, and prints
                          the shard-projected report (requires serve --shards)
    --scope-shards LIST   serve: scope every live session to the comma-separated
                          shard ids (a coordinator's shard-group worker); Σ
                          violations outside the scope never surface
    --max-restarts N      coord: per-worker crash-restart budget before the
                          coordinator rejects instead of recovering (default 2)
    --session NAME        connect: the named server session to attach to
    --spec-id HEX         connect: expected spec identity (defaults to the
                          hash of the locally compiled --dtd/--constraints)
    --stats               connect: print the server's metrics registry
    --shutdown            connect: ask the server to drain and stop

EXIT CODES:
    0  consistent / implied / valid
    1  inconsistent / not implied / invalid
    2  unknown verdict, usage error, or I/O error
    3  rejected by a resource limit (--max-nodes / --max-depth / --deadline-ms)
    4  an internal fault was contained (isolated panic or poisoned session)
";

/// Runs the tool on an argument list (excluding the program name) and returns
/// the report and exit code.  This is the function `main` calls and tests
/// drive directly.
pub fn run<I, S>(raw_args: I) -> (String, i32)
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let parsed = match ParsedArgs::parse(raw_args, &ARG_SPEC) {
        Ok(p) => p,
        Err(e) => return (format!("{e}\n\n{USAGE}"), 2),
    };
    if parsed.has_flag("help") {
        return (USAGE.to_string(), 0);
    }
    let command = match parsed.command.as_deref() {
        Some(c) => c,
        None => return (USAGE.to_string(), 2),
    };
    let result = match command {
        "check" => commands::check(&parsed),
        "implies" => commands::implies(&parsed),
        "validate" => commands::validate_doc(&parsed),
        "batch" => commands::batch(&parsed),
        "journal" => commands::journal(&parsed),
        "diagnose" => commands::diagnose(&parsed),
        "classify" => commands::classify(&parsed),
        "explain" => commands::explain(&parsed),
        "stats" => commands::stats(&parsed),
        "serve" => commands::serve(&parsed),
        "connect" => commands::connect(&parsed),
        "coord" => commands::coord(&parsed),
        "help" | "--help" | "-h" => return (USAGE.to_string(), 0),
        other => return (format!("unknown command `{other}`\n\n{USAGE}"), 2),
    };
    match result {
        Ok(outcome) => (outcome.report, outcome.exit_code),
        Err(e) => (format!("error: {e}\n"), e.exit_code()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_is_printed_for_help_command_and_no_command() {
        let (report, code) = run(["help"]);
        assert_eq!(code, 0);
        assert!(report.contains("USAGE"));
        let (report, code) = run(Vec::<String>::new());
        assert_eq!(code, 2);
        assert!(report.contains("USAGE"));
    }

    #[test]
    fn unknown_command_is_a_usage_error() {
        let (report, code) = run(["frobnicate"]);
        assert_eq!(code, 2);
        assert!(report.contains("unknown command"));
    }

    #[test]
    fn usage_errors_name_the_offending_option() {
        let (report, code) = run(["check", "--bogus"]);
        assert_eq!(code, 2);
        assert!(report.contains("--bogus"));
    }

    #[test]
    fn io_errors_surface_as_exit_code_two() {
        let (report, code) = run(["check", "--dtd", "/definitely/not/here.dtd"]);
        assert_eq!(code, 2);
        assert!(report.contains("cannot access"));
    }
}
