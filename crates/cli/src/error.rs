//! Error type shared by the command-line front end.

use std::fmt;

/// Everything that can go wrong while running a CLI command.
#[derive(Debug)]
pub enum CliError {
    /// The command line itself was malformed (unknown option, missing value).
    Usage(String),
    /// A file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The DTD file did not parse.
    Dtd(String),
    /// The constraint file did not parse.
    Constraints(String),
    /// The XML document did not parse.
    Document(String),
    /// The specification was rejected by the analyzer (e.g. a constraint
    /// references an attribute the DTD does not define).
    Spec(String),
    /// A journal log could not be written, read or replayed.
    Journal(String),
    /// A resource limit rejected the work (`--max-nodes`, `--max-depth`,
    /// `--deadline-ms`): nothing was half-applied, and the rejection names
    /// the violated limit.  Exits with code 3, distinct from a verdict.
    Resource(String),
    /// An internal fault was contained (a panic isolated to one document or
    /// a poisoned session).  Exits with code 4 so monitors can tell "the
    /// data is bad" from "the engine hit a bug".
    Fault(String),
}

impl CliError {
    /// The process exit code for this error: `3` for resource rejections,
    /// `4` for contained internal faults, `2` for everything else (usage,
    /// I/O, parse and spec errors).
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Resource(_) => 3,
            CliError::Fault(_) => 4,
            _ => 2,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io { path, source } => write!(f, "cannot access `{path}`: {source}"),
            CliError::Dtd(msg) => write!(f, "DTD error: {msg}"),
            CliError::Constraints(msg) => write!(f, "constraint error: {msg}"),
            CliError::Document(msg) => write!(f, "document error: {msg}"),
            CliError::Spec(msg) => write!(f, "specification error: {msg}"),
            CliError::Journal(msg) => write!(f, "journal error: {msg}"),
            CliError::Resource(msg) => write!(f, "resource limit: {msg}"),
            CliError::Fault(msg) => write!(f, "internal fault contained: {msg}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = CliError::Usage("missing `--dtd`".to_string());
        assert!(e.to_string().contains("missing `--dtd`"));
        let e = CliError::Io {
            path: "spec.dtd".to_string(),
            source: std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        };
        assert!(e.to_string().contains("spec.dtd"));
    }

    #[test]
    fn exit_codes_follow_the_taxonomy() {
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(CliError::Resource("max_doc_nodes".into()).exit_code(), 3);
        assert_eq!(CliError::Fault("panic in doc 3".into()).exit_code(), 4);
    }
}
