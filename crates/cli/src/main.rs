//! `xic` — the command-line entry point.  All logic lives in [`xic_cli`].

fn main() {
    let (report, code) = xic_cli::run(std::env::args().skip(1));
    // Verdict reports go to stdout even on the resource-rejected (3) and
    // contained-fault (4) codes, so JSON consumers can keep piping stdout;
    // only diagnostics (usage/IO errors, code 2, and `error:` lines from
    // rejected commands) go to stderr.
    if code == 2 || report.starts_with("error: ") {
        eprint!("{report}");
    } else {
        print!("{report}");
    }
    std::process::exit(code);
}
