//! `xic` — the command-line entry point.  All logic lives in [`xic_cli`].

fn main() {
    let (report, code) = xic_cli::run(std::env::args().skip(1));
    if code == 0 || code == 1 {
        print!("{report}");
    } else {
        eprint!("{report}");
    }
    std::process::exit(code);
}
