//! Minimal command-line argument parsing.
//!
//! The tool needs only subcommands, `--name value` options and boolean
//! `--flag`s, so a small hand-rolled parser keeps the dependency set to the
//! workspace crates (see DESIGN.md §4).

use std::collections::{HashMap, HashSet};

use crate::error::CliError;

/// Parsed command line: a subcommand, named options and boolean flags.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    /// The subcommand (first non-option argument), if any.
    pub command: Option<String>,
    /// `--name value` options.
    pub options: HashMap<String, String>,
    /// `--flag` switches.
    pub flags: HashSet<String>,
    /// Remaining positional arguments after the subcommand.
    pub positional: Vec<String>,
}

/// Which options and flags a subcommand accepts.
#[derive(Debug, Clone)]
pub struct ArgSpec {
    /// Options that take a value (`--dtd FILE`).
    pub valued: &'static [&'static str],
    /// Boolean flags (`--quiet`).
    pub flags: &'static [&'static str],
}

impl ParsedArgs {
    /// Parses raw arguments (excluding the program name) against a spec.
    pub fn parse<I, S>(args: I, spec: &ArgSpec) -> Result<ParsedArgs, CliError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = ParsedArgs::default();
        let mut iter = args.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                // `--name=value` form.
                if let Some((name, value)) = name.split_once('=') {
                    if !spec.valued.contains(&name) {
                        return Err(CliError::Usage(format!("unknown option `--{name}`")));
                    }
                    out.options.insert(name.to_string(), value.to_string());
                    continue;
                }
                if spec.flags.contains(&name) {
                    out.flags.insert(name.to_string());
                } else if spec.valued.contains(&name) {
                    let value = iter.next().ok_or_else(|| {
                        CliError::Usage(format!("option `--{name}` expects a value"))
                    })?;
                    out.options.insert(name.to_string(), value);
                } else {
                    return Err(CliError::Usage(format!("unknown option `--{name}`")));
                }
            } else if out.command.is_none() {
                out.command = Some(arg);
            } else {
                out.positional.push(arg);
            }
        }
        Ok(out)
    }

    /// The value of a required option.
    pub fn require(&self, name: &str) -> Result<&str, CliError> {
        self.options
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing required option `--{name}`")))
    }

    /// The value of an optional option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Whether a flag was given.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.contains(name)
    }

    /// Parses an optional numeric option.
    pub fn get_usize(&self, name: &str) -> Result<Option<usize>, CliError> {
        match self.options.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse::<usize>()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("option `--{name}` expects a number"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: ArgSpec = ArgSpec {
        valued: &["dtd", "constraints", "query", "limit"],
        flags: &["quiet", "witness"],
    };

    #[test]
    fn parses_command_options_and_flags() {
        let parsed = ParsedArgs::parse(
            [
                "check",
                "--dtd",
                "a.dtd",
                "--quiet",
                "--constraints=b.xic",
                "extra",
            ],
            &SPEC,
        )
        .unwrap();
        assert_eq!(parsed.command.as_deref(), Some("check"));
        assert_eq!(parsed.require("dtd").unwrap(), "a.dtd");
        assert_eq!(parsed.get("constraints"), Some("b.xic"));
        assert!(parsed.has_flag("quiet"));
        assert!(!parsed.has_flag("witness"));
        assert_eq!(parsed.positional, vec!["extra".to_string()]);
    }

    #[test]
    fn unknown_option_is_rejected() {
        let err = ParsedArgs::parse(["check", "--bogus"], &SPEC).unwrap_err();
        assert!(err.to_string().contains("--bogus"));
    }

    #[test]
    fn missing_value_is_rejected() {
        let err = ParsedArgs::parse(["check", "--dtd"], &SPEC).unwrap_err();
        assert!(err.to_string().contains("expects a value"));
    }

    #[test]
    fn missing_required_option_is_reported() {
        let parsed = ParsedArgs::parse(["check"], &SPEC).unwrap();
        assert!(parsed.require("dtd").is_err());
    }

    #[test]
    fn numeric_options_are_validated() {
        let parsed = ParsedArgs::parse(["check", "--limit", "12"], &SPEC).unwrap();
        assert_eq!(parsed.get_usize("limit").unwrap(), Some(12));
        let parsed = ParsedArgs::parse(["check", "--limit", "twelve"], &SPEC).unwrap();
        assert!(parsed.get_usize("limit").is_err());
    }
}
