//! Minimal JSON support for `--format json` output.
//!
//! The workspace is dependency-free, so this module provides the two halves
//! the CLI needs: a writer ([`JsonValue::render`], plus builder helpers)
//! used by `xic validate` / `xic batch`, and a strict recursive-descent
//! parser ([`JsonValue::parse`]) used by the round-trip tests (and by any
//! script that wants to validate our output without an external tool).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value (objects keep key order via `BTreeMap` — deterministic
/// rendering matters more to the CLI than insertion order).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (the CLI only emits integers, but the parser accepts
    /// fractions and exponents).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array of strings.
    pub fn strings<I: IntoIterator<Item = S>, S: Into<String>>(items: I) -> JsonValue {
        JsonValue::Array(
            items
                .into_iter()
                .map(|s| JsonValue::String(s.into()))
                .collect(),
        )
    }

    /// A string value.
    pub fn string(s: impl Into<String>) -> JsonValue {
        JsonValue::String(s.into())
    }

    /// An integer value.
    pub fn int(n: usize) -> JsonValue {
        JsonValue::Number(n as f64)
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value (compact, deterministic key order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(text, bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => Ok(JsonValue::String(parse_string(text, bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(text, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(text, bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(text, bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(text, bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

/// Parses a number by the JSON grammar itself — stricter than
/// `f64::from_str`, which would also accept `+5`, `1.` or `.5`.
fn parse_number(text: &str, bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    let err = || format!("invalid number at byte {start}");
    let digits = |pos: &mut usize| {
        let from = *pos;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
        *pos > from
    };
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: `0` alone, or a nonzero digit followed by more digits.
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            digits(pos);
        }
        _ => return Err(err()),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(pos) {
            return Err(err());
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(pos) {
            return Err(err());
        }
    }
    text[start..*pos]
        .parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| err())
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    let mut chars = text[*pos..].char_indices();
    while let Some((offset, c)) = chars.next() {
        match c {
            '"' => {
                *pos += offset + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'b')) => out.push('\u{8}'),
                Some((_, 'f')) => out.push('\u{c}'),
                Some((escape_at, 'u')) => {
                    let hex_start = *pos + escape_at + 1;
                    let hex = text
                        .get(hex_start..hex_start + 4)
                        .ok_or("truncated \\u escape")?;
                    let code = u32::from_str_radix(hex, 16)
                        .map_err(|_| "invalid \\u escape".to_string())?;
                    let mut consumed = 4;
                    let scalar = match code {
                        // A high surrogate must be followed by an escaped low
                        // surrogate; the pair encodes one supplementary char.
                        0xD800..=0xDBFF => {
                            let low_hex = text
                                .get(hex_start + 4..hex_start + 10)
                                .filter(|s| s.starts_with("\\u"))
                                .ok_or("unpaired high surrogate")?;
                            let low = u32::from_str_radix(&low_hex[2..], 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            if !(0xDC00..=0xDFFF).contains(&low) {
                                return Err("unpaired high surrogate".to_string());
                            }
                            consumed += 6;
                            0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        }
                        0xDC00..=0xDFFF => return Err("unpaired low surrogate".to_string()),
                        code => code,
                    };
                    out.push(char::from_u32(scalar).ok_or("invalid \\u code point")?);
                    for _ in 0..consumed {
                        chars.next();
                    }
                }
                other => return Err(format!("invalid escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_shape() {
        let value = JsonValue::object(vec![
            ("string", JsonValue::string("with \"quotes\", \\ and \n")),
            ("int", JsonValue::int(42)),
            ("float", JsonValue::Number(1.5)),
            ("yes", JsonValue::Bool(true)),
            ("no", JsonValue::Bool(false)),
            ("nothing", JsonValue::Null),
            ("list", JsonValue::strings(["a", "b"])),
            ("empty_list", JsonValue::Array(vec![])),
            ("nested", JsonValue::object(vec![("k", JsonValue::int(0))])),
        ]);
        let rendered = value.render();
        let parsed = JsonValue::parse(&rendered).unwrap();
        assert_eq!(parsed, value);
        // Idempotent: parse(render(parse(x))) == parse(x).
        assert_eq!(JsonValue::parse(&parsed.render()).unwrap(), parsed);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("{} garbage").is_err());
        assert!(JsonValue::parse("nul").is_err());
        // Numbers follow the JSON grammar, not Rust's float grammar.
        assert!(JsonValue::parse("+5").is_err());
        assert!(JsonValue::parse("1.").is_err());
        assert!(JsonValue::parse(".5").is_err());
        assert!(JsonValue::parse("01").is_err());
        assert!(JsonValue::parse("1e").is_err());
        for ok in ["0", "-0.5", "12.25", "2e3", "-4E-2"] {
            assert!(JsonValue::parse(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn surrogate_pairs_decode_to_one_character() {
        // serde_json/python emit non-BMP characters as escaped pairs.
        let parsed = JsonValue::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(parsed.as_str(), Some("\u{1F600}"));
        // The unescaped character is equally valid JSON.
        assert_eq!(
            JsonValue::parse("\"\u{1F600}\"").unwrap().as_str(),
            Some("\u{1F600}")
        );
        assert!(JsonValue::parse(r#""\ud83d""#).is_err()); // unpaired high
        assert!(JsonValue::parse(r#""\ude00""#).is_err()); // unpaired low
        assert!(JsonValue::parse(r#""\ud83dx""#).is_err());
    }

    #[test]
    fn control_characters_are_escaped() {
        let rendered = JsonValue::string("bell\u{7}").render();
        assert_eq!(rendered, "\"bell\\u0007\"");
        assert_eq!(
            JsonValue::parse(&rendered).unwrap().as_str(),
            Some("bell\u{7}")
        );
    }
}
