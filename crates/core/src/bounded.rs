//! Bounded model search for the general (undecidable) constraint class.
//!
//! Theorem 3.1 shows that consistency for multi-attribute keys and foreign
//! keys is undecidable, so no complete procedure exists.  What the library
//! offers instead is a *sound* semi-procedure: generate candidate documents
//! that conform to the DTD (guided random expansion), then repair attribute
//! values towards Σ (copying referenced tuples for foreign keys, perturbing
//! clashing tuples for keys); if a candidate ends up satisfying Σ it is a
//! genuine witness of consistency.  Failure to find one proves nothing —
//! exactly the asymmetry the undecidability result predicts.

use xic_constraints::{ConstraintSet, SatisfactionChecker, Violation};
use xic_dtd::{analyze, ContentModel, Dtd, DtdAnalysis, ElemId};
use xic_xml::{NodeId, XmlTree};

/// Configuration of the bounded search.
#[derive(Debug, Clone)]
pub struct BoundedSearchConfig {
    /// Number of candidate documents to try.
    pub attempts: usize,
    /// Soft cap on element count per candidate.
    pub max_elements: usize,
    /// Maximum expansion depth before forcing minimal expansions.
    pub max_depth: usize,
    /// Number of value-repair rounds per candidate.
    pub repair_rounds: usize,
    /// Seed for the deterministic pseudo-random generator.
    pub seed: u64,
}

impl Default for BoundedSearchConfig {
    fn default() -> Self {
        BoundedSearchConfig {
            attempts: 64,
            max_elements: 200,
            max_depth: 12,
            repair_rounds: 16,
            seed: 0x5eed_cafe_f00d_0001,
        }
    }
}

/// A tiny deterministic xorshift PRNG so that `xic-core` stays free of
/// external dependencies and searches are reproducible.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next() % n as u64) as usize
        }
    }
}

/// Searches for a document conforming to `dtd` and satisfying `sigma`.
/// Returns the first witness found, or `None` if the budget is exhausted.
pub fn bounded_search(
    dtd: &Dtd,
    sigma: &ConstraintSet,
    config: &BoundedSearchConfig,
) -> Option<XmlTree> {
    let analysis = analyze(dtd);
    if !analysis.satisfiable() {
        return None;
    }
    let mut rng = XorShift::new(config.seed);
    for attempt in 0..config.attempts {
        // Early attempts stay tiny (the empty-ish document often suffices,
        // e.g. when every constrained type is under a star); later attempts
        // grow richer.
        let richness = attempt % 4;
        let mut tree = generate_candidate(dtd, &analysis, &mut rng, config, richness);
        assign_and_repair(dtd, sigma, &mut tree, &mut rng, config);
        let mut checker = SatisfactionChecker::new(dtd, &tree);
        if checker.satisfies_all(sigma) {
            return Some(tree);
        }
    }
    None
}

/// Generates one random document conforming to the DTD.
fn generate_candidate(
    dtd: &Dtd,
    analysis: &DtdAnalysis,
    rng: &mut XorShift,
    config: &BoundedSearchConfig,
    richness: usize,
) -> XmlTree {
    let mut tree = XmlTree::new(dtd.root());
    let mut elements = 1usize;
    let root = tree.root();
    expand_element(
        dtd,
        analysis,
        rng,
        config,
        richness,
        &mut tree,
        root,
        dtd.root(),
        0,
        &mut elements,
    );
    tree
}

#[allow(clippy::too_many_arguments)]
fn expand_element(
    dtd: &Dtd,
    analysis: &DtdAnalysis,
    rng: &mut XorShift,
    config: &BoundedSearchConfig,
    richness: usize,
    tree: &mut XmlTree,
    node: NodeId,
    ty: ElemId,
    depth: usize,
    elements: &mut usize,
) {
    let minimal = depth >= config.max_depth || *elements >= config.max_elements;
    let word = sample_word(dtd.content(ty), analysis, rng, minimal, richness);
    for symbol in word {
        match symbol {
            Sampled::Text => {
                tree.add_text(node, "text");
            }
            Sampled::Element(child_ty) => {
                *elements += 1;
                let child = tree.add_element(node, child_ty);
                expand_element(
                    dtd,
                    analysis,
                    rng,
                    config,
                    richness,
                    tree,
                    child,
                    child_ty,
                    depth + 1,
                    elements,
                );
            }
        }
    }
}

enum Sampled {
    Element(ElemId),
    Text,
}

/// Samples a word from the language of a content model, restricted to
/// productive element types.  When `minimal` is set, stars/optionals collapse
/// and unions pick a productive branch, bounding the expansion.
fn sample_word(
    model: &ContentModel,
    analysis: &DtdAnalysis,
    rng: &mut XorShift,
    minimal: bool,
    richness: usize,
) -> Vec<Sampled> {
    let mut out = Vec::new();
    sample_into(model, analysis, rng, minimal, richness, &mut out);
    out
}

fn sample_into(
    model: &ContentModel,
    analysis: &DtdAnalysis,
    rng: &mut XorShift,
    minimal: bool,
    richness: usize,
    out: &mut Vec<Sampled>,
) {
    match model {
        ContentModel::Epsilon => {}
        ContentModel::Text => out.push(Sampled::Text),
        ContentModel::Element(e) => out.push(Sampled::Element(*e)),
        ContentModel::Seq(a, b) => {
            sample_into(a, analysis, rng, minimal, richness, out);
            sample_into(b, analysis, rng, minimal, richness, out);
        }
        ContentModel::Alt(a, b) => {
            let a_ok = branch_productive(a, analysis);
            let b_ok = branch_productive(b, analysis);
            let pick_a = match (a_ok, b_ok) {
                (true, false) => true,
                (false, true) => false,
                // Both viable (or neither — then it hardly matters): random.
                _ => rng.below(2) == 0,
            };
            if pick_a {
                sample_into(a, analysis, rng, minimal, richness, out);
            } else {
                sample_into(b, analysis, rng, minimal, richness, out);
            }
        }
        ContentModel::Star(a) => {
            let reps = if minimal || !branch_productive(a, analysis) {
                0
            } else {
                rng.below(richness + 2)
            };
            for _ in 0..reps {
                sample_into(a, analysis, rng, minimal, richness, out);
            }
        }
        ContentModel::Plus(a) => {
            let reps = if minimal {
                1
            } else {
                1 + rng.below(richness + 1)
            };
            for _ in 0..reps {
                sample_into(a, analysis, rng, minimal, richness, out);
            }
        }
        ContentModel::Opt(a) => {
            let take = !minimal && branch_productive(a, analysis) && rng.below(2) == 0;
            if take {
                sample_into(a, analysis, rng, minimal, richness, out);
            }
        }
    }
}

/// Whether every element type required by the model's cheapest word is
/// productive (so expanding it cannot get stuck).
fn branch_productive(model: &ContentModel, analysis: &DtdAnalysis) -> bool {
    match model {
        ContentModel::Epsilon | ContentModel::Text => true,
        ContentModel::Element(e) => analysis.productive(*e),
        ContentModel::Seq(a, b) => branch_productive(a, analysis) && branch_productive(b, analysis),
        ContentModel::Alt(a, b) => branch_productive(a, analysis) || branch_productive(b, analysis),
        ContentModel::Star(_) | ContentModel::Opt(_) => true,
        ContentModel::Plus(a) => branch_productive(a, analysis),
    }
}

/// Assigns attribute values and runs a few repair rounds towards Σ.
fn assign_and_repair(
    dtd: &Dtd,
    sigma: &ConstraintSet,
    tree: &mut XmlTree,
    rng: &mut XorShift,
    config: &BoundedSearchConfig,
) {
    // Initial assignment: small shared pool, so foreign keys often hold by
    // accident and keys get repaired below.
    let elements: Vec<NodeId> = tree.elements().collect();
    for &node in &elements {
        let Some(ty) = tree.element_type(node) else {
            continue;
        };
        for &attr in dtd.attrs_of(ty) {
            let v = format!("p{}", rng.below(3));
            tree.set_attr(node, attr, v);
        }
    }
    for round in 0..config.repair_rounds {
        let violations = {
            let mut checker = SatisfactionChecker::new(dtd, tree);
            checker.check_all(sigma)
        };
        if violations.is_empty() {
            return;
        }
        for violation in violations {
            match violation {
                Violation::KeyViolation { witnesses, .. } => {
                    // Perturb the second clashing element with fresh values.
                    let node = witnesses.1;
                    if let Some(ty) = tree.element_type(node) {
                        for &attr in dtd.attrs_of(ty) {
                            let v = format!("k{}_{}", round, rng.next() % 1_000);
                            tree.set_attr(node, attr, v);
                        }
                    }
                }
                Violation::InclusionViolation { witness, .. }
                | Violation::MissingAttributes { witness, .. } => {
                    repair_inclusion(dtd, sigma, tree, rng, witness);
                }
                Violation::NegationUnsatisfied { .. } => {
                    // Negations are not part of C_{K,FK}; nothing to repair.
                }
            }
        }
    }
}

/// Points a dangling foreign-key source at some existing target tuple.
fn repair_inclusion(
    _dtd: &Dtd,
    sigma: &ConstraintSet,
    tree: &mut XmlTree,
    rng: &mut XorShift,
    witness: NodeId,
) {
    let Some(source_ty) = tree.element_type(witness) else {
        return;
    };
    for c in sigma.iter() {
        let Some(inc) = c.inclusion_part() else {
            continue;
        };
        if inc.from_ty != source_ty {
            continue;
        }
        let targets: Vec<_> = tree.ext(inc.to_ty).collect();
        if targets.is_empty() {
            continue;
        }
        let pick = targets[rng.below(targets.len())];
        if let Some(values) = tree.attr_values(pick, &inc.to_attrs) {
            for (attr, value) in inc.from_attrs.iter().zip(values) {
                tree.set_attr(witness, *attr, value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_constraints::{document_satisfies, example_sigma3};
    use xic_dtd::{example_d1, example_d2, example_d3};
    use xic_xml::validate;

    #[test]
    fn finds_witness_for_the_school_spec() {
        let d3 = example_d3();
        let sigma3 = example_sigma3(&d3);
        let tree = bounded_search(&d3, &sigma3, &BoundedSearchConfig::default())
            .expect("the school spec is consistent");
        assert!(validate(&tree, &d3).is_empty());
        assert!(document_satisfies(&d3, &tree, &sigma3));
    }

    #[test]
    fn unsatisfiable_dtd_yields_none() {
        let d2 = example_d2();
        assert!(
            bounded_search(&d2, &ConstraintSet::new(), &BoundedSearchConfig::default()).is_none()
        );
    }

    #[test]
    fn inconsistent_unary_spec_is_never_witnessed() {
        // Σ1 over D1 is inconsistent, so the search must come up empty.
        let d1 = example_d1();
        let sigma1 = xic_constraints::example_sigma1(&d1);
        let config = BoundedSearchConfig {
            attempts: 16,
            ..Default::default()
        };
        assert!(bounded_search(&d1, &sigma1, &config).is_none());
    }

    #[test]
    fn candidates_conform_to_the_dtd() {
        let d1 = example_d1();
        let analysis = analyze(&d1);
        let mut rng = XorShift::new(7);
        for richness in 0..4 {
            let tree = generate_candidate(
                &d1,
                &analysis,
                &mut rng,
                &BoundedSearchConfig::default(),
                richness,
            );
            // Structure is valid; attributes are filled in later, so only
            // check structural errors here.
            let structural: Vec<_> = validate(&tree, &d1)
                .into_iter()
                .filter(|e| !matches!(e, xic_xml::ValidationError::MissingAttribute { .. }))
                .collect();
            assert!(structural.is_empty(), "{structural:?}");
        }
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let d3 = example_d3();
        let sigma3 = example_sigma3(&d3);
        let config = BoundedSearchConfig::default();
        let a = bounded_search(&d3, &sigma3, &config).map(|t| t.num_nodes());
        let b = bounded_search(&d3, &sigma3, &config).map(|t| t.num_nodes());
        assert_eq!(a, b);
    }
}
