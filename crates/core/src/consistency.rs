//! The consistency problem: given a DTD `D` and a constraint set Σ, is there
//! an XML tree `T` with `T ⊨ D` and `T ⊨ Σ`?
//!
//! The dispatcher [`ConsistencyChecker::check`] routes a specification to the
//! strongest procedure the paper provides for its constraint class:
//!
//! | class | procedure | paper |
//! |---|---|---|
//! | no constraints | CFG emptiness, linear time | Thm 3.5(1) |
//! | keys only (`C_K`) | reduces to DTD satisfiability, linear time | Thm 3.5(2) |
//! | unary keys/FKs/ICs and their negations | cardinality system + ILP | Thm 4.1, Cor 4.9, Thm 5.1 |
//! | multi-attribute keys + foreign keys (`C_{K,FK}`) | **undecidable**; sound bounded search | Thm 3.1 |

use xic_constraints::{Constraint, ConstraintClass, ConstraintSet};
use xic_dtd::{analyze, Dtd};
use xic_ilp::{IlpSolver, SolveStats, SolverConfig};
use xic_xml::XmlTree;

use crate::bounded::{bounded_search, BoundedSearchConfig};
use crate::error::SpecError;
use crate::system::{CardinalitySystem, SystemOptions};
use crate::witness::{solve_and_witness, WitnessOutcome};

/// The verdict of a consistency check.
#[derive(Debug, Clone)]
pub enum ConsistencyOutcome {
    /// Some XML tree conforms to the DTD and satisfies Σ.  A witness tree is
    /// included whenever the procedure can synthesize one.
    Consistent {
        /// A synthesized witness document, if available.
        witness: Option<XmlTree>,
        /// Free-text explanation of how the verdict was reached.
        explanation: String,
    },
    /// No XML tree conforms to the DTD and satisfies Σ.
    Inconsistent {
        /// Free-text explanation (e.g. which cardinality argument failed).
        explanation: String,
    },
    /// The procedure could not decide within its resource bounds (this is the
    /// expected outcome for hard instances of the undecidable general class).
    Unknown {
        /// Why the procedure gave up.
        explanation: String,
    },
}

impl ConsistencyOutcome {
    /// `true` iff the verdict is [`ConsistencyOutcome::Consistent`].
    pub fn is_consistent(&self) -> bool {
        matches!(self, ConsistencyOutcome::Consistent { .. })
    }

    /// `true` iff the verdict is [`ConsistencyOutcome::Inconsistent`].
    pub fn is_inconsistent(&self) -> bool {
        matches!(self, ConsistencyOutcome::Inconsistent { .. })
    }

    /// `true` iff the verdict is [`ConsistencyOutcome::Unknown`].
    pub fn is_unknown(&self) -> bool {
        matches!(self, ConsistencyOutcome::Unknown { .. })
    }

    /// The witness document, if one was synthesized.
    pub fn witness(&self) -> Option<&XmlTree> {
        match self {
            ConsistencyOutcome::Consistent { witness, .. } => witness.as_ref(),
            _ => None,
        }
    }

    /// The explanation string.
    pub fn explanation(&self) -> &str {
        match self {
            ConsistencyOutcome::Consistent { explanation, .. }
            | ConsistencyOutcome::Inconsistent { explanation }
            | ConsistencyOutcome::Unknown { explanation } => explanation,
        }
    }
}

/// Configuration of the consistency checker.
#[derive(Debug, Clone)]
pub struct CheckerConfig {
    /// ILP solver configuration (node limits, conditional treatment).
    pub solver: SolverConfig,
    /// Cardinality-system construction options.
    pub system: SystemOptions,
    /// Maximum number of realizability cuts before giving up on a witness.
    pub max_repair_rounds: usize,
    /// Whether to synthesize witness documents for consistent verdicts.
    pub synthesize_witness: bool,
    /// Bounded-search budget for the general (undecidable) class.
    pub bounded: BoundedSearchConfig,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            solver: SolverConfig::default(),
            system: SystemOptions::default(),
            max_repair_rounds: 32,
            synthesize_witness: true,
            bounded: BoundedSearchConfig::default(),
        }
    }
}

/// The consistency checker.
#[derive(Debug, Clone, Default)]
pub struct ConsistencyChecker {
    config: CheckerConfig,
}

impl ConsistencyChecker {
    /// A checker with default configuration.
    pub fn new() -> ConsistencyChecker {
        ConsistencyChecker::default()
    }

    /// A checker with an explicit configuration.
    pub fn with_config(config: CheckerConfig) -> ConsistencyChecker {
        ConsistencyChecker { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &CheckerConfig {
        &self.config
    }

    /// Checks whether the DTD alone admits a valid tree (Theorem 3.5(1)).
    pub fn check_dtd_satisfiable(&self, dtd: &Dtd) -> bool {
        analyze(dtd).satisfiable()
    }

    /// Dispatches a specification to the right procedure for its class.
    pub fn check(&self, dtd: &Dtd, sigma: &ConstraintSet) -> Result<ConsistencyOutcome, SpecError> {
        sigma.validate(dtd)?;
        if sigma.is_empty() || sigma.in_class(ConstraintClass::KeysOnly) {
            return Ok(self.check_keys_only(dtd, sigma));
        }
        if sigma.in_class(ConstraintClass::UnaryKeyNegInclusionNeg) {
            return self.check_unary(dtd, sigma);
        }
        Ok(self.check_general(dtd, sigma))
    }

    /// Theorem 3.5(2): a set of keys (of any arity) is consistent over `D`
    /// iff `D` itself admits a valid tree.  Linear time.
    pub fn check_keys_only(&self, dtd: &Dtd, sigma: &ConstraintSet) -> ConsistencyOutcome {
        debug_assert!(sigma.iter().all(|c| matches!(c, Constraint::Key(_))));
        if !self.check_dtd_satisfiable(dtd) {
            return ConsistencyOutcome::Inconsistent {
                explanation: "the DTD admits no finite XML tree (its grammar generates no \
                              terminal tree), so no specification over it is consistent"
                    .to_string(),
            };
        }
        // A valid tree can always be re-valued so that every key holds
        // (make all attribute values pairwise distinct).
        // Reuse the unary machinery to actually build a document; the
        // synthesized witness gives distinct values to every attribute slot
        // that a (unary) key mentions, and multi-attribute keys then hold a
        // fortiori because their first attribute is already unique per node
        // is NOT generally true — so the witness is built from the unary
        // sub-keys only and re-checked by the caller when needed.
        let witness = if self.config.synthesize_witness {
            let keyed: ConstraintSet = sigma.iter().filter(|c| c.is_unary()).cloned().collect();
            CardinalitySystem::build(dtd, &keyed, &self.config.system)
                .ok()
                .and_then(|sys| {
                    match solve_and_witness(
                        dtd,
                        &keyed,
                        &sys,
                        &IlpSolver::with_config(self.config.solver.clone()),
                        self.config.max_repair_rounds,
                    ) {
                        WitnessOutcome::Tree(t) => Some(t),
                        _ => None,
                    }
                })
        } else {
            None
        };
        ConsistencyOutcome::Consistent {
            witness,
            explanation: "the DTD admits a valid tree, and any valid tree can be re-valued so \
                          that all keys hold (Theorem 3.5(2))"
                .to_string(),
        }
    }

    /// Theorem 4.1 / Corollary 4.9 / Theorem 5.1: consistency for unary keys,
    /// foreign keys, inclusion constraints and their negations, by reduction
    /// to integer linear programming.
    pub fn check_unary(
        &self,
        dtd: &Dtd,
        sigma: &ConstraintSet,
    ) -> Result<ConsistencyOutcome, SpecError> {
        let system = CardinalitySystem::build(dtd, sigma, &self.config.system)?;
        Ok(self.check_unary_with_system(dtd, sigma, &system))
    }

    /// Same as [`Self::check_unary`], but over a cardinality system the
    /// caller built (and may reuse across many checks of the same
    /// specification — see the `xic-engine` crate).  `system` must have been
    /// built from exactly this `(dtd, sigma)` pair.
    pub fn check_unary_with_system(
        &self,
        dtd: &Dtd,
        sigma: &ConstraintSet,
        system: &CardinalitySystem,
    ) -> ConsistencyOutcome {
        let solver = IlpSolver::with_config(self.config.solver.clone());
        if !self.config.synthesize_witness {
            // Even without a witness, raw feasibility of Ψ(D,Σ) is not enough:
            // recursive DTDs admit "floating cycle" solutions that no tree
            // realizes, so we insist on a realizable count vector (adding
            // connectivity cuts as needed) before answering Consistent.
            let (outcome, stats) =
                crate::witness::solve_counts(system, &solver, self.config.max_repair_rounds);
            return match outcome {
                crate::witness::CountsOutcome::Realizable(_) => ConsistencyOutcome::Consistent {
                    witness: None,
                    explanation: explain_stats(
                        "the cardinality system Ψ(D,Σ) has a tree-realizable solution",
                        &stats,
                    ),
                },
                crate::witness::CountsOutcome::Infeasible => ConsistencyOutcome::Inconsistent {
                    explanation: explain_stats(
                        "the cardinality system Ψ(D,Σ) has no non-negative integer solution",
                        &stats,
                    ),
                },
                crate::witness::CountsOutcome::Unknown(reason) => ConsistencyOutcome::Unknown {
                    explanation: reason,
                },
            };
        }
        match solve_and_witness(dtd, sigma, system, &solver, self.config.max_repair_rounds) {
            WitnessOutcome::Tree(tree) => ConsistencyOutcome::Consistent {
                witness: Some(tree),
                explanation: "the cardinality system Ψ(D,Σ) is satisfiable and a witness \
                              document was synthesized from its solution"
                    .to_string(),
            },
            WitnessOutcome::Infeasible => ConsistencyOutcome::Inconsistent {
                explanation: "the cardinality system Ψ(D,Σ) has no non-negative integer \
                              solution: the DTD's counting requirements contradict the \
                              constraints"
                    .to_string(),
            },
            WitnessOutcome::Unknown(reason) => ConsistencyOutcome::Unknown {
                explanation: reason,
            },
        }
    }

    /// The general class `C_{K,FK}` (multi-attribute keys and foreign keys):
    /// consistency is undecidable (Theorem 3.1), so this is a *sound but
    /// incomplete* procedure: it can answer `Consistent` (with a concrete
    /// witness found by bounded search) or `Inconsistent` in special cases
    /// that reduce to the decidable fragments, and otherwise answers
    /// `Unknown`.
    pub fn check_general(&self, dtd: &Dtd, sigma: &ConstraintSet) -> ConsistencyOutcome {
        // Special case: the DTD alone is unsatisfiable.
        if !self.check_dtd_satisfiable(dtd) {
            return ConsistencyOutcome::Inconsistent {
                explanation: "the DTD admits no finite XML tree".to_string(),
            };
        }
        // Necessary condition: the unary projection of Σ (each multi-attribute
        // key/foreign key weakened to one of its attributes) must be
        // consistent; if even the weakening is inconsistent, so is Σ.
        let weakened: ConstraintSet = sigma
            .iter()
            .filter_map(|c| match c {
                Constraint::Key(k) => Some(Constraint::unary_key(k.ty, k.attrs[0])),
                Constraint::ForeignKey(i) => Some(Constraint::unary_foreign_key(
                    i.from_ty,
                    i.from_attrs[0],
                    i.to_ty,
                    i.to_attrs[0],
                )),
                _ => None,
            })
            .collect();
        let weakening_applies = sigma
            .iter()
            .all(|c| matches!(c, Constraint::Key(_) | Constraint::ForeignKey(_)));
        if weakening_applies {
            if let Ok(ConsistencyOutcome::Inconsistent { explanation }) =
                self.check_unary(dtd, &weakened)
            {
                return ConsistencyOutcome::Inconsistent {
                    explanation: format!(
                        "already the single-attribute weakening of Σ is inconsistent: {explanation}"
                    ),
                };
            }
        }
        // Sound positive side: bounded search for a concrete witness.
        match bounded_search(dtd, sigma, &self.config.bounded) {
            Some(tree) => ConsistencyOutcome::Consistent {
                witness: Some(tree),
                explanation: "bounded model search found a conforming document satisfying Σ"
                    .to_string(),
            },
            None => ConsistencyOutcome::Unknown {
                explanation: format!(
                    "consistency for multi-attribute keys and foreign keys is undecidable \
                     (Theorem 3.1); bounded search with {} candidate documents found no model",
                    self.config.bounded.attempts
                ),
            },
        }
    }
}

fn explain_stats(prefix: &str, stats: &SolveStats) -> String {
    format!(
        "{prefix} ({} branch-and-bound nodes, {} LP relaxations)",
        stats.nodes, stats.lp_calls
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_constraints::{example_sigma1, example_sigma3, Constraint};
    use xic_dtd::{example_d1, example_d2, example_d3};
    use xic_xml::validate;

    #[test]
    fn paper_example_sigma1_is_inconsistent() {
        let d1 = example_d1();
        let sigma1 = example_sigma1(&d1);
        let outcome = ConsistencyChecker::new().check(&d1, &sigma1).unwrap();
        assert!(outcome.is_inconsistent(), "{}", outcome.explanation());
    }

    #[test]
    fn d2_is_inconsistent_without_constraints() {
        let d2 = example_d2();
        let outcome = ConsistencyChecker::new()
            .check(&d2, &ConstraintSet::new())
            .unwrap();
        assert!(outcome.is_inconsistent());
    }

    #[test]
    fn d1_without_the_subject_key_is_consistent_with_witness() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        let sigma = ConstraintSet::from_vec(vec![
            Constraint::unary_key(teacher, name),
            Constraint::unary_foreign_key(subject, taught_by, teacher, name),
        ]);
        let outcome = ConsistencyChecker::new().check(&d1, &sigma).unwrap();
        let witness = outcome.witness().expect("witness synthesized");
        assert!(validate(witness, &d1).is_empty());
        assert!(xic_constraints::document_satisfies(&d1, witness, &sigma));
    }

    #[test]
    fn keys_only_consistency_is_dtd_satisfiability() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let sigma = ConstraintSet::from_vec(vec![Constraint::unary_key(teacher, name)]);
        let checker = ConsistencyChecker::new();
        assert!(checker.check(&d1, &sigma).unwrap().is_consistent());

        // Over the unsatisfiable D2 even the empty constraint set is
        // inconsistent because D2 has no valid tree at all.
        let d2 = example_d2();
        assert!(checker
            .check(&d2, &ConstraintSet::new())
            .unwrap()
            .is_inconsistent());
    }

    #[test]
    fn multiattribute_school_spec_is_found_consistent_by_search() {
        let d3 = example_d3();
        let sigma3 = example_sigma3(&d3);
        let outcome = ConsistencyChecker::new().check(&d3, &sigma3).unwrap();
        // The school spec is consistent; bounded search should find a small
        // witness (the empty school already satisfies all keys/FKs).
        assert!(outcome.is_consistent(), "{}", outcome.explanation());
        if let Some(w) = outcome.witness() {
            assert!(validate(w, &d3).is_empty());
            assert!(xic_constraints::document_satisfies(&d3, w, &sigma3));
        }
    }

    #[test]
    fn general_class_weakening_detects_inconsistency() {
        // Make D1's Σ1 multi-attribute in form (single-attribute lists are
        // still unary, so craft a genuinely multi-attribute variant): give
        // subject a second attribute and use a 2-attribute key + FK whose
        // unary weakening is exactly Σ1 — the weakening argument applies.
        let mut b = xic_dtd::Dtd::builder();
        let teachers = b.elem("teachers");
        let teacher = b.elem("teacher");
        let teach = b.elem("teach");
        let research = b.elem("research");
        let subject = b.elem("subject");
        use xic_dtd::ContentModel as CM;
        b.content(teachers, CM::plus(CM::Element(teacher)));
        b.content(teacher, CM::seq(CM::Element(teach), CM::Element(research)));
        b.content(teach, CM::seq(CM::Element(subject), CM::Element(subject)));
        b.content(research, CM::Text);
        b.content(subject, CM::Text);
        let name = b.attr(teacher, "name");
        let name2 = b.attr(teacher, "dept");
        let taught_by = b.attr(subject, "taught_by");
        let taught_dept = b.attr(subject, "taught_dept");
        let dtd = b.build("teachers").unwrap();
        let sigma = ConstraintSet::from_vec(vec![
            Constraint::key(teacher, vec![name, name2]),
            Constraint::key(subject, vec![taught_by, taught_dept]),
            Constraint::foreign_key(
                subject,
                vec![taught_by, taught_dept],
                teacher,
                vec![name, name2],
            ),
        ]);
        let outcome = ConsistencyChecker::new().check(&dtd, &sigma).unwrap();
        assert!(outcome.is_inconsistent(), "{}", outcome.explanation());
    }

    #[test]
    fn floating_cycle_solutions_are_not_mistaken_for_consistency() {
        // r → (a | ε); a → b; b → a.  The a/b cycle has no escape, so no
        // finite tree contains an `a` element at all — yet the raw cardinality
        // system Ψ(D,Σ) has a solution that pumps the disconnected cycle.
        // Demanding ¬(a.k → a) forces ext(a) ≥ 2, which only the spurious
        // solution provides, so the checker must answer Inconsistent (in both
        // the witness-synthesizing and the counts-only configurations).
        use xic_dtd::ContentModel as CM;
        let mut b = xic_dtd::Dtd::builder();
        let r = b.elem("r");
        let a = b.elem("a");
        let bb = b.elem("b");
        b.content(r, CM::alt(CM::Element(a), CM::Epsilon));
        b.content(a, CM::Element(bb));
        b.content(bb, CM::Element(a));
        let k = b.attr(a, "k");
        let dtd = b.build("r").unwrap();
        let sigma = ConstraintSet::from_vec(vec![Constraint::not_unary_key(a, k)]);
        for synthesize_witness in [false, true] {
            let checker = ConsistencyChecker::with_config(CheckerConfig {
                synthesize_witness,
                ..Default::default()
            });
            let outcome = checker.check(&dtd, &sigma).unwrap();
            assert!(
                outcome.is_inconsistent(),
                "synthesize_witness={synthesize_witness}: {}",
                outcome.explanation()
            );
        }
    }

    #[test]
    fn recursive_cycle_with_escape_stays_consistent() {
        // r → (a | ε); a → (b | ε); b → a.  Now a chain r–a–b–a exists, so a
        // negated key on `a` is satisfiable by a genuine tree.
        use xic_dtd::ContentModel as CM;
        let mut b = xic_dtd::Dtd::builder();
        let r = b.elem("r");
        let a = b.elem("a");
        let bb = b.elem("b");
        b.content(r, CM::alt(CM::Element(a), CM::Epsilon));
        b.content(a, CM::alt(CM::Element(bb), CM::Epsilon));
        b.content(bb, CM::Element(a));
        let k = b.attr(a, "k");
        let dtd = b.build("r").unwrap();
        let sigma = ConstraintSet::from_vec(vec![Constraint::not_unary_key(a, k)]);
        for synthesize_witness in [false, true] {
            let checker = ConsistencyChecker::with_config(CheckerConfig {
                synthesize_witness,
                ..Default::default()
            });
            let outcome = checker.check(&dtd, &sigma).unwrap();
            assert!(
                outcome.is_consistent(),
                "synthesize_witness={synthesize_witness}: {}",
                outcome.explanation()
            );
            if let Some(w) = outcome.witness() {
                assert!(validate(w, &dtd).is_empty());
                assert!(xic_constraints::document_satisfies(&dtd, w, &sigma));
            }
        }
    }

    #[test]
    fn negated_specs_dispatch_to_unary_checker() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        // name is a key AND not a key: inconsistent.
        let sigma = ConstraintSet::from_vec(vec![
            Constraint::unary_key(teacher, name),
            Constraint::not_unary_key(teacher, name),
        ]);
        let outcome = ConsistencyChecker::new().check(&d1, &sigma).unwrap();
        assert!(outcome.is_inconsistent());
    }
}
