//! Diagnosis of inconsistent specifications.
//!
//! The paper closes by proposing to use integrity constraints "to distinguish
//! good XML design from bad design".  The first tool such a design theory
//! needs is an explanation of *why* a specification is inconsistent: which of
//! the constraints actually participate in the conflict with the DTD's
//! cardinality requirements, and which are innocent bystanders.
//!
//! [`diagnose`] computes a **minimal inconsistent core**: a subset Σ' ⊆ Σ
//! that is still inconsistent over the DTD but becomes consistent if any
//! single constraint is removed.  The core is found by deletion-based
//! shrinking (try dropping each constraint in turn and keep the removal
//! whenever the rest stays inconsistent), which needs `O(|Σ|)` consistency
//! checks.  Each check is the NP procedure of Theorem 4.1 / Corollary 4.9 /
//! Theorem 5.1, so diagnosis stays within the same complexity class as the
//! consistency problem itself.
//!
//! For the teachers example of Section 1, the core of Σ1 over D1 is
//! `{subject.taught_by → subject, subject.taught_by ⊆ teacher.name}` — the
//! teacher key is not part of the conflict, which is exactly the cardinality
//! argument the paper spells out (|ext(subject)| ≤ |ext(teacher)| clashes
//! with |ext(subject)| = 2·|ext(teacher)| > |ext(teacher)|).

use xic_constraints::{Constraint, ConstraintSet};
use xic_dtd::{analyze, Dtd};

use crate::consistency::{CheckerConfig, ConsistencyChecker};
use crate::error::SpecError;

/// The result of diagnosing a specification.
#[derive(Debug, Clone)]
pub enum Diagnosis {
    /// The specification is consistent; there is nothing to explain.
    Consistent,
    /// The DTD alone admits no finite document, so every constraint set over
    /// it is inconsistent regardless of its content.
    DtdUnsatisfiable,
    /// The specification is inconsistent and a minimal inconsistent core was
    /// extracted.
    Core {
        /// A minimal subset of Σ that is already inconsistent over the DTD.
        constraints: Vec<Constraint>,
        /// Constraints of Σ that are not needed for the conflict.
        innocent: Vec<Constraint>,
    },
    /// The underlying consistency checks could not all be decided within the
    /// configured budget, so no minimal core is reported.
    Unknown {
        /// Why diagnosis gave up.
        explanation: String,
    },
}

impl Diagnosis {
    /// The constraints of the minimal core, if one was found.
    pub fn core(&self) -> Option<&[Constraint]> {
        match self {
            Diagnosis::Core { constraints, .. } => Some(constraints),
            _ => None,
        }
    }

    /// Whether the specification was found consistent.
    pub fn is_consistent(&self) -> bool {
        matches!(self, Diagnosis::Consistent)
    }

    /// Renders the diagnosis as a human-readable report.
    pub fn render(&self, dtd: &Dtd) -> String {
        match self {
            Diagnosis::Consistent => "the specification is consistent".to_string(),
            Diagnosis::DtdUnsatisfiable => {
                "the DTD admits no finite document at all; no constraint set over it can be \
                 consistent"
                    .to_string()
            }
            Diagnosis::Core {
                constraints,
                innocent,
            } => {
                let mut out = String::from(
                    "minimal inconsistent core (removing any one of these restores \
                     consistency):\n",
                );
                for c in constraints {
                    out.push_str(&format!("  {}\n", c.render(dtd)));
                }
                if !innocent.is_empty() {
                    out.push_str("constraints not involved in the conflict:\n");
                    for c in innocent {
                        out.push_str(&format!("  {}\n", c.render(dtd)));
                    }
                }
                out
            }
            Diagnosis::Unknown { explanation } => format!("diagnosis gave up: {explanation}"),
        }
    }
}

/// Extracts a minimal inconsistent core of a **unary** specification.
///
/// Multi-attribute constraint sets are rejected with
/// [`SpecError::UnsupportedClass`] (their consistency is undecidable, so a
/// complete diagnosis procedure cannot exist).
pub fn diagnose(
    dtd: &Dtd,
    sigma: &ConstraintSet,
    config: &CheckerConfig,
) -> Result<Diagnosis, SpecError> {
    sigma.validate(dtd)?;
    for c in sigma.iter() {
        if !c.is_unary() {
            return Err(SpecError::UnsupportedClass {
                procedure: "diagnose".to_string(),
                offending: c.render(dtd),
            });
        }
    }
    if !analyze(dtd).satisfiable() {
        return Ok(Diagnosis::DtdUnsatisfiable);
    }
    // Diagnosis only needs verdicts, not witnesses.
    let checker = ConsistencyChecker::with_config(CheckerConfig {
        synthesize_witness: false,
        ..config.clone()
    });
    let full = checker.check(dtd, sigma)?;
    if full.is_consistent() {
        return Ok(Diagnosis::Consistent);
    }
    if full.is_unknown() {
        return Ok(Diagnosis::Unknown {
            explanation: full.explanation().to_string(),
        });
    }

    // Deletion-based shrinking: keep a working set that is known inconsistent
    // and try to drop each member once.
    let mut core: Vec<Constraint> = sigma.iter().cloned().collect();
    let mut i = 0;
    while i < core.len() {
        let mut candidate = core.clone();
        candidate.remove(i);
        let outcome = checker.check(dtd, &candidate.iter().cloned().collect::<ConstraintSet>())?;
        if outcome.is_inconsistent() {
            core = candidate; // the i-th constraint is not needed
        } else if outcome.is_unknown() {
            return Ok(Diagnosis::Unknown {
                explanation: format!(
                    "could not decide consistency of Σ without {}: {}",
                    core[i].render(dtd),
                    outcome.explanation()
                ),
            });
        } else {
            i += 1; // needed for the conflict, keep it
        }
    }
    let innocent = sigma
        .iter()
        .filter(|c| !core.contains(c))
        .cloned()
        .collect();
    Ok(Diagnosis::Core {
        constraints: core,
        innocent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_constraints::example_sigma1;
    use xic_dtd::{example_d1, example_d2};

    #[test]
    fn sigma1_core_is_the_subject_key_and_the_foreign_key() {
        let d1 = example_d1();
        let sigma1 = example_sigma1(&d1);
        let diagnosis = diagnose(&d1, &sigma1, &CheckerConfig::default()).unwrap();
        let core = diagnosis.core().expect("Σ1 is inconsistent, a core exists");
        // The teacher key is innocent; the subject key + the foreign key
        // already clash with D1's "two subjects per teacher".
        assert_eq!(core.len(), 2, "{}", diagnosis.render(&d1));
        let rendered = diagnosis.render(&d1);
        assert!(
            rendered.contains("subject.taught_by → subject"),
            "{rendered}"
        );
        assert!(rendered.contains("teacher.name → teacher"), "{rendered}");
        // Every core member is needed: dropping any one restores consistency.
        let checker = ConsistencyChecker::with_config(CheckerConfig {
            synthesize_witness: false,
            ..Default::default()
        });
        for skip in 0..core.len() {
            let reduced: ConstraintSet = core
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, c)| c.clone())
                .collect();
            assert!(checker.check(&d1, &reduced).unwrap().is_consistent());
        }
    }

    #[test]
    fn consistent_specifications_need_no_diagnosis() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let sigma = ConstraintSet::from_vec(vec![Constraint::unary_key(teacher, name)]);
        let diagnosis = diagnose(&d1, &sigma, &CheckerConfig::default()).unwrap();
        assert!(diagnosis.is_consistent());
    }

    #[test]
    fn unsatisfiable_dtd_is_reported_as_such() {
        let d2 = example_d2();
        let diagnosis = diagnose(&d2, &ConstraintSet::new(), &CheckerConfig::default()).unwrap();
        assert!(matches!(diagnosis, Diagnosis::DtdUnsatisfiable));
        assert!(diagnosis.render(&d2).contains("no finite document"));
    }

    #[test]
    fn multi_attribute_constraints_are_rejected() {
        let d3 = xic_dtd::example_d3();
        let sigma3 = xic_constraints::example_sigma3(&d3);
        let err = diagnose(&d3, &sigma3, &CheckerConfig::default()).unwrap_err();
        assert!(matches!(err, SpecError::UnsupportedClass { .. }));
    }
}
