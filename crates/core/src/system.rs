//! The cardinality systems Ψ_D, C_Σ, Ψ(D,Σ) and Ψ'(D,Σ).
//!
//! This is the heart of the paper's positive results (Theorem 4.1,
//! Corollary 4.9, Theorem 5.1): a DTD `D` and a set Σ of unary constraints
//! are compiled into a system of linear integer constraints such that the
//! system has a non-negative integer solution iff some XML tree conforms to
//! `D` and satisfies Σ.  The pieces are:
//!
//! * **Ψ_DN** — one variable `|ext(τ)|` per type of the simplified DTD and
//!   one occurrence variable `x^i_{τ1,τ}` per occurrence of `τ1` in the rule
//!   of `τ`, with the per-rule equalities and per-type occurrence sums;
//! * **C_Σ** — one variable `|ext(τ.l)|` per attribute slot, with
//!   `|ext(τ.l)| = |ext(τ)|` for keys, `≤` for inclusions, and
//!   `0 ≤ |ext(τ.l)| ≤ |ext(τ)|` always;
//! * the conditional constraints `|ext(τ)| > 0 → |ext(τ.l)| > 0` expressing
//!   that every element carries all its attributes;
//! * for negated keys (Corollary 4.9): `|ext(τ.l)| < |ext(τ)|`;
//! * for negated inclusion constraints (Theorem 5.1): *set-atom* variables
//!   `z_θ`, one per non-empty subset θ of the attribute slots mentioned by
//!   (positive or negative) inclusion constraints, constrained so that the
//!   `|ext(τ.l)|` values admit a set representation in which every negated
//!   inclusion has a witness value.

use std::collections::HashMap;

use xic_constraints::{Constraint, ConstraintSet};
use xic_dtd::{AttrId, Dtd, ElemId, SimpleDtd, SimpleId, SimpleRule};
use xic_ilp::{CmpOp, IntegerProgram, LinExpr, Rational, VarId};

use crate::error::SpecError;

/// Options controlling system construction.
#[derive(Debug, Clone)]
pub struct SystemOptions {
    /// Maximum number of attribute slots admitted by the negated-inclusion
    /// (set-atom) encoding; the number of atom variables is `2^slots − 1`.
    pub max_atom_slots: usize,
}

impl Default for SystemOptions {
    fn default() -> Self {
        SystemOptions { max_atom_slots: 16 }
    }
}

/// An occurrence variable `x^i_{child,parent}`: the number of `child`
/// subelements appearing at position `i` of the rule of `parent`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occurrence {
    /// The child type.
    pub child: SimpleId,
    /// The parent type.
    pub parent: SimpleId,
    /// Position within the parent's rule (1 or 2).
    pub position: u8,
    /// The ILP variable carrying the count.
    pub var: VarId,
}

/// The compiled cardinality system Ψ(D,Σ) (or Ψ'(D,Σ) when Σ contains
/// negated inclusion constraints).
#[derive(Debug, Clone)]
pub struct CardinalitySystem {
    program: IntegerProgram,
    simple: SimpleDtd,
    ext_vars: Vec<VarId>,
    text_var: VarId,
    attr_vars: HashMap<(ElemId, AttrId), VarId>,
    occurrences: Vec<Occurrence>,
    text_occurrences: Vec<(SimpleId, VarId)>,
    /// Attribute slots participating in the set-atom encoding, in index
    /// order (empty when Σ has no negated inclusion constraints).
    atom_slots: Vec<(ElemId, AttrId)>,
    /// Atom variables: `(bitmask over atom_slots, z_θ variable)`.
    atom_vars: Vec<(u64, VarId)>,
}

impl CardinalitySystem {
    /// Builds Ψ(D,Σ) / Ψ'(D,Σ) for a DTD and a set of **unary** constraints.
    ///
    /// Multi-attribute constraints are rejected with
    /// [`SpecError::UnsupportedClass`]; the undecidable general class is
    /// handled by [`crate::bounded`] instead.
    pub fn build(
        dtd: &Dtd,
        sigma: &ConstraintSet,
        options: &SystemOptions,
    ) -> Result<CardinalitySystem, SpecError> {
        sigma.validate(dtd)?;
        for c in sigma.iter() {
            if !c.is_unary() {
                return Err(SpecError::UnsupportedClass {
                    procedure: "CardinalitySystem::build".to_string(),
                    offending: c.render(dtd),
                });
            }
        }

        let simple = SimpleDtd::from_dtd(dtd);
        let mut program = IntegerProgram::new();

        // |ext(τ)| variables for every simple type, plus |ext(S)|.
        let ext_vars: Vec<VarId> = simple
            .types()
            .map(|ty| program.add_var(format!("ext({})", simple.name(ty))))
            .collect();
        let text_var = program.add_var("ext(S)");

        // Occurrence variables and the per-rule equalities ψ_τ.
        let mut occurrences = Vec::new();
        let mut text_occurrences = Vec::new();
        for ty in simple.types() {
            let ext_ty = ext_vars[ty.index()];
            match simple.rule(ty) {
                SimpleRule::Epsilon => {}
                SimpleRule::Text => {
                    let v = program.add_var(format!("occ(S, {})", simple.name(ty)));
                    text_occurrences.push((ty, v));
                    program.add_var_eq_expr(
                        ext_ty,
                        LinExpr::var(v),
                        format!("ψ_{}: text child", simple.name(ty)),
                    );
                }
                SimpleRule::One(a) => {
                    let v =
                        program.add_var(format!("occ1({}, {})", simple.name(a), simple.name(ty)));
                    occurrences.push(Occurrence {
                        child: a,
                        parent: ty,
                        position: 1,
                        var: v,
                    });
                    program.add_var_eq_expr(
                        ext_ty,
                        LinExpr::var(v),
                        format!("ψ_{}: single child", simple.name(ty)),
                    );
                }
                SimpleRule::Seq(a, b) => {
                    let va =
                        program.add_var(format!("occ1({}, {})", simple.name(a), simple.name(ty)));
                    let vb =
                        program.add_var(format!("occ2({}, {})", simple.name(b), simple.name(ty)));
                    occurrences.push(Occurrence {
                        child: a,
                        parent: ty,
                        position: 1,
                        var: va,
                    });
                    occurrences.push(Occurrence {
                        child: b,
                        parent: ty,
                        position: 2,
                        var: vb,
                    });
                    program.add_var_eq_expr(
                        ext_ty,
                        LinExpr::var(va),
                        format!("ψ_{}: first of sequence", simple.name(ty)),
                    );
                    program.add_var_eq_expr(
                        ext_ty,
                        LinExpr::var(vb),
                        format!("ψ_{}: second of sequence", simple.name(ty)),
                    );
                }
                SimpleRule::Alt(a, b) => {
                    let va =
                        program.add_var(format!("occ1({}, {})", simple.name(a), simple.name(ty)));
                    let vb =
                        program.add_var(format!("occ2({}, {})", simple.name(b), simple.name(ty)));
                    occurrences.push(Occurrence {
                        child: a,
                        parent: ty,
                        position: 1,
                        var: va,
                    });
                    occurrences.push(Occurrence {
                        child: b,
                        parent: ty,
                        position: 2,
                        var: vb,
                    });
                    let mut sum = LinExpr::var(va);
                    sum.add_term(vb, Rational::one());
                    program.add_var_eq_expr(ext_ty, sum, format!("ψ_{}: union", simple.name(ty)));
                }
            }
        }

        // |ext(r)| = 1.
        program.add_eq(
            LinExpr::var(ext_vars[simple.root().index()]),
            Rational::one(),
            "unique root",
        );

        // Per-type occurrence sums: every non-root element is somebody's
        // child exactly once; the root is nobody's child.
        for ty in simple.types() {
            let mut sum = LinExpr::new();
            for occ in &occurrences {
                if occ.child == ty {
                    sum.add_term(occ.var, Rational::one());
                }
            }
            if ty == simple.root() {
                if !sum.is_empty() {
                    program.add_eq(
                        sum,
                        Rational::zero(),
                        "the root never occurs as a child".to_string(),
                    );
                }
            } else {
                let mut expr = LinExpr::var(ext_vars[ty.index()]);
                expr.sub_expr(&sum);
                program.add_eq(
                    expr,
                    Rational::zero(),
                    format!("ext({}) counts all its occurrences", simple.name(ty)),
                );
            }
        }
        // |ext(S)| = Σ text occurrences.
        {
            let mut expr = LinExpr::var(text_var);
            for (_, v) in &text_occurrences {
                expr.add_term(*v, -Rational::one());
            }
            program.add_eq(expr, Rational::zero(), "ext(S) counts all text nodes");
        }

        // Attribute-count variables and the generic bounds
        // 0 ≤ |ext(τ.l)| ≤ |ext(τ)| plus the totality conditionals.
        let mut attr_vars = HashMap::new();
        for ty in dtd.types() {
            let ext_ty = ext_vars[simple.simple_of(ty).index()];
            for &attr in dtd.attrs_of(ty) {
                let v = program.add_var(format!(
                    "ext({}.{})",
                    dtd.type_name(ty),
                    dtd.attr_name(attr)
                ));
                attr_vars.insert((ty, attr), v);
                let mut le = LinExpr::var(v);
                le.add_term(ext_ty, -Rational::one());
                program.add_le(
                    le,
                    Rational::zero(),
                    format!(
                        "|ext({0}.{1})| ≤ |ext({0})|",
                        dtd.type_name(ty),
                        dtd.attr_name(attr)
                    ),
                );
                program.add_conditional(
                    ext_ty,
                    v,
                    format!(
                        "every {} element has an {} attribute",
                        dtd.type_name(ty),
                        dtd.attr_name(attr)
                    ),
                );
            }
        }

        // C_Σ: constraint-derived rows.
        for c in sigma.iter() {
            match c {
                Constraint::Key(k) => {
                    let attr = k.attrs[0];
                    let ext_ty = ext_vars[simple.simple_of(k.ty).index()];
                    let av = attr_vars[&(k.ty, attr)];
                    let mut eq = LinExpr::var(av);
                    eq.add_term(ext_ty, -Rational::one());
                    program.add_eq(eq, Rational::zero(), format!("key: {}", c.render(dtd)));
                }
                Constraint::Inclusion(i) | Constraint::ForeignKey(i) => {
                    let from = attr_vars[&(i.from_ty, i.from_attrs[0])];
                    let to = attr_vars[&(i.to_ty, i.to_attrs[0])];
                    let mut le = LinExpr::var(from);
                    le.add_term(to, -Rational::one());
                    program.add_le(
                        le,
                        Rational::zero(),
                        format!("inclusion: {}", c.render(dtd)),
                    );
                    if matches!(c, Constraint::ForeignKey(_)) {
                        let ext_ty = ext_vars[simple.simple_of(i.to_ty).index()];
                        let mut eq = LinExpr::var(to);
                        eq.add_term(ext_ty, -Rational::one());
                        program.add_eq(
                            eq,
                            Rational::zero(),
                            format!("foreign-key target key: {}", c.render(dtd)),
                        );
                    }
                }
                Constraint::NotKey(k) => {
                    // |ext(τ.l)| ≤ |ext(τ)| − 1 (Corollary 4.9).
                    let attr = k.attrs[0];
                    let ext_ty = ext_vars[simple.simple_of(k.ty).index()];
                    let av = attr_vars[&(k.ty, attr)];
                    let mut le = LinExpr::var(av);
                    le.add_term(ext_ty, -Rational::one());
                    program.add_le(
                        le,
                        Rational::from_int(-1i64),
                        format!("negated key: {}", c.render(dtd)),
                    );
                }
                Constraint::NotInclusion(_) => {
                    // Handled below by the set-atom encoding.
                }
            }
        }

        // Set-atom encoding for negated inclusion constraints (Theorem 5.1).
        let mut atom_slots: Vec<(ElemId, AttrId)> = Vec::new();
        let mut atom_vars: Vec<(u64, VarId)> = Vec::new();
        let has_neg_inclusion = sigma
            .iter()
            .any(|c| matches!(c, Constraint::NotInclusion(_)));
        if has_neg_inclusion {
            // Collect every slot mentioned by a positive or negative
            // inclusion constraint.
            let push_slot = |slots: &mut Vec<(ElemId, AttrId)>, ty: ElemId, attr: AttrId| {
                if !slots.contains(&(ty, attr)) {
                    slots.push((ty, attr));
                }
            };
            for c in sigma.iter() {
                if let Some(i) = c.inclusion_part() {
                    push_slot(&mut atom_slots, i.from_ty, i.from_attrs[0]);
                    push_slot(&mut atom_slots, i.to_ty, i.to_attrs[0]);
                }
            }
            let n = atom_slots.len();
            if n > options.max_atom_slots {
                return Err(SpecError::TooManyAtomSlots {
                    slots: n,
                    limit: options.max_atom_slots,
                });
            }
            // One z_θ per non-empty subset of the slots.
            for mask in 1u64..(1u64 << n) {
                let v = program.add_var(format!("z_{mask:b}"));
                atom_vars.push((mask, v));
            }
            // |ext(τ_i.l_i)| = Σ_{θ ∋ i} z_θ.
            for (i, &(ty, attr)) in atom_slots.iter().enumerate() {
                let mut expr = LinExpr::var(attr_vars[&(ty, attr)]);
                for &(mask, v) in &atom_vars {
                    if mask & (1 << i) != 0 {
                        expr.add_term(v, -Rational::one());
                    }
                }
                program.add_eq(
                    expr,
                    Rational::zero(),
                    format!(
                        "|ext({}.{})| is the size of its value set",
                        dtd.type_name(ty),
                        dtd.attr_name(attr)
                    ),
                );
            }
            // Positive inclusions force v_ij = 0; negations force v_ij ≥ 1.
            let slot_index = |slots: &[(ElemId, AttrId)], ty: ElemId, attr: AttrId| {
                slots
                    .iter()
                    .position(|&s| s == (ty, attr))
                    .expect("slot registered")
            };
            for c in sigma.iter() {
                let Some(inc) = c.inclusion_part() else {
                    continue;
                };
                let i = slot_index(&atom_slots, inc.from_ty, inc.from_attrs[0]);
                let j = slot_index(&atom_slots, inc.to_ty, inc.to_attrs[0]);
                let mut v_ij = LinExpr::new();
                for &(mask, v) in &atom_vars {
                    if mask & (1 << i) != 0 && mask & (1 << j) == 0 {
                        v_ij.add_term(v, Rational::one());
                    }
                }
                match c {
                    Constraint::Inclusion(_) | Constraint::ForeignKey(_) => {
                        program.add_constraint(
                            v_ij,
                            CmpOp::Eq,
                            Rational::zero(),
                            format!("set inclusion: {}", c.render(dtd)),
                        );
                    }
                    Constraint::NotInclusion(_) => {
                        program.add_ge(
                            v_ij,
                            Rational::one(),
                            format!("negated inclusion witness: {}", c.render(dtd)),
                        );
                    }
                    _ => {}
                }
            }
        }

        Ok(CardinalitySystem {
            program,
            simple,
            ext_vars,
            text_var,
            attr_vars,
            occurrences,
            text_occurrences,
            atom_slots,
            atom_vars,
        })
    }

    /// The underlying integer program.
    pub fn program(&self) -> &IntegerProgram {
        &self.program
    }

    /// The simplified DTD the system is defined over.
    pub fn simple(&self) -> &SimpleDtd {
        &self.simple
    }

    /// The `|ext(τ)|` variable of an original element type.
    pub fn ext_var(&self, ty: ElemId) -> VarId {
        self.ext_vars[self.simple.simple_of(ty).index()]
    }

    /// The `|ext(τ)|` variable of a simple type.
    pub fn ext_var_simple(&self, ty: SimpleId) -> VarId {
        self.ext_vars[ty.index()]
    }

    /// The `|ext(S)|` variable.
    pub fn text_var(&self) -> VarId {
        self.text_var
    }

    /// The `|ext(τ.l)|` variable of an attribute slot.
    pub fn attr_var(&self, ty: ElemId, attr: AttrId) -> Option<VarId> {
        self.attr_vars.get(&(ty, attr)).copied()
    }

    /// All occurrence variables.
    pub fn occurrences(&self) -> &[Occurrence] {
        &self.occurrences
    }

    /// Text-occurrence variables per parent type.
    pub fn text_occurrences(&self) -> &[(SimpleId, VarId)] {
        &self.text_occurrences
    }

    /// The attribute slots of the set-atom encoding (Theorem 5.1).
    pub fn atom_slots(&self) -> &[(ElemId, AttrId)] {
        &self.atom_slots
    }

    /// The set-atom variables (bitmask over [`Self::atom_slots`], variable).
    pub fn atom_vars(&self) -> &[(u64, VarId)] {
        &self.atom_vars
    }

    /// Mutable access to the program (used by the witness synthesizer to add
    /// realizability cuts before re-solving).
    pub fn program_mut(&mut self) -> &mut IntegerProgram {
        &mut self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_constraints::example_sigma1;
    use xic_dtd::{example_d1, example_d2};
    use xic_ilp::IlpSolver;

    #[test]
    fn d1_without_constraints_is_feasible() {
        let d1 = example_d1();
        let sys = CardinalitySystem::build(&d1, &ConstraintSet::new(), &SystemOptions::default())
            .unwrap();
        let outcome = IlpSolver::new().solve(sys.program());
        let a = outcome.assignment().expect("D1 alone is satisfiable");
        // The root count is 1 and teacher count ≥ 1 (teacher+).
        let teachers = d1.type_by_name("teachers").unwrap();
        let teacher = d1.type_by_name("teacher").unwrap();
        assert_eq!(a.get_u64(sys.ext_var(teachers)), Some(1));
        assert!(a.get_u64(sys.ext_var(teacher)).unwrap() >= 1);
    }

    #[test]
    fn d1_with_sigma1_is_infeasible() {
        // The paper's introductory example: Σ1 over D1 is inconsistent.
        let d1 = example_d1();
        let sigma1 = example_sigma1(&d1);
        let sys = CardinalitySystem::build(&d1, &sigma1, &SystemOptions::default()).unwrap();
        assert!(IlpSolver::new().solve(sys.program()).is_infeasible());
    }

    #[test]
    fn d2_is_infeasible_even_without_constraints() {
        let d2 = example_d2();
        let sys = CardinalitySystem::build(&d2, &ConstraintSet::new(), &SystemOptions::default())
            .unwrap();
        assert!(IlpSolver::new().solve(sys.program()).is_infeasible());
    }

    #[test]
    fn dropping_the_foreign_key_restores_consistency() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        let sigma = ConstraintSet::from_vec(vec![
            Constraint::unary_key(teacher, name),
            Constraint::unary_foreign_key(subject, taught_by, teacher, name),
        ]);
        // Without the subject key, subjects may share taught_by values, so a
        // model exists.
        let sys = CardinalitySystem::build(&d1, &sigma, &SystemOptions::default()).unwrap();
        let outcome = IlpSolver::new().solve(sys.program());
        assert!(outcome.is_feasible());
        let a = outcome.assignment().unwrap();
        // The conditional constraints force at least one taught_by value.
        assert!(
            a.get_u64(sys.attr_var(subject, taught_by).unwrap())
                .unwrap()
                >= 1
        );
    }

    #[test]
    fn multiattribute_constraints_are_rejected() {
        let d3 = xic_dtd::example_d3();
        let sigma3 = xic_constraints::example_sigma3(&d3);
        let err = CardinalitySystem::build(&d3, &sigma3, &SystemOptions::default()).unwrap_err();
        assert!(matches!(err, SpecError::UnsupportedClass { .. }));
    }

    #[test]
    fn negated_key_forces_two_elements() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let sigma = ConstraintSet::from_vec(vec![Constraint::not_unary_key(teacher, name)]);
        let sys = CardinalitySystem::build(&d1, &sigma, &SystemOptions::default()).unwrap();
        let outcome = IlpSolver::new().solve(sys.program());
        let a = outcome.assignment().expect("feasible");
        assert!(a.get_u64(sys.ext_var(teacher)).unwrap() >= 2);
    }

    #[test]
    fn negated_inclusion_uses_atoms() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        let sigma = ConstraintSet::from_vec(vec![Constraint::not_unary_inclusion(
            subject, taught_by, teacher, name,
        )]);
        let sys = CardinalitySystem::build(&d1, &sigma, &SystemOptions::default()).unwrap();
        assert_eq!(sys.atom_slots().len(), 2);
        assert_eq!(sys.atom_vars().len(), 3);
        assert!(IlpSolver::new().solve(sys.program()).is_feasible());
    }

    #[test]
    fn atom_slot_limit_is_enforced() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        let sigma = ConstraintSet::from_vec(vec![Constraint::not_unary_inclusion(
            subject, taught_by, teacher, name,
        )]);
        let err = CardinalitySystem::build(&d1, &sigma, &SystemOptions { max_atom_slots: 1 })
            .unwrap_err();
        assert!(matches!(
            err,
            SpecError::TooManyAtomSlots { slots: 2, limit: 1 }
        ));
    }

    #[test]
    fn system_size_is_linear_in_the_spec() {
        let d1 = example_d1();
        let sigma1 = example_sigma1(&d1);
        let sys = CardinalitySystem::build(&d1, &sigma1, &SystemOptions::default()).unwrap();
        // A loose sanity bound: a handful of variables and rows per type.
        assert!(sys.program().num_vars() < 20 * d1.num_types());
        assert!(sys.program().num_constraints() < 20 * d1.num_types() + 10 * sigma1.len());
    }
}
