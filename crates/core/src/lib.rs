//! # xic-core — consistency and implication analysis for XML specifications
//!
//! This crate is the paper's primary contribution turned into a library: given
//! a DTD `D` (from `xic-dtd`) and a set Σ of keys, foreign keys and inclusion
//! constraints (from `xic-constraints`), it decides — to the extent the paper
//! shows decidable — whether the specification is *consistent* (some document
//! conforms to `D` and satisfies Σ) and whether a further constraint is
//! *implied*.
//!
//! The module map mirrors the paper:
//!
//! * [`system`] — the cardinality encodings Ψ_D, C_Σ, Ψ(D,Σ) and Ψ'(D,Σ) of
//!   Theorem 4.1, Corollary 4.9 and Theorem 5.1;
//! * [`consistency`] — the decision procedures, dispatched by constraint
//!   class (linear-time keys-only and DTD-only cases of Theorem 3.5, the
//!   ILP-backed unary cases, and the sound-but-incomplete bounded search for
//!   the undecidable general class of Theorem 3.1);
//! * [`implication`] — implication via subsumption (Lemma 3.7) and via
//!   consistency of Σ ∪ {¬φ} (Theorem 4.10, Theorem 5.4);
//! * [`witness`] — synthesis of concrete witness documents from integer
//!   solutions (Lemmas 4.4–4.6, 5.2), with realizability cuts;
//! * [`mod@diagnose`] — minimal-inconsistent-core extraction for inconsistent
//!   specifications (a first step towards the "design theory" the paper's
//!   conclusion calls for);
//! * [`bounded`] — the bounded model search used for the general class;
//! * [`reductions`] — executable forms of the paper's reductions
//!   (Theorem 3.1, Lemma 3.3, Theorem 4.7).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bounded;
pub mod consistency;
pub mod diagnose;
pub mod error;
pub mod implication;
pub mod reductions;
pub mod system;
pub mod witness;

pub use bounded::{bounded_search, BoundedSearchConfig};
pub use consistency::{CheckerConfig, ConsistencyChecker, ConsistencyOutcome};
pub use diagnose::{diagnose, Diagnosis};
pub use error::SpecError;
pub use implication::{ImplicationChecker, ImplicationOutcome};
pub use reductions::{
    consistency_to_implication, lip_to_spec, relational_to_spec, ImplicationReduction, LipSpec,
    RelationalSpec,
};
pub use system::{CardinalitySystem, SystemOptions};
pub use witness::{
    floating_components, solve_and_witness, solve_counts, synthesize, CountsOutcome, WitnessError,
    WitnessOutcome,
};
