//! Error types for the consistency and implication analyses.

use std::fmt;

use xic_constraints::ConstraintError;

/// Errors raised while analysing an XML specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A constraint is not well-formed over the DTD.
    BadConstraint(ConstraintError),
    /// The requested procedure does not handle the given constraint class
    /// (e.g. asking the unary checker to handle multi-attribute keys).
    UnsupportedClass {
        /// The procedure that was invoked.
        procedure: String,
        /// Description of the offending constraint.
        offending: String,
    },
    /// The Theorem 5.1 encoding would need more set-atom variables than the
    /// configured limit (the construction is exponential in the number of
    /// attribute slots mentioned by inclusion constraints and negations).
    TooManyAtomSlots {
        /// Number of slots required.
        slots: usize,
        /// Configured limit.
        limit: usize,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::BadConstraint(e) => write!(f, "ill-formed constraint: {e}"),
            SpecError::UnsupportedClass { procedure, offending } => {
                write!(f, "{procedure} does not handle constraint `{offending}`")
            }
            SpecError::TooManyAtomSlots { slots, limit } => write!(
                f,
                "the negated-inclusion encoding needs 2^{slots} set atoms, above the limit of 2^{limit}"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<ConstraintError> for SpecError {
    fn from(e: ConstraintError) -> Self {
        SpecError::BadConstraint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SpecError::UnsupportedClass {
            procedure: "check_unary".into(),
            offending: "course[dept, course_no] → course".into(),
        };
        assert!(e.to_string().contains("check_unary"));
        let e = SpecError::TooManyAtomSlots {
            slots: 40,
            limit: 16,
        };
        assert!(e.to_string().contains("40"));
    }
}
