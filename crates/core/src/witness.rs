//! Witness synthesis: from an integer solution of Ψ(D,Σ) to an actual XML
//! tree that conforms to the DTD and satisfies Σ.
//!
//! This is the constructive content of Lemmas 4.4–4.6 (and Lemma 5.2 for the
//! negated-inclusion case): the solution fixes `|ext(τ)|` for every simple
//! type and the number of children per occurrence position; nodes are
//! materialised top-down from the root, consuming the occurrence budgets, and
//! attribute values are chosen so that keys are injective, inclusion
//! constraints hold by prefix-nesting of value pools (or by the set-atom
//! value sets when negated inclusions are present), negated keys get a
//! genuine clash and negated inclusions a genuine dangling value.
//!
//! ## Realizability
//!
//! The cardinality system constrains *counts*, and a count vector can fail to
//! be realizable as a tree when a recursive component is populated without
//! any occurrence connecting it to the root (a "floating cycle"; see
//! DESIGN.md).  The top-down expansion only ever creates nodes reachable from
//! the root, so after expansion any unconsumed budget reveals exactly this
//! situation and the synthesizer reports [`WitnessError::NotRealizable`]; the
//! consistency checker then adds a connectivity cut and re-solves.  Every
//! tree actually returned is guaranteed — and verified in tests — to satisfy
//! `T ⊨ D` and `T ⊨ Σ`.

use std::collections::HashMap;

use xic_constraints::ConstraintSet;
use xic_dtd::{AttrId, Dtd, ElemId, SimpleDtd, SimpleId, SimpleRule};
use xic_ilp::Assignment;
use xic_xml::{NodeId, XmlTree};

use crate::system::CardinalitySystem;

/// Errors raised during witness synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessError {
    /// The solution's counts cannot be wired into a single tree: the listed
    /// simple types have nodes that no chain of children connects to the
    /// root.
    NotRealizable {
        /// The floating simple types.
        floating_types: Vec<SimpleId>,
    },
    /// The solution assigns a count that does not fit in `u64` (practically
    /// impossible for solver-produced solutions; guarded for robustness).
    CountOverflow(String),
}

impl std::fmt::Display for WitnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WitnessError::NotRealizable { floating_types } => write!(
                f,
                "solution is not realizable as a tree: {} type(s) form a floating component",
                floating_types.len()
            ),
            WitnessError::CountOverflow(name) => {
                write!(f, "count of `{name}` does not fit in u64")
            }
        }
    }
}

impl std::error::Error for WitnessError {}

/// Per-slot child budgets extracted from the occurrence variables.
struct Budgets {
    /// `(parent type, position) → (child type, remaining budget)`.
    slots: HashMap<(SimpleId, u8), (SimpleId, u64)>,
    /// Nodes created so far, per simple type.
    created: Vec<u64>,
    /// Target counts, per simple type.
    target: Vec<u64>,
}

impl Budgets {
    fn take(&mut self, parent: SimpleId, position: u8) -> Option<SimpleId> {
        let (child, remaining) = self.slots.get_mut(&(parent, position))?;
        if *remaining == 0 {
            return None;
        }
        *remaining -= 1;
        let child = *child;
        self.created[child.index()] += 1;
        Some(child)
    }

    fn remaining(&self, parent: SimpleId, position: u8) -> u64 {
        self.slots
            .get(&(parent, position))
            .map(|&(_, r)| r)
            .unwrap_or(0)
    }
}

/// Synthesizes an XML tree from a satisfying assignment of the cardinality
/// system.
pub fn synthesize(
    dtd: &Dtd,
    sigma: &ConstraintSet,
    system: &CardinalitySystem,
    assignment: &Assignment,
) -> Result<XmlTree, WitnessError> {
    let simple = system.simple();

    // Target counts per simple type.
    let mut target = Vec::with_capacity(simple.num_types());
    for ty in simple.types() {
        let v = assignment
            .get_u64(system.ext_var_simple(ty))
            .ok_or_else(|| WitnessError::CountOverflow(simple.name(ty).to_string()))?;
        target.push(v);
    }

    // Occurrence budgets per (parent, position).
    let mut slots: HashMap<(SimpleId, u8), (SimpleId, u64)> = HashMap::new();
    for occ in system.occurrences() {
        let n = assignment.get_u64(occ.var).ok_or_else(|| {
            WitnessError::CountOverflow(format!(
                "occurrence of {} under {}",
                simple.name(occ.child),
                simple.name(occ.parent)
            ))
        })?;
        slots.insert((occ.parent, occ.position), (occ.child, n));
    }
    let mut created = vec![0u64; simple.num_types()];
    created[simple.root().index()] = 1;
    let mut budgets = Budgets {
        slots,
        created,
        target,
    };

    // Expand top-down, in document order, splicing synthetic types in place.
    let root_original = simple
        .original(simple.root())
        .expect("the root of the simplified DTD is an original type");
    let mut tree = XmlTree::new(root_original);
    let xml_root = tree.root();
    expand(simple, &mut budgets, &mut tree, simple.root(), xml_root)?;

    // Any unconsumed budget / uncreated node is a floating component.
    let floating: Vec<SimpleId> = simple
        .types()
        .filter(|ty| budgets.created[ty.index()] != budgets.target[ty.index()])
        .collect();
    if !floating.is_empty() {
        return Err(WitnessError::NotRealizable {
            floating_types: floating,
        });
    }

    assign_attribute_values(dtd, sigma, system, assignment, &mut tree)?;
    Ok(tree)
}

/// Expands one abstract node: creates its children per the simplified rule,
/// consuming budgets, and recurses.  `xml_parent` is the XML element the
/// children should be attached to (the nearest *original* ancestor).
fn expand(
    simple: &SimpleDtd,
    budgets: &mut Budgets,
    tree: &mut XmlTree,
    ty: SimpleId,
    xml_parent: NodeId,
) -> Result<(), WitnessError> {
    let attach = |tree: &mut XmlTree, child: SimpleId| -> (SimpleId, NodeId) {
        match simple.original(child) {
            Some(original) => (child, tree.add_element(xml_parent, original)),
            None => (child, xml_parent),
        }
    };

    match simple.rule(ty) {
        SimpleRule::Epsilon => Ok(()),
        SimpleRule::Text => {
            tree.add_text(xml_parent, "text");
            Ok(())
        }
        SimpleRule::One(_) => {
            let child = budgets
                .take(ty, 1)
                .ok_or_else(|| WitnessError::NotRealizable {
                    floating_types: vec![ty],
                })?;
            let (child, xml) = attach(tree, child);
            expand(simple, budgets, tree, child, xml)
        }
        SimpleRule::Seq(_, _) => {
            let first = budgets
                .take(ty, 1)
                .ok_or_else(|| WitnessError::NotRealizable {
                    floating_types: vec![ty],
                })?;
            let (first, xml1) = attach(tree, first);
            expand(simple, budgets, tree, first, xml1)?;
            let second = budgets
                .take(ty, 2)
                .ok_or_else(|| WitnessError::NotRealizable {
                    floating_types: vec![ty],
                })?;
            let (second, xml2) = attach(tree, second);
            expand(simple, budgets, tree, second, xml2)
        }
        SimpleRule::Alt(_, _) => {
            let position = choose_alt_branch(simple, budgets, ty);
            let child = budgets
                .take(ty, position)
                .ok_or_else(|| WitnessError::NotRealizable {
                    floating_types: vec![ty],
                })?;
            let (child, xml) = attach(tree, child);
            expand(simple, budgets, tree, child, xml)
        }
    }
}

/// Chooses which branch of a union rule to expand next.
///
/// Both branches have fixed budgets from the solution; the totals always work
/// out, but expanding a "terminating" branch too early can strand budget that
/// only a recursive branch could have consumed (e.g. ending a `α*` repetition
/// chain before all required repetitions were produced).  The heuristic
/// prefers, among branches with remaining budget, the one from whose child
/// more still-needed types are reachable in the rule graph; ties go to the
/// second (recursive, in the `α*` encoding) branch.
fn choose_alt_branch(simple: &SimpleDtd, budgets: &Budgets, ty: SimpleId) -> u8 {
    let candidates: Vec<u8> = [2u8, 1u8]
        .into_iter()
        .filter(|&p| budgets.remaining(ty, p) > 0)
        .collect();
    match candidates.len() {
        0 => 2,
        1 => candidates[0],
        _ => {
            let child_of = |p: u8| budgets.slots[&(ty, p)].0;
            let score = |p: u8| {
                let mut seen = vec![false; simple.num_types()];
                let mut stack = vec![child_of(p)];
                let mut needy = 0usize;
                while let Some(t) = stack.pop() {
                    if seen[t.index()] {
                        continue;
                    }
                    seen[t.index()] = true;
                    if budgets.created[t.index()] < budgets.target[t.index()] {
                        needy += 1;
                    }
                    match simple.rule(t) {
                        SimpleRule::Epsilon | SimpleRule::Text => {}
                        SimpleRule::One(a) => stack.push(a),
                        SimpleRule::Seq(a, b) | SimpleRule::Alt(a, b) => {
                            stack.push(a);
                            stack.push(b);
                        }
                    }
                }
                needy
            };
            // candidates = [2, 1]; keep 2 on ties.
            if score(1) > score(2) {
                1
            } else {
                2
            }
        }
    }
}

/// Outcome of [`solve_and_witness`].
#[derive(Debug, Clone)]
pub enum WitnessOutcome {
    /// A tree was synthesized (and the system is therefore consistent).
    Tree(XmlTree),
    /// The system is integer-infeasible — the specification is inconsistent.
    /// This can also be discovered *after* realizability cuts were added, in
    /// which case every solution of the raw paper encoding was a floating
    /// artefact and the cuts sharpened the answer.
    Infeasible,
    /// The search gave up (solver node limit or too many repair rounds).
    Unknown(String),
}

/// Solves the cardinality system and synthesizes a witness tree, adding
/// connectivity ("realizability") cuts and re-solving when a solution's
/// counts cannot be wired into a tree.
///
/// The cut for a floating set `S` of simple types (never containing the
/// root) is the universally valid implication
/// `Σ_{τ∈S} |ext(τ)| > 0  →  Σ incoming occurrences into S > 0`,
/// expressed with two fresh aggregate variables and one conditional
/// constraint.
pub fn solve_and_witness(
    dtd: &Dtd,
    sigma: &ConstraintSet,
    system: &CardinalitySystem,
    solver: &xic_ilp::IlpSolver,
    max_repair_rounds: usize,
) -> WitnessOutcome {
    let mut working = system.clone();
    for _round in 0..=max_repair_rounds {
        let outcome = solver.solve(working.program());
        let assignment = match outcome {
            xic_ilp::SolveOutcome::Infeasible => return WitnessOutcome::Infeasible,
            xic_ilp::SolveOutcome::Unknown(reason) => return WitnessOutcome::Unknown(reason),
            xic_ilp::SolveOutcome::Feasible(a) => a,
        };
        // The assignment covers the original variables even after cuts added
        // fresh aggregate variables (cuts only append).
        match synthesize(dtd, sigma, &working, &assignment) {
            Ok(tree) => return WitnessOutcome::Tree(tree),
            Err(WitnessError::NotRealizable { floating_types }) => {
                // The expansion's mismatch set over-approximates: it can
                // include a type that is only short-changed by the greedy
                // expansion (e.g. an ε-type with one instance inside the
                // floating component and another, connected one elsewhere).
                // Such a type has positive-count occurrences entering the
                // set from connected territory, so a cut over the mismatch
                // set is already satisfied by this very solution and the
                // loop would re-find it forever.  Cut over the genuinely
                // disconnected types instead.
                let genuine = floating_components(&working, &assignment);
                if genuine.is_empty() {
                    return WitnessOutcome::Unknown(format!(
                        "count vector is connected but expansion failed to realize it \
                         (mismatched types: {})",
                        floating_types
                            .iter()
                            .map(|&ty| working.simple().name(ty).to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
                add_connectivity_cut(&mut working, &genuine);
            }
            Err(other) => return WitnessOutcome::Unknown(other.to_string()),
        }
    }
    WitnessOutcome::Unknown(format!(
        "witness synthesis did not converge after {max_repair_rounds} realizability cuts"
    ))
}

/// The simple types whose counts a solution populates without connecting
/// them to the root.
///
/// The cardinality system constrains counts only, so a solution may populate
/// a recursive component of the DTD without any occurrence edge linking it to
/// the root ("floating cycle").  A count vector is realizable as a tree
/// exactly when every positive type is reachable from the root along
/// occurrence edges with positive count — this is the same connectivity
/// condition that characterizes Parikh images of context-free grammars.  The
/// returned list is empty iff the solution is realizable.
pub fn floating_components(system: &CardinalitySystem, assignment: &Assignment) -> Vec<SimpleId> {
    let simple = system.simple();
    let positive = |ty: SimpleId| {
        assignment
            .get_u64(system.ext_var_simple(ty))
            .map(|v| v > 0)
            .unwrap_or(true)
    };
    let mut reached = vec![false; simple.num_types()];
    reached[simple.root().index()] = true;
    let mut stack = vec![simple.root()];
    while let Some(ty) = stack.pop() {
        for occ in system.occurrences() {
            if occ.parent != ty || reached[occ.child.index()] {
                continue;
            }
            let used = assignment.get_u64(occ.var).map(|v| v > 0).unwrap_or(true);
            if used {
                reached[occ.child.index()] = true;
                stack.push(occ.child);
            }
        }
    }
    simple
        .types()
        .filter(|&ty| positive(ty) && !reached[ty.index()])
        .collect()
}

/// Outcome of [`solve_counts`].
#[derive(Debug, Clone)]
pub enum CountsOutcome {
    /// A count vector that is realizable as an XML tree was found.
    Realizable(Assignment),
    /// The system (with connectivity cuts) has no non-negative integer
    /// solution — the specification is inconsistent.
    Infeasible,
    /// The search gave up (solver node limit or too many repair rounds).
    Unknown(String),
}

/// Solves the cardinality system for a *realizable* count vector without
/// building a witness document.
///
/// This is the sound counterpart of raw ILP feasibility: the paper's system
/// Ψ(D,Σ) admits spurious "floating cycle" solutions on recursive DTDs (see
/// [`floating_components`]), so feasibility of the raw system alone is not
/// sufficient for consistency.  Like [`solve_and_witness`], this routine adds
/// connectivity cuts and re-solves until the solution is realizable, the
/// system becomes infeasible, or the repair budget runs out.
pub fn solve_counts(
    system: &CardinalitySystem,
    solver: &xic_ilp::IlpSolver,
    max_repair_rounds: usize,
) -> (CountsOutcome, xic_ilp::SolveStats) {
    let mut working = system.clone();
    let mut total = xic_ilp::SolveStats::default();
    for _round in 0..=max_repair_rounds {
        let (outcome, stats) = solver.solve_with_stats(working.program());
        total.nodes += stats.nodes;
        total.lp_calls += stats.lp_calls;
        total.pruned_infeasible += stats.pruned_infeasible;
        let assignment = match outcome {
            xic_ilp::SolveOutcome::Infeasible => return (CountsOutcome::Infeasible, total),
            xic_ilp::SolveOutcome::Unknown(reason) => {
                return (CountsOutcome::Unknown(reason), total)
            }
            xic_ilp::SolveOutcome::Feasible(a) => a,
        };
        let floating = floating_components(&working, &assignment);
        if floating.is_empty() {
            return (CountsOutcome::Realizable(assignment), total);
        }
        add_connectivity_cut(&mut working, &floating);
    }
    (
        CountsOutcome::Unknown(format!(
            "consistency check did not converge after {max_repair_rounds} connectivity cuts"
        )),
        total,
    )
}

/// Adds the connectivity cut for a floating set of simple types.
fn add_connectivity_cut(system: &mut CardinalitySystem, floating: &[SimpleId]) {
    use xic_ilp::{LinExpr, Rational};
    let in_set = |ty: SimpleId| floating.contains(&ty);
    // Incoming occurrences: child in S, parent outside S.
    let incoming: Vec<_> = system
        .occurrences()
        .iter()
        .filter(|occ| in_set(occ.child) && !in_set(occ.parent))
        .map(|occ| occ.var)
        .collect();
    let ext_vars: Vec<_> = floating
        .iter()
        .map(|&ty| system.ext_var_simple(ty))
        .collect();
    let label: String = floating
        .iter()
        .map(|&ty| system.simple().name(ty).to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let program = system.program_mut();
    let total = program.add_var(format!("cut_total({label})"));
    let mut total_expr = LinExpr::var(total);
    for v in &ext_vars {
        total_expr.add_term(*v, -Rational::one());
    }
    program.add_eq(
        total_expr,
        Rational::zero(),
        format!("cut: total of {{{label}}}"),
    );
    let entering = program.add_var(format!("cut_incoming({label})"));
    let mut incoming_expr = LinExpr::var(entering);
    for v in &incoming {
        incoming_expr.add_term(*v, -Rational::one());
    }
    program.add_eq(
        incoming_expr,
        Rational::zero(),
        format!("cut: occurrences entering {{{label}}}"),
    );
    program.add_conditional(
        total,
        entering,
        format!("connectivity: a populated {{{label}}} must be entered from outside"),
    );
}

/// Chooses attribute values so that every constraint in Σ holds.
fn assign_attribute_values(
    dtd: &Dtd,
    sigma: &ConstraintSet,
    system: &CardinalitySystem,
    assignment: &Assignment,
    tree: &mut XmlTree,
) -> Result<(), WitnessError> {
    // Value sets for slots participating in the set-atom encoding
    // (Theorem 5.1): the atoms partition a universe of fresh values and each
    // slot's value set is the union of the atoms containing it.
    let mut atom_values: HashMap<(ElemId, AttrId), Vec<String>> = HashMap::new();
    for (i, &(ty, attr)) in system.atom_slots().iter().enumerate() {
        let mut values = Vec::new();
        for &(mask, var) in system.atom_vars() {
            if mask & (1 << i) == 0 {
                continue;
            }
            let z = assignment
                .get_u64(var)
                .ok_or_else(|| WitnessError::CountOverflow(format!("atom {mask:b}")))?;
            for k in 0..z {
                values.push(format!("set{mask}_{k}"));
            }
        }
        atom_values.insert((ty, attr), values);
    }

    // `sigma` is only consulted through the cardinality system (keys force
    // |ext(τ.l)| = |ext(τ)|, which the prefix scheme below turns into
    // injectivity), so the parameter is kept for future diagnostics.
    let _ = sigma;

    for ty in dtd.types() {
        let nodes: Vec<_> = tree.ext(ty).collect();
        if nodes.is_empty() {
            continue;
        }
        for &attr in dtd.attrs_of(ty) {
            let Some(attr_var) = system.attr_var(ty, attr) else {
                continue;
            };
            let distinct = assignment.get_u64(attr_var).ok_or_else(|| {
                WitnessError::CountOverflow(format!(
                    "|ext({}.{})|",
                    dtd.type_name(ty),
                    dtd.attr_name(attr)
                ))
            })? as usize;
            // Slots in the atom encoding draw from their set-representation
            // values; all other slots draw from a shared prefix-nested pool
            // v0, v1, … so that |ext(τ1.l1)| ≤ |ext(τ2.l2)| implies set
            // inclusion of the used values.
            let values: Vec<String> = match atom_values.get(&(ty, attr)) {
                Some(vs) if !vs.is_empty() => vs.clone(),
                Some(_) => vec!["v0".to_string()],
                None => (0..distinct.max(1)).map(|k| format!("v{k}")).collect(),
            };
            for (j, &node) in nodes.iter().enumerate() {
                let idx = j.min(values.len() - 1);
                tree.set_attr(node, attr, &values[idx]);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemOptions;
    use xic_constraints::{check_document, Constraint};
    use xic_dtd::{example_d1, example_d3, ContentModel};
    use xic_ilp::IlpSolver;
    use xic_xml::validate;

    fn solve_and_synthesize(dtd: &Dtd, sigma: &ConstraintSet) -> XmlTree {
        let sys = CardinalitySystem::build(dtd, sigma, &SystemOptions::default()).unwrap();
        match solve_and_witness(dtd, sigma, &sys, &IlpSolver::new(), 16) {
            WitnessOutcome::Tree(t) => t,
            other => panic!("expected a witness, got {other:?}"),
        }
    }

    #[test]
    fn witness_for_d1_without_constraints_validates() {
        let d1 = example_d1();
        let sigma = ConstraintSet::new();
        let tree = solve_and_synthesize(&d1, &sigma);
        let errors = validate(&tree, &d1);
        assert!(errors.is_empty(), "{errors:?}");
        // teacher+ means at least one teacher, each with exactly 2 subjects.
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        assert!(tree.ext_count(teacher) >= 1);
        assert_eq!(tree.ext_count(subject), 2 * tree.ext_count(teacher));
    }

    #[test]
    fn witness_satisfies_unary_keys_and_foreign_keys() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        // Σ1 without the subject key (that full set is inconsistent).
        let sigma = ConstraintSet::from_vec(vec![
            Constraint::unary_key(teacher, name),
            Constraint::unary_foreign_key(subject, taught_by, teacher, name),
        ]);
        let tree = solve_and_synthesize(&d1, &sigma);
        assert!(validate(&tree, &d1).is_empty());
        let violations = check_document(&d1, &tree, &sigma);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn witness_with_negated_key_has_a_clash() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let sigma = ConstraintSet::from_vec(vec![Constraint::not_unary_key(teacher, name)]);
        let tree = solve_and_synthesize(&d1, &sigma);
        assert!(validate(&tree, &d1).is_empty());
        let violations = check_document(&d1, &tree, &sigma);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(tree.ext_count(teacher) >= 2);
        assert!(tree.ext_attr(teacher, name).len() < tree.ext_count(teacher));
    }

    #[test]
    fn witness_with_negated_inclusion_has_a_dangling_value() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        let sigma = ConstraintSet::from_vec(vec![Constraint::not_unary_inclusion(
            subject, taught_by, teacher, name,
        )]);
        let tree = solve_and_synthesize(&d1, &sigma);
        assert!(validate(&tree, &d1).is_empty());
        let violations = check_document(&d1, &tree, &sigma);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn witness_for_d3_with_star_children() {
        let d3 = example_d3();
        let sigma = ConstraintSet::new();
        let tree = solve_and_synthesize(&d3, &sigma);
        assert!(validate(&tree, &d3).is_empty());
    }

    #[test]
    fn mixed_positive_and_negative_constraints() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        let sigma = ConstraintSet::from_vec(vec![
            Constraint::unary_key(teacher, name),
            Constraint::unary_inclusion(subject, taught_by, teacher, name),
            Constraint::not_unary_key(subject, taught_by),
        ]);
        let tree = solve_and_synthesize(&d1, &sigma);
        assert!(validate(&tree, &d1).is_empty());
        let violations = check_document(&d1, &tree, &sigma);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn recursive_dtd_witness_is_a_chain() {
        // r → a?, a → a?: with a negated key on a the solution needs at least
        // two a nodes, realised as a chain under the root.
        let mut b = Dtd::builder();
        let r = b.elem("r");
        let a = b.elem("a");
        b.content(r, ContentModel::opt(ContentModel::Element(a)));
        b.content(a, ContentModel::opt(ContentModel::Element(a)));
        let k = b.attr(a, "k");
        let dtd = b.build("r").unwrap();
        let sigma = ConstraintSet::from_vec(vec![Constraint::not_unary_key(a, k)]);
        let tree = solve_and_synthesize(&dtd, &sigma);
        assert!(validate(&tree, &dtd).is_empty());
        assert!(tree.ext_count(a) >= 2);
        let violations = check_document(&dtd, &tree, &sigma);
        assert!(violations.is_empty(), "{violations:?}");
    }
}
