//! The implication problem: does every tree conforming to `D` and satisfying
//! Σ also satisfy φ?
//!
//! The procedures mirror the paper:
//!
//! * keys only — the linear-time test of Theorem 3.5(3)/Lemma 3.7
//!   (subsumption plus the "can the type occur twice" analysis);
//! * unary keys / inclusion constraints / foreign keys — coNP procedures via
//!   consistency of Σ ∪ {¬φ} (Theorem 4.10, Theorem 5.4), returning a
//!   counterexample document when the implication fails;
//! * the general multi-attribute class — undecidable (Corollary 3.4); a sound
//!   subsumption check plus bounded counterexample search is provided.

use xic_constraints::{Constraint, ConstraintClass, ConstraintSet, KeySpec};
use xic_dtd::{analyze, Dtd};
use xic_xml::XmlTree;

use crate::bounded::bounded_search;
use crate::consistency::{CheckerConfig, ConsistencyChecker, ConsistencyOutcome};
use crate::error::SpecError;

/// The verdict of an implication check `(D, Σ) ⊢ φ`.
#[derive(Debug, Clone)]
pub enum ImplicationOutcome {
    /// Every tree conforming to `D` and satisfying Σ satisfies φ.
    Implied {
        /// How the verdict was reached.
        explanation: String,
    },
    /// Some tree conforming to `D` satisfies Σ but not φ.
    NotImplied {
        /// A counterexample document, when the procedure can build one.
        counterexample: Option<XmlTree>,
        /// How the verdict was reached.
        explanation: String,
    },
    /// The procedure could not decide within its resource bounds.
    Unknown {
        /// Why the procedure gave up.
        explanation: String,
    },
}

impl ImplicationOutcome {
    /// `true` iff the verdict is [`ImplicationOutcome::Implied`].
    pub fn is_implied(&self) -> bool {
        matches!(self, ImplicationOutcome::Implied { .. })
    }

    /// `true` iff the verdict is [`ImplicationOutcome::NotImplied`].
    pub fn is_not_implied(&self) -> bool {
        matches!(self, ImplicationOutcome::NotImplied { .. })
    }

    /// The counterexample document, if any.
    pub fn counterexample(&self) -> Option<&XmlTree> {
        match self {
            ImplicationOutcome::NotImplied { counterexample, .. } => counterexample.as_ref(),
            _ => None,
        }
    }

    /// The explanation string.
    pub fn explanation(&self) -> &str {
        match self {
            ImplicationOutcome::Implied { explanation }
            | ImplicationOutcome::NotImplied { explanation, .. }
            | ImplicationOutcome::Unknown { explanation } => explanation,
        }
    }
}

/// The implication checker.
#[derive(Debug, Clone, Default)]
pub struct ImplicationChecker {
    config: CheckerConfig,
}

impl ImplicationChecker {
    /// A checker with default configuration.
    pub fn new() -> ImplicationChecker {
        ImplicationChecker::default()
    }

    /// A checker with an explicit configuration.
    pub fn with_config(config: CheckerConfig) -> ImplicationChecker {
        ImplicationChecker { config }
    }

    /// Decides `(D, Σ) ⊢ φ`, dispatching on the constraint class.
    pub fn implies(
        &self,
        dtd: &Dtd,
        sigma: &ConstraintSet,
        phi: &Constraint,
    ) -> Result<ImplicationOutcome, SpecError> {
        sigma.validate(dtd)?;
        phi.validate(dtd)?;

        // A foreign key is the conjunction of its inclusion and its key:
        // implied iff both components are implied.
        if let Constraint::ForeignKey(i) = phi {
            let key = Constraint::Key(KeySpec::new(i.to_ty, i.to_attrs.clone()));
            let inclusion = Constraint::Inclusion(i.clone());
            let key_result = self.implies(dtd, sigma, &key)?;
            if !key_result.is_implied() {
                return Ok(key_result);
            }
            let inc_result = self.implies(dtd, sigma, &inclusion)?;
            return Ok(match inc_result {
                ImplicationOutcome::Implied { .. } => ImplicationOutcome::Implied {
                    explanation: "both the key component and the inclusion component of the \
                                  foreign key are implied"
                        .to_string(),
                },
                other => other,
            });
        }

        // Keys-only fragment: linear-time procedure (Theorem 3.5(3)).
        let keys_only = sigma.in_class(ConstraintClass::KeysOnly);
        let unary_sigma = sigma.in_class(ConstraintClass::UnaryKeyNegInclusionNeg);
        if keys_only {
            if let Constraint::Key(k) = phi {
                let verdict = self.implies_keys_only(dtd, sigma, k);
                // When the linear-time test says "not implied" and the
                // instance is unary, upgrade the verdict with a concrete
                // counterexample document from the coNP procedure.
                if verdict.is_not_implied() && phi.is_unary() && unary_sigma {
                    if let Some(negated) = phi.negated() {
                        return self.implies_by_negation(dtd, sigma, phi, negated);
                    }
                }
                return Ok(verdict);
            }
        }

        // Unary fragment: coNP procedure via consistency of Σ ∪ {¬φ}.
        if unary_sigma && phi.is_unary() {
            if let Some(negated) = phi.negated() {
                return self.implies_by_negation(dtd, sigma, phi, negated);
            }
        }

        // General class: sound subsumption, then bounded counterexample search.
        Ok(self.implies_general(dtd, sigma, phi))
    }

    /// Lemma 3.7: `(D, Σ) ⊢ τ[X] → τ` iff Σ subsumes the key, or no valid
    /// tree contains two `τ` elements (including the case of an empty DTD).
    fn implies_keys_only(
        &self,
        dtd: &Dtd,
        sigma: &ConstraintSet,
        phi: &KeySpec,
    ) -> ImplicationOutcome {
        if subsumes_key(sigma, phi) {
            return ImplicationOutcome::Implied {
                explanation: "Σ contains a key on the same element type over a subset of the \
                              attributes (φ is a superkey of it)"
                    .to_string(),
            };
        }
        let analysis = analyze(dtd);
        if !analysis.satisfiable() {
            return ImplicationOutcome::Implied {
                explanation: "the DTD admits no valid tree, so every constraint is vacuously \
                              implied"
                    .to_string(),
            };
        }
        if !analysis.can_occur_twice(phi.ty) {
            return ImplicationOutcome::Implied {
                explanation: format!(
                    "no valid tree contains two `{}` elements, so the key can never be violated",
                    dtd.type_name(phi.ty)
                ),
            };
        }
        ImplicationOutcome::NotImplied {
            counterexample: None,
            explanation: format!(
                "Σ does not subsume the key and some valid tree contains two `{}` elements \
                 which can be given identical attribute values (Lemma 3.7)",
                dtd.type_name(phi.ty)
            ),
        }
    }

    /// `(D, Σ) ⊢ φ` iff Σ ∪ {¬φ} is inconsistent over `D` (Theorem 4.10 /
    /// Theorem 5.4).
    fn implies_by_negation(
        &self,
        dtd: &Dtd,
        sigma: &ConstraintSet,
        phi: &Constraint,
        negated: Constraint,
    ) -> Result<ImplicationOutcome, SpecError> {
        let extended = sigma.with(negated);
        let checker = ConsistencyChecker::with_config(self.config.clone());
        Ok(match checker.check_unary(dtd, &extended)? {
            ConsistencyOutcome::Inconsistent { .. } => ImplicationOutcome::Implied {
                explanation: format!(
                    "Σ ∪ {{¬({})}} is inconsistent over the DTD, so the constraint is implied",
                    phi.render(dtd)
                ),
            },
            ConsistencyOutcome::Consistent { witness, .. } => ImplicationOutcome::NotImplied {
                counterexample: witness,
                explanation: format!(
                    "a document conforming to the DTD satisfies Σ but violates {}",
                    phi.render(dtd)
                ),
            },
            ConsistencyOutcome::Unknown { explanation } => {
                ImplicationOutcome::Unknown { explanation }
            }
        })
    }

    /// General class: structural subsumption is sound; otherwise search for a
    /// bounded counterexample satisfying Σ ∪ {¬φ}.
    fn implies_general(
        &self,
        dtd: &Dtd,
        sigma: &ConstraintSet,
        phi: &Constraint,
    ) -> ImplicationOutcome {
        if let Constraint::Key(k) = phi {
            if subsumes_key(sigma, k) {
                return ImplicationOutcome::Implied {
                    explanation: "Σ contains a key over a subset of φ's attributes".to_string(),
                };
            }
        }
        if sigma.iter().any(|c| c == phi) {
            return ImplicationOutcome::Implied {
                explanation: "φ is a member of Σ".to_string(),
            };
        }
        if !analyze(dtd).satisfiable() {
            return ImplicationOutcome::Implied {
                explanation: "the DTD admits no valid tree, so every constraint is vacuously \
                              implied"
                    .to_string(),
            };
        }
        let Some(negated) = phi.negated() else {
            return ImplicationOutcome::Unknown {
                explanation: "implication of composite constraints in the general class is \
                              undecidable (Corollary 3.4) and no special case applied"
                    .to_string(),
            };
        };
        match bounded_search(dtd, &sigma.with(negated), &self.config.bounded) {
            Some(tree) => ImplicationOutcome::NotImplied {
                counterexample: Some(tree),
                explanation: format!(
                    "bounded search found a document satisfying Σ but violating {}",
                    phi.render(dtd)
                ),
            },
            None => ImplicationOutcome::Unknown {
                explanation: "implication for multi-attribute keys and foreign keys is \
                              undecidable (Corollary 3.4); no counterexample was found within \
                              the search budget"
                    .to_string(),
            },
        }
    }
}

/// Whether Σ contains a key on `phi.ty` whose attribute set is a subset of
/// `phi`'s (so `phi` is a superkey of a known key).  Keys demanded by foreign
/// keys count.
fn subsumes_key(sigma: &ConstraintSet, phi: &KeySpec) -> bool {
    sigma
        .all_keys()
        .iter()
        .any(|k| k.ty == phi.ty && k.attrs.iter().all(|a| phi.attrs.contains(a)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xic_constraints::{example_sigma1, example_sigma3};
    use xic_dtd::{example_d1, example_d3, ContentModel as CM};
    use xic_xml::validate;

    #[test]
    fn keys_only_subsumption() {
        let d3 = example_d3();
        let course = d3.type_by_name("course").unwrap();
        let dept = d3.attr_by_name("dept").unwrap();
        let course_no = d3.attr_by_name("course_no").unwrap();
        let sigma = ConstraintSet::from_vec(vec![Constraint::key(course, vec![dept])]);
        // dept → course implies (dept, course_no) → course.
        let phi = Constraint::key(course, vec![dept, course_no]);
        let outcome = ImplicationChecker::new()
            .implies(&d3, &sigma, &phi)
            .unwrap();
        assert!(outcome.is_implied());
        // The converse does not hold: course can occur twice.
        let phi = Constraint::key(course, vec![dept]);
        let sigma = ConstraintSet::from_vec(vec![Constraint::key(course, vec![dept, course_no])]);
        let outcome = ImplicationChecker::new()
            .implies(&d3, &sigma, &phi)
            .unwrap();
        assert!(outcome.is_not_implied());
    }

    #[test]
    fn keys_only_single_occurrence_types_are_always_keyed() {
        // teachers occurs exactly once in any valid D1 tree, so ANY key on a
        // (hypothetical) attribute of a once-occurring type is implied.  Use
        // teacher with a DTD where teacher appears exactly once.
        let mut b = xic_dtd::Dtd::builder();
        let school = b.elem("school");
        let principal = b.elem("principal");
        b.content(school, CM::Element(principal));
        b.content(principal, CM::Text);
        let pid = b.attr(principal, "id");
        let dtd = b.build("school").unwrap();
        let phi = Constraint::unary_key(principal, pid);
        let outcome = ImplicationChecker::new()
            .implies(&dtd, &ConstraintSet::new(), &phi)
            .unwrap();
        assert!(outcome.is_implied(), "{}", outcome.explanation());
    }

    #[test]
    fn unary_implication_from_the_teachers_example() {
        // Σ1 over D1 is inconsistent, hence it implies everything — a classic
        // degenerate case worth pinning down.
        let d1 = example_d1();
        let sigma1 = example_sigma1(&d1);
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        let phi = Constraint::unary_inclusion(teacher, name, subject, taught_by);
        let outcome = ImplicationChecker::new()
            .implies(&d1, &sigma1, &phi)
            .unwrap();
        assert!(outcome.is_implied());
    }

    #[test]
    fn unary_non_implication_produces_counterexample() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        // From just the teacher key, the subject key does not follow.
        let sigma = ConstraintSet::from_vec(vec![Constraint::unary_key(teacher, name)]);
        let phi = Constraint::unary_key(subject, taught_by);
        let outcome = ImplicationChecker::new()
            .implies(&d1, &sigma, &phi)
            .unwrap();
        let counterexample = outcome.counterexample().expect("counterexample document");
        assert!(validate(counterexample, &d1).is_empty());
        assert!(xic_constraints::document_satisfies(
            &d1,
            counterexample,
            &sigma
        ));
        assert!(!xic_constraints::document_satisfies(
            &d1,
            counterexample,
            &ConstraintSet::from_vec(vec![phi])
        ));
    }

    #[test]
    fn dtd_forced_inclusion_is_implied() {
        // In D1, every teacher teaches two subjects, so with the foreign key
        // subject.taught_by ⊆ teacher.name and the teacher key, the inclusion
        // teacher.name ⊆ subject.taught_by is NOT implied (a teacher may
        // teach subjects taught_by someone else)… but with only one teacher
        // possible it is.  Keep the decidable sanity case: an inclusion is
        // implied when it is a member of Σ.
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        let inc = Constraint::unary_inclusion(subject, taught_by, teacher, name);
        let sigma = ConstraintSet::from_vec(vec![inc.clone()]);
        let outcome = ImplicationChecker::new()
            .implies(&d1, &sigma, &inc)
            .unwrap();
        assert!(outcome.is_implied(), "{}", outcome.explanation());
    }

    #[test]
    fn unary_foreign_key_implication_splits_into_components() {
        let d1 = example_d1();
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        let fk = Constraint::unary_foreign_key(subject, taught_by, teacher, name);
        // Σ containing both components implies the foreign key.
        let sigma = ConstraintSet::from_vec(vec![
            Constraint::unary_key(teacher, name),
            Constraint::unary_inclusion(subject, taught_by, teacher, name),
        ]);
        let outcome = ImplicationChecker::new().implies(&d1, &sigma, &fk).unwrap();
        assert!(outcome.is_implied(), "{}", outcome.explanation());
        // Σ with only the inclusion does not imply it (the key part fails).
        let sigma = ConstraintSet::from_vec(vec![Constraint::unary_inclusion(
            subject, taught_by, teacher, name,
        )]);
        let outcome = ImplicationChecker::new().implies(&d1, &sigma, &fk).unwrap();
        assert!(outcome.is_not_implied(), "{}", outcome.explanation());
    }

    #[test]
    fn general_class_counterexample_search() {
        let d3 = example_d3();
        let sigma3 = example_sigma3(&d3);
        let enroll = d3.type_by_name("enroll").unwrap();
        let student_id = d3.attr_by_name("student_id").unwrap();
        // The school constraints do not imply that student_id alone is a key
        // of enroll (a student may enrol in two courses).
        let phi = Constraint::key(enroll, vec![student_id]);
        let outcome = ImplicationChecker::new()
            .implies(&d3, &sigma3, &phi)
            .unwrap();
        match outcome {
            ImplicationOutcome::NotImplied { counterexample, .. } => {
                if let Some(t) = counterexample {
                    assert!(validate(&t, &d3).is_empty());
                }
            }
            // The bounded search may fail to find the counterexample; Unknown
            // is an acceptable (sound) answer, but Implied would be a bug.
            ImplicationOutcome::Unknown { .. } => {}
            ImplicationOutcome::Implied { explanation } => {
                panic!("wrongly implied: {explanation}")
            }
        }
    }

    #[test]
    fn member_of_sigma_is_implied_in_general_class() {
        let d3 = example_d3();
        let sigma3 = example_sigma3(&d3);
        let phi = sigma3.iter().next().unwrap().clone();
        let outcome = ImplicationChecker::new()
            .implies(&d3, &sigma3, &phi)
            .unwrap();
        assert!(outcome.is_implied());
    }
}
