//! Executable versions of the paper's reductions.
//!
//! * [`lip_to_spec`] — Theorem 4.7: a 0/1 linear system `A·x = 1` becomes a
//!   DTD plus unary keys and foreign keys that are consistent iff the system
//!   has a binary solution.  This is both the NP-hardness proof and, for this
//!   library, a generator of *hard* consistency instances for the benchmark
//!   harness.
//! * [`relational_to_spec`] — Theorem 3.1: an instance of "relational key
//!   implied by keys and foreign keys" becomes an XML specification whose
//!   consistency is equivalent to the *complement* of the implication — the
//!   bridge that makes XML consistency undecidable.
//! * [`consistency_to_implication`] — Lemma 3.3: any consistency instance
//!   becomes two implication instances over a slightly extended DTD, showing
//!   implication is as hard as consistency.

use xic_constraints::{Constraint, ConstraintSet};
use xic_dtd::{ContentModel, Dtd, ElemId};
use xic_relational::{RelConstraint, RelSchema};
use xic_xml::XmlTree;

/// A consistency instance produced by the Theorem 4.7 reduction, together
/// with enough bookkeeping to decode a witness document back into a 0/1
/// solution vector.
#[derive(Debug, Clone)]
pub struct LipSpec {
    /// The generated DTD.
    pub dtd: Dtd,
    /// The generated unary keys and foreign keys.
    pub sigma: ConstraintSet,
    /// For each column `j`, the element types `X_ij` (one per row with
    /// `a_ij = 1`) whose expansion encodes `x_j = 1`.
    pub column_cells: Vec<Vec<ElemId>>,
}

impl LipSpec {
    /// Decodes a witness document into the binary vector it encodes:
    /// `x_j = 1` iff some `X_ij` element has a `Z_ij` child.
    pub fn decode(&self, tree: &XmlTree) -> Vec<bool> {
        self.column_cells
            .iter()
            .map(|cells| {
                cells
                    .iter()
                    .any(|&cell| tree.ext(cell).any(|node| !tree.children(node).is_empty()))
            })
            .collect()
    }
}

/// Theorem 4.7: encodes the 0/1 system `A·x = 1` (each row must pick exactly
/// one column with `a_ij = 1` and `x_j = 1`) as an XML specification with
/// unary keys and foreign keys.
///
/// # Panics
/// Panics if `matrix` is empty or ragged.
pub fn lip_to_spec(matrix: &[Vec<bool>]) -> LipSpec {
    assert!(
        !matrix.is_empty(),
        "the LIP reduction needs at least one row"
    );
    let cols = matrix[0].len();
    assert!(matrix.iter().all(|r| r.len() == cols), "ragged matrix");
    let rows = matrix.len();

    let mut b = Dtd::builder();
    let root = b.elem("r");
    let mut f_types = Vec::with_capacity(rows);
    let mut b_types = Vec::with_capacity(rows);
    let mut vf_types = Vec::with_capacity(rows);
    for i in 0..rows {
        f_types.push(b.elem(&format!("F{i}")));
        b_types.push(b.elem(&format!("b{i}")));
        vf_types.push(b.elem(&format!("VF{i}")));
    }
    let mut cell_types: Vec<Vec<Option<(ElemId, ElemId)>>> = vec![vec![None; cols]; rows];
    let mut column_cells: Vec<Vec<ElemId>> = vec![Vec::new(); cols];
    for (i, row) in matrix.iter().enumerate() {
        for (j, &one) in row.iter().enumerate() {
            if one {
                let x = b.elem(&format!("X{i}_{j}"));
                let z = b.elem(&format!("Z{i}_{j}"));
                cell_types[i][j] = Some((x, z));
                column_cells[j].push(x);
            }
        }
    }

    // P(r) = F_1, …, F_m, b_1, …, b_m.
    let mut root_children: Vec<ContentModel> =
        f_types.iter().map(|&t| ContentModel::Element(t)).collect();
    root_children.extend(b_types.iter().map(|&t| ContentModel::Element(t)));
    b.content(root, ContentModel::seq_all(root_children));

    for i in 0..rows {
        // P(F_i) = the X_ij with a_ij = 1, in column order.
        let cells: Vec<ContentModel> = (0..cols)
            .filter_map(|j| cell_types[i][j].map(|(x, _)| ContentModel::Element(x)))
            .collect();
        b.content(f_types[i], ContentModel::seq_all(cells));
        b.content(b_types[i], ContentModel::Epsilon);
        b.content(vf_types[i], ContentModel::Epsilon);
        for cell in cell_types[i].iter().take(cols) {
            if let Some((x, z)) = *cell {
                // P(X_ij) = Z_ij | ε ; P(Z_ij) = VF_i.
                b.content(
                    x,
                    ContentModel::alt(ContentModel::Element(z), ContentModel::Epsilon),
                );
                b.content(z, ContentModel::Element(vf_types[i]));
            }
        }
    }

    // Attributes.
    let mut v_attrs = Vec::with_capacity(rows);
    for i in 0..rows {
        let v = b.attr(vf_types[i], "v");
        b.attr(b_types[i], "v");
        v_attrs.push(v);
    }
    let mut cell_attrs: Vec<Vec<Option<xic_dtd::AttrId>>> = vec![vec![None; cols]; rows];
    for i in 0..rows {
        for j in 0..cols {
            if let Some((_, z)) = cell_types[i][j] {
                cell_attrs[i][j] = Some(b.attr(z, &format!("A{i}_{j}")));
            }
        }
    }
    let dtd = b.build("r").expect("the reduction DTD is well-formed");

    // Constraints.
    let mut sigma = ConstraintSet::new();
    for i in 0..rows {
        let v = v_attrs[i];
        // VF_i.v → VF_i, b_i.v → b_i and the two foreign keys forcing
        // |ext(VF_i)| = |ext(b_i)| = 1.
        sigma.push(Constraint::unary_key(vf_types[i], v));
        sigma.push(Constraint::unary_key(b_types[i], v));
        sigma.push(Constraint::unary_foreign_key(vf_types[i], v, b_types[i], v));
        sigma.push(Constraint::unary_foreign_key(b_types[i], v, vf_types[i], v));
    }
    // All occurrences of x_j take the same value: Z_ij.A_ij keys plus
    // pairwise foreign keys along each column.
    for j in 0..cols {
        let rows_with_one: Vec<usize> = (0..rows).filter(|&i| matrix[i][j]).collect();
        for &i in &rows_with_one {
            let (_, z_i) = cell_types[i][j].expect("cell exists");
            let a_i = cell_attrs[i][j].expect("attr exists");
            sigma.push(Constraint::unary_key(z_i, a_i));
            for &l in &rows_with_one {
                if l == i {
                    continue;
                }
                let (_, z_l) = cell_types[l][j].expect("cell exists");
                let a_l = cell_attrs[l][j].expect("attr exists");
                sigma.push(Constraint::unary_foreign_key(z_i, a_i, z_l, a_l));
            }
        }
    }

    LipSpec {
        dtd,
        sigma,
        column_cells,
    }
}

/// A specification produced by the Theorem 3.1 reduction.
#[derive(Debug, Clone)]
pub struct RelationalSpec {
    /// The generated DTD.
    pub dtd: Dtd,
    /// The generated (multi-attribute) keys and foreign keys.
    pub sigma: ConstraintSet,
    /// The tuple element type `t_i` for each relation of the input schema.
    pub tuple_types: Vec<ElemId>,
}

/// Theorem 3.1: encodes the instance "does Σ imply the key `target_rel[X] →
/// target_rel`?" over a relational schema as an XML specification that is
/// consistent iff the implication does **not** hold.
///
/// # Panics
/// Panics if Σ contains constraints other than keys and foreign keys, or if
/// the key attributes are not attributes of `target_rel`.
pub fn relational_to_spec(
    schema: &RelSchema,
    sigma: &[RelConstraint],
    target_rel: xic_relational::RelId,
    key_attrs: &[String],
) -> RelationalSpec {
    let mut b = Dtd::builder();
    let root = b.elem("r");
    let dy = b.elem("D_Y");
    let ex = b.elem("E_X");

    // Relation containers and tuple types.
    let mut rel_types = Vec::new();
    let mut tuple_types = Vec::new();
    for rel in schema.relations() {
        let name = &schema.relation(rel).name;
        let container = b.elem(name);
        let tuple = b.elem(&format!("{name}_tuple"));
        b.content(container, ContentModel::star(ContentModel::Element(tuple)));
        b.content(tuple, ContentModel::Epsilon);
        for attr in &schema.relation(rel).attrs {
            b.attr(tuple, attr);
        }
        rel_types.push(container);
        tuple_types.push(tuple);
    }
    // P(r) = R_1, …, R_n, D_Y, D_Y, E_X.
    let mut root_children: Vec<ContentModel> = rel_types
        .iter()
        .map(|&t| ContentModel::Element(t))
        .collect();
    root_children.push(ContentModel::Element(dy));
    root_children.push(ContentModel::Element(dy));
    root_children.push(ContentModel::Element(ex));
    b.content(root, ContentModel::seq_all(root_children));
    b.content(dy, ContentModel::Epsilon);
    b.content(ex, ContentModel::Epsilon);

    // D_Y carries all attributes of the target relation; E_X carries X.
    let target = schema.relation(target_rel);
    assert!(
        key_attrs.len() < target.attrs.len(),
        "Theorem 3.1 takes a candidate key over a proper subset of the target relation's \
         attributes: with X = Att(R) the key is trivially implied and there is nothing to encode"
    );
    for attr in &target.attrs {
        b.attr(dy, attr);
    }
    for attr in key_attrs {
        assert!(
            target.attr_pos(attr).is_some(),
            "`{attr}` is not an attribute of the target relation"
        );
        b.attr(ex, attr);
    }
    let dtd = b.build("r").expect("the reduction DTD is well-formed");

    let attr_ids = |_ty: ElemId, names: &[String]| -> Vec<xic_dtd::AttrId> {
        names
            .iter()
            .map(|n| dtd.attr_by_name(n).expect("attribute interned"))
            .collect()
    };

    let mut out = ConstraintSet::new();
    // Σ_Θ: every relational key/foreign key transfers to the tuple types.
    for c in sigma {
        match c {
            RelConstraint::Key { rel, attrs } => {
                out.push(Constraint::key(
                    tuple_types[rel.index()],
                    attr_ids(tuple_types[rel.index()], attrs),
                ));
            }
            RelConstraint::ForeignKey {
                rel,
                attrs,
                target,
                target_attrs,
            } => {
                out.push(Constraint::foreign_key(
                    tuple_types[rel.index()],
                    attr_ids(tuple_types[rel.index()], attrs),
                    tuple_types[target.index()],
                    attr_ids(tuple_types[target.index()], target_attrs),
                ));
            }
            other => panic!("Theorem 3.1 takes keys and foreign keys only, got {other:?}"),
        }
    }
    // Σ_φ: the gadget forcing two D_Y nodes that agree on X and disagree on Y.
    let x_ids = attr_ids(dy, key_attrs);
    let y_names: Vec<String> = target
        .attrs
        .iter()
        .filter(|a| !key_attrs.contains(a))
        .cloned()
        .collect();
    let y_ids = attr_ids(dy, &y_names);
    let all_names: Vec<String> = target.attrs.clone();
    let all_ids = attr_ids(dy, &all_names);
    let target_tuple = tuple_types[target_rel.index()];
    let target_all_ids = attr_ids(target_tuple, &all_names);
    if !y_ids.is_empty() {
        out.push(Constraint::key(dy, y_ids));
    }
    out.push(Constraint::key(ex, x_ids.clone()));
    out.push(Constraint::foreign_key(dy, x_ids.clone(), ex, x_ids));
    out.push(Constraint::foreign_key(
        dy,
        all_ids,
        target_tuple,
        target_all_ids.clone(),
    ));
    out.push(Constraint::key(target_tuple, target_all_ids));

    RelationalSpec {
        dtd,
        sigma: out,
        tuple_types,
    }
}

/// The output of the Lemma 3.3 reduction: consistency of `(D, Σ)` holds iff
/// `(D', Σ ∪ {aux_key, inclusion}) ⊬ target_key`, and also iff
/// `(D', Σ ∪ {aux_key, target_key}) ⊬ inclusion`.
#[derive(Debug, Clone)]
pub struct ImplicationReduction {
    /// The extended DTD `D'` (two `D_Y` children and one `E_X` child with a
    /// fresh attribute `K` appended to the root's content model).
    pub dtd: Dtd,
    /// The auxiliary key `E_X.K → E_X` (the `ℓ` of the lemma).
    pub aux_key: Constraint,
    /// The unary key `D_Y.K → D_Y` (the `φ1` of the lemma).
    pub target_key: Constraint,
    /// The unary inclusion `D_Y.K ⊆ E_X.K` (the `φ2` of the lemma).
    pub inclusion: Constraint,
}

/// Lemma 3.3: reduces consistency of `(dtd, _)` to the complement of unary
/// key / unary inclusion implication over an extended DTD.  The input Σ is
/// unchanged (it is simply interpreted over the extended DTD).
pub fn consistency_to_implication(dtd: &Dtd) -> ImplicationReduction {
    let mut b = Dtd::builder();
    // Recreate the original DTD under the builder.
    let mut old_to_new = Vec::with_capacity(dtd.num_types());
    for ty in dtd.types() {
        old_to_new.push(b.elem(dtd.type_name(ty)));
    }
    let translate = |cm: &ContentModel| -> ContentModel {
        fn go(cm: &ContentModel, map: &[ElemId]) -> ContentModel {
            match cm {
                ContentModel::Epsilon => ContentModel::Epsilon,
                ContentModel::Text => ContentModel::Text,
                ContentModel::Element(e) => ContentModel::Element(map[e.index()]),
                ContentModel::Seq(a, b) => ContentModel::seq(go(a, map), go(b, map)),
                ContentModel::Alt(a, b) => ContentModel::alt(go(a, map), go(b, map)),
                ContentModel::Star(a) => ContentModel::star(go(a, map)),
                ContentModel::Plus(a) => ContentModel::plus(go(a, map)),
                ContentModel::Opt(a) => ContentModel::opt(go(a, map)),
            }
        }
        go(cm, &old_to_new)
    };
    let dy = b.elem("D_Y");
    let ex = b.elem("E_X");
    for ty in dtd.types() {
        let new_ty = old_to_new[ty.index()];
        if ty == dtd.root() {
            // P'(r) = P(r), D_Y, D_Y, E_X.
            let extended = ContentModel::seq_all([
                translate(dtd.content(ty)),
                ContentModel::Element(dy),
                ContentModel::Element(dy),
                ContentModel::Element(ex),
            ]);
            b.content(new_ty, extended);
        } else {
            b.content(new_ty, translate(dtd.content(ty)));
        }
        for &attr in dtd.attrs_of(ty) {
            b.attr(new_ty, dtd.attr_name(attr));
        }
    }
    b.content(dy, ContentModel::Epsilon);
    b.content(ex, ContentModel::Epsilon);
    let k_dy = b.attr(dy, "K");
    let k_ex = b.attr(ex, "K");
    let extended = b
        .build(dtd.type_name(dtd.root()))
        .expect("extended DTD is well-formed");

    ImplicationReduction {
        aux_key: Constraint::unary_key(ex, k_ex),
        target_key: Constraint::unary_key(dy, k_dy),
        inclusion: Constraint::unary_inclusion(dy, k_dy, ex, k_ex),
        dtd: extended,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::ConsistencyChecker;
    use crate::implication::ImplicationChecker;
    use xic_constraints::example_sigma1;
    use xic_dtd::example_d1;
    use xic_xml::validate;

    #[test]
    fn lip_reduction_feasible_instance() {
        // x0 + x1 = 1, x1 + x2 = 1: solutions exist (e.g. x0=1, x1=0, x2=1).
        let matrix = vec![vec![true, true, false], vec![false, true, true]];
        let spec = lip_to_spec(&matrix);
        let outcome = ConsistencyChecker::new()
            .check(&spec.dtd, &spec.sigma)
            .unwrap();
        assert!(outcome.is_consistent(), "{}", outcome.explanation());
        if let Some(witness) = outcome.witness() {
            assert!(validate(witness, &spec.dtd).is_empty());
            let x = spec.decode(witness);
            // Verify the decoded vector solves A·x = 1.
            for row in &matrix {
                let sum: usize = row.iter().zip(&x).filter(|(a, b)| **a && **b).count();
                assert_eq!(sum, 1, "decoded vector {x:?} does not solve the system");
            }
        }
    }

    #[test]
    fn lip_reduction_infeasible_instance() {
        // x0 = 1 and x0 + x0 = 1 cannot both hold… encode an actually
        // unsolvable system: row1 = {x0}, row2 = {x0, x1}, row3 = {x1}.
        // row1 forces x0=1, row3 forces x1=1, row2 then sums to 2.
        let matrix = vec![vec![true, false], vec![true, true], vec![false, true]];
        let spec = lip_to_spec(&matrix);
        let outcome = ConsistencyChecker::new()
            .check(&spec.dtd, &spec.sigma)
            .unwrap();
        assert!(outcome.is_inconsistent(), "{}", outcome.explanation());
    }

    #[test]
    fn relational_reduction_tracks_implication() {
        // Schema R(a, b) with Σ = { R[a] → R }.  The key R[a] → R is
        // trivially implied (it is a member of Σ), so the reduction must not
        // be consistent (inconsistent, or undetermined given undecidability).
        let mut schema = RelSchema::new();
        let r = schema.add_relation("R", &["a", "b"]);
        let sigma = vec![RelConstraint::key(r, &["a"])];
        let spec = relational_to_spec(&schema, &sigma, r, &["a".to_string()]);
        let outcome = ConsistencyChecker::new()
            .check(&spec.dtd, &spec.sigma)
            .unwrap();
        assert!(
            !outcome.is_consistent(),
            "implied key must give an inconsistent (or undetermined) spec, got consistent: {}",
            outcome.explanation()
        );

        // Conversely Σ = {} does not imply R[a] → R, so the spec is
        // consistent (two tuples agreeing on a but differing on b exist).
        // The general class is undecidable, so the checker is allowed to
        // answer Unknown; it must never answer Inconsistent, and any witness
        // it does find must be genuine.
        let spec = relational_to_spec(&schema, &[], r, &["a".to_string()]);
        let outcome = ConsistencyChecker::new()
            .check(&spec.dtd, &spec.sigma)
            .unwrap();
        assert!(!outcome.is_inconsistent(), "{}", outcome.explanation());
        if let Some(w) = outcome.witness() {
            assert!(validate(w, &spec.dtd).is_empty());
            assert!(xic_constraints::document_satisfies(
                &spec.dtd,
                w,
                &spec.sigma
            ));
        }
    }

    #[test]
    fn lemma_3_3_reduction_round_trip() {
        // D1 with Σ1 is inconsistent, so over the extended DTD the target key
        // IS implied by Σ1 ∪ {aux, inclusion} (vacuously).
        let d1 = example_d1();
        let sigma1 = example_sigma1(&d1);
        let red = consistency_to_implication(&d1);
        let sigma_ext = {
            let mut s = sigma1.clone();
            s.push(red.aux_key.clone());
            s.push(red.inclusion.clone());
            s
        };
        let outcome = ImplicationChecker::new()
            .implies(&red.dtd, &sigma_ext, &red.target_key)
            .unwrap();
        assert!(outcome.is_implied(), "{}", outcome.explanation());

        // Dropping the subject key makes Σ consistent, and then the target
        // key is NOT implied (the two D_Y elements can share a K value).
        let teacher = d1.type_by_name("teacher").unwrap();
        let subject = d1.type_by_name("subject").unwrap();
        let name = d1.attr_by_name("name").unwrap();
        let taught_by = d1.attr_by_name("taught_by").unwrap();
        let consistent_sigma = ConstraintSet::from_vec(vec![
            Constraint::unary_key(teacher, name),
            Constraint::unary_foreign_key(subject, taught_by, teacher, name),
        ]);
        // Names are resolved against the extended DTD by name lookup.
        let ext_teacher = red.dtd.type_by_name("teacher").unwrap();
        let ext_subject = red.dtd.type_by_name("subject").unwrap();
        let ext_name = red.dtd.attr_by_name("name").unwrap();
        let ext_taught_by = red.dtd.attr_by_name("taught_by").unwrap();
        let _ = consistent_sigma;
        let sigma_ext = ConstraintSet::from_vec(vec![
            Constraint::unary_key(ext_teacher, ext_name),
            Constraint::unary_foreign_key(ext_subject, ext_taught_by, ext_teacher, ext_name),
            red.aux_key.clone(),
            red.inclusion.clone(),
        ]);
        let outcome = ImplicationChecker::new()
            .implies(&red.dtd, &sigma_ext, &red.target_key)
            .unwrap();
        assert!(outcome.is_not_implied(), "{}", outcome.explanation());
    }
}
