/root/repo/target/debug/deps/checker_agreement-2a46b5ad9b370965.d: tests/checker_agreement.rs Cargo.toml

/root/repo/target/debug/deps/libchecker_agreement-2a46b5ad9b370965.rmeta: tests/checker_agreement.rs Cargo.toml

tests/checker_agreement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
