/root/repo/target/debug/deps/criterion-7fdd2adea58e4f1e.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-7fdd2adea58e4f1e.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
