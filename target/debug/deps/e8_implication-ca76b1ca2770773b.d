/root/repo/target/debug/deps/e8_implication-ca76b1ca2770773b.d: crates/bench/benches/e8_implication.rs Cargo.toml

/root/repo/target/debug/deps/libe8_implication-ca76b1ca2770773b.rmeta: crates/bench/benches/e8_implication.rs Cargo.toml

crates/bench/benches/e8_implication.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
