/root/repo/target/debug/deps/engine-2300be05f9152eeb.d: crates/engine/tests/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-2300be05f9152eeb.rmeta: crates/engine/tests/engine.rs Cargo.toml

crates/engine/tests/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
