/root/repo/target/debug/deps/proptest-2db269f98ede54f3.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-2db269f98ede54f3.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-2db269f98ede54f3.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
