/root/repo/target/debug/deps/xic_cli-b20f886d19bf5155.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/error.rs Cargo.toml

/root/repo/target/debug/deps/libxic_cli-b20f886d19bf5155.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/error.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/error.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
