/root/repo/target/debug/deps/e10_encoding-65d5cf86869fab21.d: crates/bench/benches/e10_encoding.rs Cargo.toml

/root/repo/target/debug/deps/libe10_encoding-65d5cf86869fab21.rmeta: crates/bench/benches/e10_encoding.rs Cargo.toml

crates/bench/benches/e10_encoding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
