/root/repo/target/debug/deps/xic_relational-a3dc3aae202e6776.d: crates/relational/src/lib.rs crates/relational/src/chase.rs crates/relational/src/encode.rs crates/relational/src/model.rs

/root/repo/target/debug/deps/libxic_relational-a3dc3aae202e6776.rlib: crates/relational/src/lib.rs crates/relational/src/chase.rs crates/relational/src/encode.rs crates/relational/src/model.rs

/root/repo/target/debug/deps/libxic_relational-a3dc3aae202e6776.rmeta: crates/relational/src/lib.rs crates/relational/src/chase.rs crates/relational/src/encode.rs crates/relational/src/model.rs

crates/relational/src/lib.rs:
crates/relational/src/chase.rs:
crates/relational/src/encode.rs:
crates/relational/src/model.rs:
