/root/repo/target/debug/deps/xic_dtd-d1a8136fc2bc7369.d: crates/dtd/src/lib.rs crates/dtd/src/analysis.rs crates/dtd/src/content.rs crates/dtd/src/deriv.rs crates/dtd/src/dtd.rs crates/dtd/src/error.rs crates/dtd/src/glushkov.rs crates/dtd/src/parser.rs crates/dtd/src/simplify.rs Cargo.toml

/root/repo/target/debug/deps/libxic_dtd-d1a8136fc2bc7369.rmeta: crates/dtd/src/lib.rs crates/dtd/src/analysis.rs crates/dtd/src/content.rs crates/dtd/src/deriv.rs crates/dtd/src/dtd.rs crates/dtd/src/error.rs crates/dtd/src/glushkov.rs crates/dtd/src/parser.rs crates/dtd/src/simplify.rs Cargo.toml

crates/dtd/src/lib.rs:
crates/dtd/src/analysis.rs:
crates/dtd/src/content.rs:
crates/dtd/src/deriv.rs:
crates/dtd/src/dtd.rs:
crates/dtd/src/error.rs:
crates/dtd/src/glushkov.rs:
crates/dtd/src/parser.rs:
crates/dtd/src/simplify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
