/root/repo/target/debug/deps/reduction_correctness-d41c6b00624b9a76.d: tests/reduction_correctness.rs

/root/repo/target/debug/deps/reduction_correctness-d41c6b00624b9a76: tests/reduction_correctness.rs

tests/reduction_correctness.rs:
