/root/repo/target/debug/deps/xic_bench-40af73177a77c565.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/xic_bench-40af73177a77c565: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
