/root/repo/target/debug/deps/checker_agreement-feec764b22717e02.d: tests/checker_agreement.rs

/root/repo/target/debug/deps/checker_agreement-feec764b22717e02: tests/checker_agreement.rs

tests/checker_agreement.rs:
