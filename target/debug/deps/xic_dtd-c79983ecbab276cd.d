/root/repo/target/debug/deps/xic_dtd-c79983ecbab276cd.d: crates/dtd/src/lib.rs crates/dtd/src/analysis.rs crates/dtd/src/content.rs crates/dtd/src/deriv.rs crates/dtd/src/dtd.rs crates/dtd/src/error.rs crates/dtd/src/glushkov.rs crates/dtd/src/parser.rs crates/dtd/src/simplify.rs Cargo.toml

/root/repo/target/debug/deps/libxic_dtd-c79983ecbab276cd.rmeta: crates/dtd/src/lib.rs crates/dtd/src/analysis.rs crates/dtd/src/content.rs crates/dtd/src/deriv.rs crates/dtd/src/dtd.rs crates/dtd/src/error.rs crates/dtd/src/glushkov.rs crates/dtd/src/parser.rs crates/dtd/src/simplify.rs Cargo.toml

crates/dtd/src/lib.rs:
crates/dtd/src/analysis.rs:
crates/dtd/src/content.rs:
crates/dtd/src/deriv.rs:
crates/dtd/src/dtd.rs:
crates/dtd/src/error.rs:
crates/dtd/src/glushkov.rs:
crates/dtd/src/parser.rs:
crates/dtd/src/simplify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
