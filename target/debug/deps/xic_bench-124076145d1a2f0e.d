/root/repo/target/debug/deps/xic_bench-124076145d1a2f0e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libxic_bench-124076145d1a2f0e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libxic_bench-124076145d1a2f0e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
