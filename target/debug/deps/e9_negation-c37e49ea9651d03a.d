/root/repo/target/debug/deps/e9_negation-c37e49ea9651d03a.d: crates/bench/benches/e9_negation.rs Cargo.toml

/root/repo/target/debug/deps/libe9_negation-c37e49ea9651d03a.rmeta: crates/bench/benches/e9_negation.rs Cargo.toml

crates/bench/benches/e9_negation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
