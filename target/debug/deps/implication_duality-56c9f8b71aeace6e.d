/root/repo/target/debug/deps/implication_duality-56c9f8b71aeace6e.d: tests/implication_duality.rs Cargo.toml

/root/repo/target/debug/deps/libimplication_duality-56c9f8b71aeace6e.rmeta: tests/implication_duality.rs Cargo.toml

tests/implication_duality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
