/root/repo/target/debug/deps/e5_fixed_dtd-b1258c6f4aa8ac29.d: crates/bench/benches/e5_fixed_dtd.rs Cargo.toml

/root/repo/target/debug/deps/libe5_fixed_dtd-b1258c6f4aa8ac29.rmeta: crates/bench/benches/e5_fixed_dtd.rs Cargo.toml

crates/bench/benches/e5_fixed_dtd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
