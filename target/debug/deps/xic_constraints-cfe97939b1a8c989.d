/root/repo/target/debug/deps/xic_constraints-cfe97939b1a8c989.d: crates/constraints/src/lib.rs crates/constraints/src/classes.rs crates/constraints/src/constraint.rs crates/constraints/src/parser.rs crates/constraints/src/satisfy.rs Cargo.toml

/root/repo/target/debug/deps/libxic_constraints-cfe97939b1a8c989.rmeta: crates/constraints/src/lib.rs crates/constraints/src/classes.rs crates/constraints/src/constraint.rs crates/constraints/src/parser.rs crates/constraints/src/satisfy.rs Cargo.toml

crates/constraints/src/lib.rs:
crates/constraints/src/classes.rs:
crates/constraints/src/constraint.rs:
crates/constraints/src/parser.rs:
crates/constraints/src/satisfy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
