/root/repo/target/debug/deps/xic_dtd-b5091ce9513f5c24.d: crates/dtd/src/lib.rs crates/dtd/src/analysis.rs crates/dtd/src/content.rs crates/dtd/src/deriv.rs crates/dtd/src/dtd.rs crates/dtd/src/error.rs crates/dtd/src/glushkov.rs crates/dtd/src/parser.rs crates/dtd/src/simplify.rs

/root/repo/target/debug/deps/libxic_dtd-b5091ce9513f5c24.rlib: crates/dtd/src/lib.rs crates/dtd/src/analysis.rs crates/dtd/src/content.rs crates/dtd/src/deriv.rs crates/dtd/src/dtd.rs crates/dtd/src/error.rs crates/dtd/src/glushkov.rs crates/dtd/src/parser.rs crates/dtd/src/simplify.rs

/root/repo/target/debug/deps/libxic_dtd-b5091ce9513f5c24.rmeta: crates/dtd/src/lib.rs crates/dtd/src/analysis.rs crates/dtd/src/content.rs crates/dtd/src/deriv.rs crates/dtd/src/dtd.rs crates/dtd/src/error.rs crates/dtd/src/glushkov.rs crates/dtd/src/parser.rs crates/dtd/src/simplify.rs

crates/dtd/src/lib.rs:
crates/dtd/src/analysis.rs:
crates/dtd/src/content.rs:
crates/dtd/src/deriv.rs:
crates/dtd/src/dtd.rs:
crates/dtd/src/error.rs:
crates/dtd/src/glushkov.rs:
crates/dtd/src/parser.rs:
crates/dtd/src/simplify.rs:
