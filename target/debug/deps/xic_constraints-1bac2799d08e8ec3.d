/root/repo/target/debug/deps/xic_constraints-1bac2799d08e8ec3.d: crates/constraints/src/lib.rs crates/constraints/src/classes.rs crates/constraints/src/constraint.rs crates/constraints/src/parser.rs crates/constraints/src/satisfy.rs

/root/repo/target/debug/deps/xic_constraints-1bac2799d08e8ec3: crates/constraints/src/lib.rs crates/constraints/src/classes.rs crates/constraints/src/constraint.rs crates/constraints/src/parser.rs crates/constraints/src/satisfy.rs

crates/constraints/src/lib.rs:
crates/constraints/src/classes.rs:
crates/constraints/src/constraint.rs:
crates/constraints/src/parser.rs:
crates/constraints/src/satisfy.rs:
