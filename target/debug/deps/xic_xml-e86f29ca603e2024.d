/root/repo/target/debug/deps/xic_xml-e86f29ca603e2024.d: crates/xmltree/src/lib.rs crates/xmltree/src/error.rs crates/xmltree/src/parser.rs crates/xmltree/src/tree.rs crates/xmltree/src/validate.rs crates/xmltree/src/writer.rs

/root/repo/target/debug/deps/libxic_xml-e86f29ca603e2024.rlib: crates/xmltree/src/lib.rs crates/xmltree/src/error.rs crates/xmltree/src/parser.rs crates/xmltree/src/tree.rs crates/xmltree/src/validate.rs crates/xmltree/src/writer.rs

/root/repo/target/debug/deps/libxic_xml-e86f29ca603e2024.rmeta: crates/xmltree/src/lib.rs crates/xmltree/src/error.rs crates/xmltree/src/parser.rs crates/xmltree/src/tree.rs crates/xmltree/src/validate.rs crates/xmltree/src/writer.rs

crates/xmltree/src/lib.rs:
crates/xmltree/src/error.rs:
crates/xmltree/src/parser.rs:
crates/xmltree/src/tree.rs:
crates/xmltree/src/validate.rs:
crates/xmltree/src/writer.rs:
