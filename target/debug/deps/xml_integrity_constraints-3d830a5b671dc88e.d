/root/repo/target/debug/deps/xml_integrity_constraints-3d830a5b671dc88e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxml_integrity_constraints-3d830a5b671dc88e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
