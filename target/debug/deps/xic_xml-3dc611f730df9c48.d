/root/repo/target/debug/deps/xic_xml-3dc611f730df9c48.d: crates/xmltree/src/lib.rs crates/xmltree/src/error.rs crates/xmltree/src/parser.rs crates/xmltree/src/tree.rs crates/xmltree/src/validate.rs crates/xmltree/src/writer.rs

/root/repo/target/debug/deps/xic_xml-3dc611f730df9c48: crates/xmltree/src/lib.rs crates/xmltree/src/error.rs crates/xmltree/src/parser.rs crates/xmltree/src/tree.rs crates/xmltree/src/validate.rs crates/xmltree/src/writer.rs

crates/xmltree/src/lib.rs:
crates/xmltree/src/error.rs:
crates/xmltree/src/parser.rs:
crates/xmltree/src/tree.rs:
crates/xmltree/src/validate.rs:
crates/xmltree/src/writer.rs:
