/root/repo/target/debug/deps/xic_gen-a73ed92f7b86e17c.d: crates/gen/src/lib.rs crates/gen/src/constraint_gen.rs crates/gen/src/doc_gen.rs crates/gen/src/dtd_gen.rs crates/gen/src/workloads.rs

/root/repo/target/debug/deps/libxic_gen-a73ed92f7b86e17c.rlib: crates/gen/src/lib.rs crates/gen/src/constraint_gen.rs crates/gen/src/doc_gen.rs crates/gen/src/dtd_gen.rs crates/gen/src/workloads.rs

/root/repo/target/debug/deps/libxic_gen-a73ed92f7b86e17c.rmeta: crates/gen/src/lib.rs crates/gen/src/constraint_gen.rs crates/gen/src/doc_gen.rs crates/gen/src/dtd_gen.rs crates/gen/src/workloads.rs

crates/gen/src/lib.rs:
crates/gen/src/constraint_gen.rs:
crates/gen/src/doc_gen.rs:
crates/gen/src/dtd_gen.rs:
crates/gen/src/workloads.rs:
