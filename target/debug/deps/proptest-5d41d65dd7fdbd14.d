/root/repo/target/debug/deps/proptest-5d41d65dd7fdbd14.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

/root/repo/target/debug/deps/proptest-5d41d65dd7fdbd14: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
