/root/repo/target/debug/deps/xic_gen-7afb2b90304b52a3.d: crates/gen/src/lib.rs crates/gen/src/constraint_gen.rs crates/gen/src/doc_gen.rs crates/gen/src/dtd_gen.rs crates/gen/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libxic_gen-7afb2b90304b52a3.rmeta: crates/gen/src/lib.rs crates/gen/src/constraint_gen.rs crates/gen/src/doc_gen.rs crates/gen/src/dtd_gen.rs crates/gen/src/workloads.rs Cargo.toml

crates/gen/src/lib.rs:
crates/gen/src/constraint_gen.rs:
crates/gen/src/doc_gen.rs:
crates/gen/src/dtd_gen.rs:
crates/gen/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
