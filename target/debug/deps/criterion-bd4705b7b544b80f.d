/root/repo/target/debug/deps/criterion-bd4705b7b544b80f.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-bd4705b7b544b80f.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-bd4705b7b544b80f.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
