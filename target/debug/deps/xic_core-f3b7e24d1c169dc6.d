/root/repo/target/debug/deps/xic_core-f3b7e24d1c169dc6.d: crates/core/src/lib.rs crates/core/src/bounded.rs crates/core/src/consistency.rs crates/core/src/diagnose.rs crates/core/src/error.rs crates/core/src/implication.rs crates/core/src/reductions.rs crates/core/src/system.rs crates/core/src/witness.rs

/root/repo/target/debug/deps/xic_core-f3b7e24d1c169dc6: crates/core/src/lib.rs crates/core/src/bounded.rs crates/core/src/consistency.rs crates/core/src/diagnose.rs crates/core/src/error.rs crates/core/src/implication.rs crates/core/src/reductions.rs crates/core/src/system.rs crates/core/src/witness.rs

crates/core/src/lib.rs:
crates/core/src/bounded.rs:
crates/core/src/consistency.rs:
crates/core/src/diagnose.rs:
crates/core/src/error.rs:
crates/core/src/implication.rs:
crates/core/src/reductions.rs:
crates/core/src/system.rs:
crates/core/src/witness.rs:
