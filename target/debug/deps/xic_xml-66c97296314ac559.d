/root/repo/target/debug/deps/xic_xml-66c97296314ac559.d: crates/xmltree/src/lib.rs crates/xmltree/src/error.rs crates/xmltree/src/parser.rs crates/xmltree/src/tree.rs crates/xmltree/src/validate.rs crates/xmltree/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libxic_xml-66c97296314ac559.rmeta: crates/xmltree/src/lib.rs crates/xmltree/src/error.rs crates/xmltree/src/parser.rs crates/xmltree/src/tree.rs crates/xmltree/src/validate.rs crates/xmltree/src/writer.rs Cargo.toml

crates/xmltree/src/lib.rs:
crates/xmltree/src/error.rs:
crates/xmltree/src/parser.rs:
crates/xmltree/src/tree.rs:
crates/xmltree/src/validate.rs:
crates/xmltree/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
