/root/repo/target/debug/deps/figure5_table-fd55205855cfded9.d: crates/bench/benches/figure5_table.rs Cargo.toml

/root/repo/target/debug/deps/libfigure5_table-fd55205855cfded9.rmeta: crates/bench/benches/figure5_table.rs Cargo.toml

crates/bench/benches/figure5_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
