/root/repo/target/debug/deps/xic_engine-e057635e43a91f26.d: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/cache.rs crates/engine/src/hash.rs crates/engine/src/spec.rs

/root/repo/target/debug/deps/xic_engine-e057635e43a91f26: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/cache.rs crates/engine/src/hash.rs crates/engine/src/spec.rs

crates/engine/src/lib.rs:
crates/engine/src/batch.rs:
crates/engine/src/cache.rs:
crates/engine/src/hash.rs:
crates/engine/src/spec.rs:
