/root/repo/target/debug/deps/witness_properties-5d635c4b0a83deb2.d: tests/witness_properties.rs

/root/repo/target/debug/deps/witness_properties-5d635c4b0a83deb2: tests/witness_properties.rs

tests/witness_properties.rs:
