/root/repo/target/debug/deps/xic_dtd-bf4b972a3960309c.d: crates/dtd/src/lib.rs crates/dtd/src/analysis.rs crates/dtd/src/content.rs crates/dtd/src/deriv.rs crates/dtd/src/dtd.rs crates/dtd/src/error.rs crates/dtd/src/glushkov.rs crates/dtd/src/parser.rs crates/dtd/src/simplify.rs

/root/repo/target/debug/deps/xic_dtd-bf4b972a3960309c: crates/dtd/src/lib.rs crates/dtd/src/analysis.rs crates/dtd/src/content.rs crates/dtd/src/deriv.rs crates/dtd/src/dtd.rs crates/dtd/src/error.rs crates/dtd/src/glushkov.rs crates/dtd/src/parser.rs crates/dtd/src/simplify.rs

crates/dtd/src/lib.rs:
crates/dtd/src/analysis.rs:
crates/dtd/src/content.rs:
crates/dtd/src/deriv.rs:
crates/dtd/src/dtd.rs:
crates/dtd/src/error.rs:
crates/dtd/src/glushkov.rs:
crates/dtd/src/parser.rs:
crates/dtd/src/simplify.rs:
