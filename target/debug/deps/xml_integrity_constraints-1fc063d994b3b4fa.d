/root/repo/target/debug/deps/xml_integrity_constraints-1fc063d994b3b4fa.d: src/lib.rs

/root/repo/target/debug/deps/libxml_integrity_constraints-1fc063d994b3b4fa.rlib: src/lib.rs

/root/repo/target/debug/deps/libxml_integrity_constraints-1fc063d994b3b4fa.rmeta: src/lib.rs

src/lib.rs:
