/root/repo/target/debug/deps/xic-b667b354abd64c27.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/xic-b667b354abd64c27: crates/cli/src/main.rs

crates/cli/src/main.rs:
