/root/repo/target/debug/deps/xic_constraints-859a3d71bae1162f.d: crates/constraints/src/lib.rs crates/constraints/src/classes.rs crates/constraints/src/constraint.rs crates/constraints/src/parser.rs crates/constraints/src/satisfy.rs

/root/repo/target/debug/deps/libxic_constraints-859a3d71bae1162f.rlib: crates/constraints/src/lib.rs crates/constraints/src/classes.rs crates/constraints/src/constraint.rs crates/constraints/src/parser.rs crates/constraints/src/satisfy.rs

/root/repo/target/debug/deps/libxic_constraints-859a3d71bae1162f.rmeta: crates/constraints/src/lib.rs crates/constraints/src/classes.rs crates/constraints/src/constraint.rs crates/constraints/src/parser.rs crates/constraints/src/satisfy.rs

crates/constraints/src/lib.rs:
crates/constraints/src/classes.rs:
crates/constraints/src/constraint.rs:
crates/constraints/src/parser.rs:
crates/constraints/src/satisfy.rs:
