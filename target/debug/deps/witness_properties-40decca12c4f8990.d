/root/repo/target/debug/deps/witness_properties-40decca12c4f8990.d: tests/witness_properties.rs Cargo.toml

/root/repo/target/debug/deps/libwitness_properties-40decca12c4f8990.rmeta: tests/witness_properties.rs Cargo.toml

tests/witness_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
