/root/repo/target/debug/deps/xic_cli-f52a305ec4b7d639.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/error.rs

/root/repo/target/debug/deps/xic_cli-f52a305ec4b7d639: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/error.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/error.rs:
