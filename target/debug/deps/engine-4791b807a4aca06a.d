/root/repo/target/debug/deps/engine-4791b807a4aca06a.d: crates/engine/tests/engine.rs

/root/repo/target/debug/deps/engine-4791b807a4aca06a: crates/engine/tests/engine.rs

crates/engine/tests/engine.rs:
