/root/repo/target/debug/deps/xic_gen-5a0a590a8f58176d.d: crates/gen/src/lib.rs crates/gen/src/constraint_gen.rs crates/gen/src/doc_gen.rs crates/gen/src/dtd_gen.rs crates/gen/src/workloads.rs

/root/repo/target/debug/deps/xic_gen-5a0a590a8f58176d: crates/gen/src/lib.rs crates/gen/src/constraint_gen.rs crates/gen/src/doc_gen.rs crates/gen/src/dtd_gen.rs crates/gen/src/workloads.rs

crates/gen/src/lib.rs:
crates/gen/src/constraint_gen.rs:
crates/gen/src/doc_gen.rs:
crates/gen/src/dtd_gen.rs:
crates/gen/src/workloads.rs:
