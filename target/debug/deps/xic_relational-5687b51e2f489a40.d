/root/repo/target/debug/deps/xic_relational-5687b51e2f489a40.d: crates/relational/src/lib.rs crates/relational/src/chase.rs crates/relational/src/encode.rs crates/relational/src/model.rs

/root/repo/target/debug/deps/xic_relational-5687b51e2f489a40: crates/relational/src/lib.rs crates/relational/src/chase.rs crates/relational/src/encode.rs crates/relational/src/model.rs

crates/relational/src/lib.rs:
crates/relational/src/chase.rs:
crates/relational/src/encode.rs:
crates/relational/src/model.rs:
