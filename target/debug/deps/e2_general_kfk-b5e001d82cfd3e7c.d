/root/repo/target/debug/deps/e2_general_kfk-b5e001d82cfd3e7c.d: crates/bench/benches/e2_general_kfk.rs Cargo.toml

/root/repo/target/debug/deps/libe2_general_kfk-b5e001d82cfd3e7c.rmeta: crates/bench/benches/e2_general_kfk.rs Cargo.toml

crates/bench/benches/e2_general_kfk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
