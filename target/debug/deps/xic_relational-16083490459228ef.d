/root/repo/target/debug/deps/xic_relational-16083490459228ef.d: crates/relational/src/lib.rs crates/relational/src/chase.rs crates/relational/src/encode.rs crates/relational/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libxic_relational-16083490459228ef.rmeta: crates/relational/src/lib.rs crates/relational/src/chase.rs crates/relational/src/encode.rs crates/relational/src/model.rs Cargo.toml

crates/relational/src/lib.rs:
crates/relational/src/chase.rs:
crates/relational/src/encode.rs:
crates/relational/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
