/root/repo/target/debug/deps/scratch_debug-3606434aacb0f378.d: tests/scratch_debug.rs

/root/repo/target/debug/deps/scratch_debug-3606434aacb0f378: tests/scratch_debug.rs

tests/scratch_debug.rs:
