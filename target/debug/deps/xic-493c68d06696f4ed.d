/root/repo/target/debug/deps/xic-493c68d06696f4ed.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxic-493c68d06696f4ed.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
