/root/repo/target/debug/deps/proptest-111fc40de6d57d1c.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-111fc40de6d57d1c.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
