/root/repo/target/debug/deps/implication_duality-785a4383887d25bb.d: tests/implication_duality.rs

/root/repo/target/debug/deps/implication_duality-785a4383887d25bb: tests/implication_duality.rs

tests/implication_duality.rs:
