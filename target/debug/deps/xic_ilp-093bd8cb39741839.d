/root/repo/target/debug/deps/xic_ilp-093bd8cb39741839.d: crates/ilp/src/lib.rs crates/ilp/src/bignum.rs crates/ilp/src/bounds.rs crates/ilp/src/enumerate.rs crates/ilp/src/linear.rs crates/ilp/src/rational.rs crates/ilp/src/simplex.rs crates/ilp/src/solver.rs

/root/repo/target/debug/deps/xic_ilp-093bd8cb39741839: crates/ilp/src/lib.rs crates/ilp/src/bignum.rs crates/ilp/src/bounds.rs crates/ilp/src/enumerate.rs crates/ilp/src/linear.rs crates/ilp/src/rational.rs crates/ilp/src/simplex.rs crates/ilp/src/solver.rs

crates/ilp/src/lib.rs:
crates/ilp/src/bignum.rs:
crates/ilp/src/bounds.rs:
crates/ilp/src/enumerate.rs:
crates/ilp/src/linear.rs:
crates/ilp/src/rational.rs:
crates/ilp/src/simplex.rs:
crates/ilp/src/solver.rs:
