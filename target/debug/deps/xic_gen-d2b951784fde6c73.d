/root/repo/target/debug/deps/xic_gen-d2b951784fde6c73.d: crates/gen/src/lib.rs crates/gen/src/constraint_gen.rs crates/gen/src/doc_gen.rs crates/gen/src/dtd_gen.rs crates/gen/src/workloads.rs

/root/repo/target/debug/deps/libxic_gen-d2b951784fde6c73.rlib: crates/gen/src/lib.rs crates/gen/src/constraint_gen.rs crates/gen/src/doc_gen.rs crates/gen/src/dtd_gen.rs crates/gen/src/workloads.rs

/root/repo/target/debug/deps/libxic_gen-d2b951784fde6c73.rmeta: crates/gen/src/lib.rs crates/gen/src/constraint_gen.rs crates/gen/src/doc_gen.rs crates/gen/src/dtd_gen.rs crates/gen/src/workloads.rs

crates/gen/src/lib.rs:
crates/gen/src/constraint_gen.rs:
crates/gen/src/doc_gen.rs:
crates/gen/src/dtd_gen.rs:
crates/gen/src/workloads.rs:
