/root/repo/target/debug/deps/xic_ilp-166af2daa92b5270.d: crates/ilp/src/lib.rs crates/ilp/src/bignum.rs crates/ilp/src/bounds.rs crates/ilp/src/enumerate.rs crates/ilp/src/linear.rs crates/ilp/src/rational.rs crates/ilp/src/simplex.rs crates/ilp/src/solver.rs

/root/repo/target/debug/deps/libxic_ilp-166af2daa92b5270.rlib: crates/ilp/src/lib.rs crates/ilp/src/bignum.rs crates/ilp/src/bounds.rs crates/ilp/src/enumerate.rs crates/ilp/src/linear.rs crates/ilp/src/rational.rs crates/ilp/src/simplex.rs crates/ilp/src/solver.rs

/root/repo/target/debug/deps/libxic_ilp-166af2daa92b5270.rmeta: crates/ilp/src/lib.rs crates/ilp/src/bignum.rs crates/ilp/src/bounds.rs crates/ilp/src/enumerate.rs crates/ilp/src/linear.rs crates/ilp/src/rational.rs crates/ilp/src/simplex.rs crates/ilp/src/solver.rs

crates/ilp/src/lib.rs:
crates/ilp/src/bignum.rs:
crates/ilp/src/bounds.rs:
crates/ilp/src/enumerate.rs:
crates/ilp/src/linear.rs:
crates/ilp/src/rational.rs:
crates/ilp/src/simplex.rs:
crates/ilp/src/solver.rs:
