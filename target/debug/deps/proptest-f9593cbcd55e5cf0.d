/root/repo/target/debug/deps/proptest-f9593cbcd55e5cf0.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-f9593cbcd55e5cf0.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
