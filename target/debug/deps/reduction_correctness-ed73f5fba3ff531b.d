/root/repo/target/debug/deps/reduction_correctness-ed73f5fba3ff531b.d: tests/reduction_correctness.rs Cargo.toml

/root/repo/target/debug/deps/libreduction_correctness-ed73f5fba3ff531b.rmeta: tests/reduction_correctness.rs Cargo.toml

tests/reduction_correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
