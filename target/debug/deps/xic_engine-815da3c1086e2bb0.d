/root/repo/target/debug/deps/xic_engine-815da3c1086e2bb0.d: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/cache.rs crates/engine/src/hash.rs crates/engine/src/spec.rs

/root/repo/target/debug/deps/libxic_engine-815da3c1086e2bb0.rlib: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/cache.rs crates/engine/src/hash.rs crates/engine/src/spec.rs

/root/repo/target/debug/deps/libxic_engine-815da3c1086e2bb0.rmeta: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/cache.rs crates/engine/src/hash.rs crates/engine/src/spec.rs

crates/engine/src/lib.rs:
crates/engine/src/batch.rs:
crates/engine/src/cache.rs:
crates/engine/src/hash.rs:
crates/engine/src/spec.rs:
