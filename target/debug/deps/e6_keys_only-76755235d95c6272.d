/root/repo/target/debug/deps/e6_keys_only-76755235d95c6272.d: crates/bench/benches/e6_keys_only.rs Cargo.toml

/root/repo/target/debug/deps/libe6_keys_only-76755235d95c6272.rmeta: crates/bench/benches/e6_keys_only.rs Cargo.toml

crates/bench/benches/e6_keys_only.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
