/root/repo/target/debug/deps/rand-a93b2fd33e7e7f38.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-a93b2fd33e7e7f38: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
