/root/repo/target/debug/deps/criterion-00e03a4e2e26fadd.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-00e03a4e2e26fadd.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
