/root/repo/target/debug/deps/xic-7e728838f8115bb1.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxic-7e728838f8115bb1.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
