/root/repo/target/debug/deps/xic_bench-6fa3a5d28a79de9d.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxic_bench-6fa3a5d28a79de9d.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
