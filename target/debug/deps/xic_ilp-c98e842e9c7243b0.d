/root/repo/target/debug/deps/xic_ilp-c98e842e9c7243b0.d: crates/ilp/src/lib.rs crates/ilp/src/bignum.rs crates/ilp/src/bounds.rs crates/ilp/src/enumerate.rs crates/ilp/src/linear.rs crates/ilp/src/rational.rs crates/ilp/src/simplex.rs crates/ilp/src/solver.rs Cargo.toml

/root/repo/target/debug/deps/libxic_ilp-c98e842e9c7243b0.rmeta: crates/ilp/src/lib.rs crates/ilp/src/bignum.rs crates/ilp/src/bounds.rs crates/ilp/src/enumerate.rs crates/ilp/src/linear.rs crates/ilp/src/rational.rs crates/ilp/src/simplex.rs crates/ilp/src/solver.rs Cargo.toml

crates/ilp/src/lib.rs:
crates/ilp/src/bignum.rs:
crates/ilp/src/bounds.rs:
crates/ilp/src/enumerate.rs:
crates/ilp/src/linear.rs:
crates/ilp/src/rational.rs:
crates/ilp/src/simplex.rs:
crates/ilp/src/solver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
