/root/repo/target/debug/deps/engine_throughput-4d879468632ea07b.d: crates/bench/benches/engine_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libengine_throughput-4d879468632ea07b.rmeta: crates/bench/benches/engine_throughput.rs Cargo.toml

crates/bench/benches/engine_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
