/root/repo/target/debug/deps/xic_bench-5741553e98713ff8.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxic_bench-5741553e98713ff8.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
