/root/repo/target/debug/deps/xml_integrity_constraints-c4959ef925f73ac3.d: src/lib.rs

/root/repo/target/debug/deps/xml_integrity_constraints-c4959ef925f73ac3: src/lib.rs

src/lib.rs:
