/root/repo/target/debug/deps/xic_cli-fd7cd6f6052940ec.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/error.rs

/root/repo/target/debug/deps/libxic_cli-fd7cd6f6052940ec.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/error.rs

/root/repo/target/debug/deps/libxic_cli-fd7cd6f6052940ec.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/error.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/error.rs:
