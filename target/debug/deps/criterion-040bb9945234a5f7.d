/root/repo/target/debug/deps/criterion-040bb9945234a5f7.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-040bb9945234a5f7: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
