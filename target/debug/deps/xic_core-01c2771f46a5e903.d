/root/repo/target/debug/deps/xic_core-01c2771f46a5e903.d: crates/core/src/lib.rs crates/core/src/bounded.rs crates/core/src/consistency.rs crates/core/src/diagnose.rs crates/core/src/error.rs crates/core/src/implication.rs crates/core/src/reductions.rs crates/core/src/system.rs crates/core/src/witness.rs Cargo.toml

/root/repo/target/debug/deps/libxic_core-01c2771f46a5e903.rmeta: crates/core/src/lib.rs crates/core/src/bounded.rs crates/core/src/consistency.rs crates/core/src/diagnose.rs crates/core/src/error.rs crates/core/src/implication.rs crates/core/src/reductions.rs crates/core/src/system.rs crates/core/src/witness.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/bounded.rs:
crates/core/src/consistency.rs:
crates/core/src/diagnose.rs:
crates/core/src/error.rs:
crates/core/src/implication.rs:
crates/core/src/reductions.rs:
crates/core/src/system.rs:
crates/core/src/witness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
