/root/repo/target/debug/deps/rand-8dbc80a8f53e09e3.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8dbc80a8f53e09e3.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8dbc80a8f53e09e3.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
