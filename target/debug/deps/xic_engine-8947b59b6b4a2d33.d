/root/repo/target/debug/deps/xic_engine-8947b59b6b4a2d33.d: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/cache.rs crates/engine/src/hash.rs crates/engine/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libxic_engine-8947b59b6b4a2d33.rmeta: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/cache.rs crates/engine/src/hash.rs crates/engine/src/spec.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/batch.rs:
crates/engine/src/cache.rs:
crates/engine/src/hash.rs:
crates/engine/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
