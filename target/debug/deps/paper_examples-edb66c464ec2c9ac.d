/root/repo/target/debug/deps/paper_examples-edb66c464ec2c9ac.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-edb66c464ec2c9ac: tests/paper_examples.rs

tests/paper_examples.rs:
