/root/repo/target/debug/deps/e3_unary_consistency-f5edfd6d4b45edec.d: crates/bench/benches/e3_unary_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libe3_unary_consistency-f5edfd6d4b45edec.rmeta: crates/bench/benches/e3_unary_consistency.rs Cargo.toml

crates/bench/benches/e3_unary_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
