/root/repo/target/debug/deps/e12_ablation_conditional-ac5a4eb59bfb4fb7.d: crates/bench/benches/e12_ablation_conditional.rs Cargo.toml

/root/repo/target/debug/deps/libe12_ablation_conditional-ac5a4eb59bfb4fb7.rmeta: crates/bench/benches/e12_ablation_conditional.rs Cargo.toml

crates/bench/benches/e12_ablation_conditional.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
