/root/repo/target/debug/examples/undecidability_frontier-981c42eeb4e8b6c8.d: examples/undecidability_frontier.rs Cargo.toml

/root/repo/target/debug/examples/libundecidability_frontier-981c42eeb4e8b6c8.rmeta: examples/undecidability_frontier.rs Cargo.toml

examples/undecidability_frontier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
