/root/repo/target/debug/examples/undecidability_frontier-aedee470b1af98d2.d: examples/undecidability_frontier.rs

/root/repo/target/debug/examples/undecidability_frontier-aedee470b1af98d2: examples/undecidability_frontier.rs

examples/undecidability_frontier.rs:
