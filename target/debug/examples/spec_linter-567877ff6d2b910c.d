/root/repo/target/debug/examples/spec_linter-567877ff6d2b910c.d: examples/spec_linter.rs Cargo.toml

/root/repo/target/debug/examples/libspec_linter-567877ff6d2b910c.rmeta: examples/spec_linter.rs Cargo.toml

examples/spec_linter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
