/root/repo/target/debug/examples/design_review-af01558aced4df45.d: examples/design_review.rs

/root/repo/target/debug/examples/design_review-af01558aced4df45: examples/design_review.rs

examples/design_review.rs:
