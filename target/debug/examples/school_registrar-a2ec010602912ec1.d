/root/repo/target/debug/examples/school_registrar-a2ec010602912ec1.d: examples/school_registrar.rs

/root/repo/target/debug/examples/school_registrar-a2ec010602912ec1: examples/school_registrar.rs

examples/school_registrar.rs:
