/root/repo/target/debug/examples/spec_linter-b8b87ad13c2dfb43.d: examples/spec_linter.rs

/root/repo/target/debug/examples/spec_linter-b8b87ad13c2dfb43: examples/spec_linter.rs

examples/spec_linter.rs:
