/root/repo/target/debug/examples/school_registrar-feb0c9e519abcaed.d: examples/school_registrar.rs Cargo.toml

/root/repo/target/debug/examples/libschool_registrar-feb0c9e519abcaed.rmeta: examples/school_registrar.rs Cargo.toml

examples/school_registrar.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
