/root/repo/target/debug/examples/quickstart-5e224c7c353b9a18.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5e224c7c353b9a18: examples/quickstart.rs

examples/quickstart.rs:
