/root/repo/target/debug/examples/design_review-3b3787d91062c352.d: examples/design_review.rs Cargo.toml

/root/repo/target/debug/examples/libdesign_review-3b3787d91062c352.rmeta: examples/design_review.rs Cargo.toml

examples/design_review.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
