/root/repo/target/debug/examples/data_integration-b76634f447c471c8.d: examples/data_integration.rs Cargo.toml

/root/repo/target/debug/examples/libdata_integration-b76634f447c471c8.rmeta: examples/data_integration.rs Cargo.toml

examples/data_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
