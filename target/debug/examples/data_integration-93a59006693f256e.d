/root/repo/target/debug/examples/data_integration-93a59006693f256e.d: examples/data_integration.rs

/root/repo/target/debug/examples/data_integration-93a59006693f256e: examples/data_integration.rs

examples/data_integration.rs:
