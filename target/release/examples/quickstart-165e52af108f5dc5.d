/root/repo/target/release/examples/quickstart-165e52af108f5dc5.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-165e52af108f5dc5: examples/quickstart.rs

examples/quickstart.rs:
