/root/repo/target/release/deps/xic_engine-d35412885484df89.d: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/cache.rs crates/engine/src/hash.rs crates/engine/src/spec.rs

/root/repo/target/release/deps/libxic_engine-d35412885484df89.rlib: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/cache.rs crates/engine/src/hash.rs crates/engine/src/spec.rs

/root/repo/target/release/deps/libxic_engine-d35412885484df89.rmeta: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/cache.rs crates/engine/src/hash.rs crates/engine/src/spec.rs

crates/engine/src/lib.rs:
crates/engine/src/batch.rs:
crates/engine/src/cache.rs:
crates/engine/src/hash.rs:
crates/engine/src/spec.rs:
