/root/repo/target/release/deps/xic_gen-6588b1e42438943f.d: crates/gen/src/lib.rs crates/gen/src/constraint_gen.rs crates/gen/src/doc_gen.rs crates/gen/src/dtd_gen.rs crates/gen/src/workloads.rs

/root/repo/target/release/deps/libxic_gen-6588b1e42438943f.rlib: crates/gen/src/lib.rs crates/gen/src/constraint_gen.rs crates/gen/src/doc_gen.rs crates/gen/src/dtd_gen.rs crates/gen/src/workloads.rs

/root/repo/target/release/deps/libxic_gen-6588b1e42438943f.rmeta: crates/gen/src/lib.rs crates/gen/src/constraint_gen.rs crates/gen/src/doc_gen.rs crates/gen/src/dtd_gen.rs crates/gen/src/workloads.rs

crates/gen/src/lib.rs:
crates/gen/src/constraint_gen.rs:
crates/gen/src/doc_gen.rs:
crates/gen/src/dtd_gen.rs:
crates/gen/src/workloads.rs:
