/root/repo/target/release/deps/xic_bench-77c5224dd2c36050.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libxic_bench-77c5224dd2c36050.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libxic_bench-77c5224dd2c36050.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
