/root/repo/target/release/deps/xic-c3450c688f228280.d: crates/cli/src/main.rs

/root/repo/target/release/deps/xic-c3450c688f228280: crates/cli/src/main.rs

crates/cli/src/main.rs:
