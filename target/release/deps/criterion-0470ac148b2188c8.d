/root/repo/target/release/deps/criterion-0470ac148b2188c8.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-0470ac148b2188c8.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-0470ac148b2188c8.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
