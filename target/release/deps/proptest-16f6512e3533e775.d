/root/repo/target/release/deps/proptest-16f6512e3533e775.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

/root/repo/target/release/deps/libproptest-16f6512e3533e775.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

/root/repo/target/release/deps/libproptest-16f6512e3533e775.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
