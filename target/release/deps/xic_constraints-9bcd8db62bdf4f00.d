/root/repo/target/release/deps/xic_constraints-9bcd8db62bdf4f00.d: crates/constraints/src/lib.rs crates/constraints/src/classes.rs crates/constraints/src/constraint.rs crates/constraints/src/parser.rs crates/constraints/src/satisfy.rs

/root/repo/target/release/deps/libxic_constraints-9bcd8db62bdf4f00.rlib: crates/constraints/src/lib.rs crates/constraints/src/classes.rs crates/constraints/src/constraint.rs crates/constraints/src/parser.rs crates/constraints/src/satisfy.rs

/root/repo/target/release/deps/libxic_constraints-9bcd8db62bdf4f00.rmeta: crates/constraints/src/lib.rs crates/constraints/src/classes.rs crates/constraints/src/constraint.rs crates/constraints/src/parser.rs crates/constraints/src/satisfy.rs

crates/constraints/src/lib.rs:
crates/constraints/src/classes.rs:
crates/constraints/src/constraint.rs:
crates/constraints/src/parser.rs:
crates/constraints/src/satisfy.rs:
