/root/repo/target/release/deps/rand-c8a565d7dc9c3f63.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-c8a565d7dc9c3f63.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-c8a565d7dc9c3f63.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
