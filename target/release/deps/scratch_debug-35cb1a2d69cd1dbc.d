/root/repo/target/release/deps/scratch_debug-35cb1a2d69cd1dbc.d: tests/scratch_debug.rs

/root/repo/target/release/deps/scratch_debug-35cb1a2d69cd1dbc: tests/scratch_debug.rs

tests/scratch_debug.rs:
