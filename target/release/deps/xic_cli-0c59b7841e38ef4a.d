/root/repo/target/release/deps/xic_cli-0c59b7841e38ef4a.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/error.rs

/root/repo/target/release/deps/libxic_cli-0c59b7841e38ef4a.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/error.rs

/root/repo/target/release/deps/libxic_cli-0c59b7841e38ef4a.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/error.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/error.rs:
