/root/repo/target/release/deps/figure5_table-3fcdcf24244aefe1.d: crates/bench/benches/figure5_table.rs

/root/repo/target/release/deps/figure5_table-3fcdcf24244aefe1: crates/bench/benches/figure5_table.rs

crates/bench/benches/figure5_table.rs:
