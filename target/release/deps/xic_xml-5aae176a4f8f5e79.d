/root/repo/target/release/deps/xic_xml-5aae176a4f8f5e79.d: crates/xmltree/src/lib.rs crates/xmltree/src/error.rs crates/xmltree/src/parser.rs crates/xmltree/src/tree.rs crates/xmltree/src/validate.rs crates/xmltree/src/writer.rs

/root/repo/target/release/deps/libxic_xml-5aae176a4f8f5e79.rlib: crates/xmltree/src/lib.rs crates/xmltree/src/error.rs crates/xmltree/src/parser.rs crates/xmltree/src/tree.rs crates/xmltree/src/validate.rs crates/xmltree/src/writer.rs

/root/repo/target/release/deps/libxic_xml-5aae176a4f8f5e79.rmeta: crates/xmltree/src/lib.rs crates/xmltree/src/error.rs crates/xmltree/src/parser.rs crates/xmltree/src/tree.rs crates/xmltree/src/validate.rs crates/xmltree/src/writer.rs

crates/xmltree/src/lib.rs:
crates/xmltree/src/error.rs:
crates/xmltree/src/parser.rs:
crates/xmltree/src/tree.rs:
crates/xmltree/src/validate.rs:
crates/xmltree/src/writer.rs:
