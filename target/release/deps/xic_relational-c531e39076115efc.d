/root/repo/target/release/deps/xic_relational-c531e39076115efc.d: crates/relational/src/lib.rs crates/relational/src/chase.rs crates/relational/src/encode.rs crates/relational/src/model.rs

/root/repo/target/release/deps/libxic_relational-c531e39076115efc.rlib: crates/relational/src/lib.rs crates/relational/src/chase.rs crates/relational/src/encode.rs crates/relational/src/model.rs

/root/repo/target/release/deps/libxic_relational-c531e39076115efc.rmeta: crates/relational/src/lib.rs crates/relational/src/chase.rs crates/relational/src/encode.rs crates/relational/src/model.rs

crates/relational/src/lib.rs:
crates/relational/src/chase.rs:
crates/relational/src/encode.rs:
crates/relational/src/model.rs:
