/root/repo/target/release/deps/xic_dtd-f04425d353310fb9.d: crates/dtd/src/lib.rs crates/dtd/src/analysis.rs crates/dtd/src/content.rs crates/dtd/src/deriv.rs crates/dtd/src/dtd.rs crates/dtd/src/error.rs crates/dtd/src/glushkov.rs crates/dtd/src/parser.rs crates/dtd/src/simplify.rs

/root/repo/target/release/deps/libxic_dtd-f04425d353310fb9.rlib: crates/dtd/src/lib.rs crates/dtd/src/analysis.rs crates/dtd/src/content.rs crates/dtd/src/deriv.rs crates/dtd/src/dtd.rs crates/dtd/src/error.rs crates/dtd/src/glushkov.rs crates/dtd/src/parser.rs crates/dtd/src/simplify.rs

/root/repo/target/release/deps/libxic_dtd-f04425d353310fb9.rmeta: crates/dtd/src/lib.rs crates/dtd/src/analysis.rs crates/dtd/src/content.rs crates/dtd/src/deriv.rs crates/dtd/src/dtd.rs crates/dtd/src/error.rs crates/dtd/src/glushkov.rs crates/dtd/src/parser.rs crates/dtd/src/simplify.rs

crates/dtd/src/lib.rs:
crates/dtd/src/analysis.rs:
crates/dtd/src/content.rs:
crates/dtd/src/deriv.rs:
crates/dtd/src/dtd.rs:
crates/dtd/src/error.rs:
crates/dtd/src/glushkov.rs:
crates/dtd/src/parser.rs:
crates/dtd/src/simplify.rs:
