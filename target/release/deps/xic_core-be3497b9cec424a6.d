/root/repo/target/release/deps/xic_core-be3497b9cec424a6.d: crates/core/src/lib.rs crates/core/src/bounded.rs crates/core/src/consistency.rs crates/core/src/diagnose.rs crates/core/src/error.rs crates/core/src/implication.rs crates/core/src/reductions.rs crates/core/src/system.rs crates/core/src/witness.rs

/root/repo/target/release/deps/libxic_core-be3497b9cec424a6.rlib: crates/core/src/lib.rs crates/core/src/bounded.rs crates/core/src/consistency.rs crates/core/src/diagnose.rs crates/core/src/error.rs crates/core/src/implication.rs crates/core/src/reductions.rs crates/core/src/system.rs crates/core/src/witness.rs

/root/repo/target/release/deps/libxic_core-be3497b9cec424a6.rmeta: crates/core/src/lib.rs crates/core/src/bounded.rs crates/core/src/consistency.rs crates/core/src/diagnose.rs crates/core/src/error.rs crates/core/src/implication.rs crates/core/src/reductions.rs crates/core/src/system.rs crates/core/src/witness.rs

crates/core/src/lib.rs:
crates/core/src/bounded.rs:
crates/core/src/consistency.rs:
crates/core/src/diagnose.rs:
crates/core/src/error.rs:
crates/core/src/implication.rs:
crates/core/src/reductions.rs:
crates/core/src/system.rs:
crates/core/src/witness.rs:
