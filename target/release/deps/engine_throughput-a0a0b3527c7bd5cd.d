/root/repo/target/release/deps/engine_throughput-a0a0b3527c7bd5cd.d: crates/bench/benches/engine_throughput.rs

/root/repo/target/release/deps/engine_throughput-a0a0b3527c7bd5cd: crates/bench/benches/engine_throughput.rs

crates/bench/benches/engine_throughput.rs:
