/root/repo/target/release/deps/xml_integrity_constraints-85917cf90f9434c4.d: src/lib.rs

/root/repo/target/release/deps/libxml_integrity_constraints-85917cf90f9434c4.rlib: src/lib.rs

/root/repo/target/release/deps/libxml_integrity_constraints-85917cf90f9434c4.rmeta: src/lib.rs

src/lib.rs:
