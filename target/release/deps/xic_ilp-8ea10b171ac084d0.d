/root/repo/target/release/deps/xic_ilp-8ea10b171ac084d0.d: crates/ilp/src/lib.rs crates/ilp/src/bignum.rs crates/ilp/src/bounds.rs crates/ilp/src/enumerate.rs crates/ilp/src/linear.rs crates/ilp/src/rational.rs crates/ilp/src/simplex.rs crates/ilp/src/solver.rs

/root/repo/target/release/deps/libxic_ilp-8ea10b171ac084d0.rlib: crates/ilp/src/lib.rs crates/ilp/src/bignum.rs crates/ilp/src/bounds.rs crates/ilp/src/enumerate.rs crates/ilp/src/linear.rs crates/ilp/src/rational.rs crates/ilp/src/simplex.rs crates/ilp/src/solver.rs

/root/repo/target/release/deps/libxic_ilp-8ea10b171ac084d0.rmeta: crates/ilp/src/lib.rs crates/ilp/src/bignum.rs crates/ilp/src/bounds.rs crates/ilp/src/enumerate.rs crates/ilp/src/linear.rs crates/ilp/src/rational.rs crates/ilp/src/simplex.rs crates/ilp/src/solver.rs

crates/ilp/src/lib.rs:
crates/ilp/src/bignum.rs:
crates/ilp/src/bounds.rs:
crates/ilp/src/enumerate.rs:
crates/ilp/src/linear.rs:
crates/ilp/src/rational.rs:
crates/ilp/src/simplex.rs:
crates/ilp/src/solver.rs:
